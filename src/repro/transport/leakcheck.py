"""Shared-memory leak gate: fail when transport segments survive.

CI runs ``python -m repro.transport.leakcheck`` after the test suite and
after the quick-mode benchmarks; any `/dev/shm` entry carrying the
transport prefix at that point is a segment some run created and never
released or swept — exactly the leak class the lifecycle tests guard
against.  Exit status 1 lists the survivors.
"""

from __future__ import annotations

import os
import sys

from repro.transport import SHM_PREFIX

_SHM_DIR = "/dev/shm"


def main() -> int:
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        print(f"{_SHM_DIR} not available; nothing to check")
        return 0
    leaked = sorted(e for e in entries if e.startswith(SHM_PREFIX))
    if leaked:
        print(f"leaked shared-memory segments: {leaked}", file=sys.stderr)
        return 1
    print("no leaked shared-memory segments")
    return 0


if __name__ == "__main__":
    sys.exit(main())
