"""The shipped codecs: ``pickle``, ``shm`` and ``auto``.

All three produce protocol-5 pickle streams; they differ only in *buffer
placement*:

* :class:`PickleCodec` — everything inline.  The baseline and the only
  choice across host boundaries.
* :class:`SharedMemoryCodec` — every out-of-band-capable buffer (numpy
  arrays, and any pickle stream at least ``threshold`` bytes — which
  covers large ``bytes``/``str`` payloads) goes to a shared-memory
  segment; the frame carries descriptors.
* ``auto`` — a :class:`SharedMemoryCodec` with a large threshold
  (:data:`AUTO_THRESHOLD`): small items stay inline (a segment per tiny
  item costs more than the copy it saves), large items go zero-copy.  The
  per-item decision the adaptation story needs, without a second class.

Placement rule, per encode: pickle with ``buffer_callback``; each
contiguous out-of-band buffer of at least ``threshold`` bytes is written
into its own segment, smaller ones are serialized in-band.  If the
resulting stream itself reaches ``threshold`` (big ``bytes`` payloads,
deeply nested objects), the stream moves to a segment too.
"""

from __future__ import annotations

import itertools
import os
import pickle
from multiprocessing import shared_memory

from repro.transport.frames import (
    SHM_PREFIX,
    Codec,
    Frame,
    SegmentRef,
    TransportError,
    untrack,
)

__all__ = [
    "AUTO_THRESHOLD",
    "PickleCodec",
    "SharedMemoryCodec",
    "calibrated_auto_threshold",
]

#: ``auto``'s placement threshold: below this, inline pickling (one extra
#: copy through a queue/socket) is cheaper than a segment round trip.
#: This static value is the *fallback*; backends probe the real crossover
#: at warm-up via :func:`calibrated_auto_threshold` (E17 showed it varies
#: by host and backend).
AUTO_THRESHOLD = 256 * 1024

#: Probe sizes for the warm-up calibration (log-spaced around the static
#: default) and the clamp the fitted crossover is held to — a pathological
#: probe (noisy scheduler, tiny /dev/shm) must not push ``auto`` into
#: placing everything, or nothing, in segments.
_PROBE_SIZES = (16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024)
_THRESHOLD_MIN = 16 * 1024
_THRESHOLD_MAX = 1024 * 1024

_UNCALIBRATED = object()  # cache sentinel: "the probe has not run yet"
_calibrated: "int | None | object" = _UNCALIBRATED


def calibrated_auto_threshold(*, repeats: int = 3, _cache: bool = True) -> int | None:
    """Measure this host's inline-vs-segment crossover size in bytes.

    Runs a quick encode/decode/release round trip of ``bytes`` payloads at
    a few log-spaced sizes through both the inline pickle path and the
    shared-memory path, and returns the smallest probed size at which the
    segment path wins (clamped to a sane band).  Returns ``None`` when
    shared memory is unavailable or never wins — callers then keep the
    static :data:`AUTO_THRESHOLD`.  The probe costs a few milliseconds and
    is cached per process (both heavy backends calibrate at warm-up).
    """
    global _calibrated
    if _cache and _calibrated is not _UNCALIBRATED:
        return _calibrated  # type: ignore[return-value]
    result: int | None = None
    pickle_codec = PickleCodec()
    shm_codec = SharedMemoryCodec(threshold=1)
    try:
        for size in _PROBE_SIZES:
            payload = b"\x00" * size
            t_inline = _probe_roundtrip(pickle_codec, payload, repeats)
            t_shm = _probe_roundtrip(shm_codec, payload, repeats)
            if t_shm < t_inline:
                result = min(max(size, _THRESHOLD_MIN), _THRESHOLD_MAX)
                break
    except OSError:
        result = None  # no (or exhausted) shared memory on this host
    finally:
        shm_codec.sweep()
    if _cache:
        _calibrated = result
    return result


def _probe_roundtrip(codec: Codec, payload: bytes, repeats: int) -> float:
    import time

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        frame = codec.encode(payload)
        codec.decode(frame)
        codec.release(frame)
        best = min(best, time.perf_counter() - t0)
    return best


class PickleCodec(Codec):
    """Everything inline: one protocol-5 pickle stream per item."""

    name = "pickle"

    def encode(self, obj: object) -> Frame:
        try:
            stream = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as err:
            raise TransportError(f"unpicklable payload: {err!r}") from err
        return Frame(codec=self.name, stream=stream, nbytes=len(stream))


class SharedMemoryCodec(Codec):
    """Large buffers travel by shared-memory descriptor, not by value.

    Parameters
    ----------
    threshold:
        Minimum buffer (or stream) size in bytes to earn a segment; the
        default of 1 sends everything eligible through shared memory.
    session:
        Segment-namespace token; every party of one pipeline run shares
        it so one sweep covers them all.
    """

    name = "shm"

    def __init__(self, *, threshold: int = 1, session: str | None = None) -> None:
        super().__init__(session=session)
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        # itertools.count: next() is atomic in CPython, and one codec is
        # shared by all of a worker's replica threads encoding results.
        self._counter = itertools.count(1)

    def _new_segment(self, data) -> SegmentRef:
        """Write one buffer into a fresh segment (closed at once; named)."""
        name = f"{SHM_PREFIX}{self.session}-{os.getpid()}-{next(self._counter)}"
        size = data.nbytes if hasattr(data, "nbytes") else len(data)
        seg = shared_memory.SharedMemory(name=name, create=True, size=max(size, 1))
        untrack(seg)  # this package owns cleanup: release() + session sweep
        try:
            seg.buf[:size] = data
        finally:
            seg.close()
        self.track(name)
        return SegmentRef(name=name, size=size)

    def encode(self, obj: object) -> Frame:
        refs: list[SegmentRef] = []
        total = 0

        def place(pb: pickle.PickleBuffer) -> bool:
            # Return False -> out-of-band (we carried it); True -> in-band
            # (it then lands in the stream and is counted there).
            nonlocal total
            try:
                raw = pb.raw()
            except BufferError:  # non-contiguous: let pickle copy it in-band
                return True
            if raw.nbytes < self.threshold:
                return True
            total += raw.nbytes
            refs.append(self._new_segment(raw))
            return False

        head: bytes | SegmentRef
        try:
            stream = pickle.dumps(obj, protocol=5, buffer_callback=place)
            nbytes = len(stream) + total
            head = stream
            if len(stream) >= self.threshold:
                head = self._new_segment(stream)
        except Exception as err:
            # Abandon any segments written before the failure (an
            # unpicklable payload, or shm exhaustion mid-placement).
            self.release(Frame(codec=self.name, stream=b"", buffers=tuple(refs)))
            if isinstance(err, TransportError):
                raise
            raise TransportError(f"unencodable payload: {err!r}") from err
        return Frame(codec=self.name, stream=head, buffers=tuple(refs), nbytes=nbytes)
