"""Size-stratified link estimation: fit latency + bandwidth from transfers.

The distributed coordinator measures, for every item, the pure wire time of
one task/result round trip (``rtt - service - wait``) and knows exactly how
many payload bytes crossed (task frame out plus result frame back).  Under
the affine link model the throughput predictor already prices
(:func:`repro.model.throughput._transfer_time`)::

    overhead(S) = 2 * latency + S / bandwidth

so a regression of observed ``(S, overhead)`` pairs recovers *both* link
parameters — replacing the constant-bandwidth assumption the coordinator's
``resource_view`` previously baked in (ROADMAP: "distributed bandwidth
estimation").

Samples are **stratified by size** into log2 buckets before fitting: real
streams are dominated by whatever payload size the pipeline currently
emits, and an unstratified least squares would collapse onto that cluster
and extrapolate garbage.  Each bucket keeps an EWMA of its transfer times;
the regression runs over bucket means, weighted by bucket occupancy, so a
handful of large-payload observations is enough to bend the fitted slope.

Fallbacks keep the estimator honest before it has evidence: with fewer
than two occupied buckets (no size spread at all), bandwidth stays at the
caller's default and latency is the mean overhead divided by the round
trips per sample — exactly the EWMA behaviour the coordinator had before
this model existed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive

__all__ = ["LinkModel", "SizeStratifiedLinkEstimator"]

#: Fitted bandwidth is clamped into this range: below, a pathological fit
#: would price every transfer as infinite; above, the slope is noise and
#: the link is effectively latency-only (e.g. descriptor-only shm frames).
_MIN_BANDWIDTH = 1e3
_MAX_BANDWIDTH = 1e12


@dataclass(frozen=True)
class LinkModel:
    """One link's fitted affine cost: ``seconds(S) = latency + S / bandwidth``.

    ``fitted`` distinguishes a genuine two-parameter regression from the
    fallback (default bandwidth, measured latency only).
    """

    latency_s: float
    bandwidth_Bps: float
    n_samples: int = 0
    fitted: bool = False

    def seconds(self, nbytes: float) -> float:
        return self.latency_s + max(0.0, nbytes) / self.bandwidth_Bps


class SizeStratifiedLinkEstimator:
    """Online (size, seconds) samples -> :class:`LinkModel`.

    Parameters
    ----------
    default_bandwidth:
        Bandwidth reported until the samples show real size spread.
    round_trips:
        How many one-way latencies one observed sample spans (2 for the
        coordinator's task+result round trip); fitted intercepts are
        divided by it so ``LinkModel.latency_s`` is always one-way.
    alpha:
        EWMA weight of new samples within a size bucket.
    """

    def __init__(
        self,
        *,
        default_bandwidth: float = 1e8,
        round_trips: int = 2,
        alpha: float = 0.3,
    ) -> None:
        check_positive(default_bandwidth, "default_bandwidth")
        check_positive(round_trips, "round_trips")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.default_bandwidth = float(default_bandwidth)
        self.round_trips = int(round_trips)
        self.alpha = float(alpha)
        # bucket (log2 of size) -> [ewma_seconds, ewma_size, count]
        self._buckets: dict[int, list[float]] = {}
        self._n = 0

    def observe(self, nbytes: float, seconds: float) -> None:
        """Record one transfer: ``nbytes`` crossed the link in ``seconds``."""
        if seconds < 0 or math.isnan(seconds):
            return
        self._n += 1
        bucket = max(0, int(nbytes)).bit_length()
        entry = self._buckets.get(bucket)
        if entry is None:
            self._buckets[bucket] = [float(seconds), float(nbytes), 1]
        else:
            entry[0] += self.alpha * (seconds - entry[0])
            entry[1] += self.alpha * (nbytes - entry[1])
            entry[2] += 1

    @property
    def n_samples(self) -> int:
        return self._n

    def fit(self) -> LinkModel:
        """Current best (latency, bandwidth); falls back without size spread."""
        if not self._buckets:
            return LinkModel(0.0, self.default_bandwidth, 0, fitted=False)
        times = [e[0] for e in self._buckets.values()]
        sizes = [e[1] for e in self._buckets.values()]
        weights = [float(e[2]) for e in self._buckets.values()]
        wsum = sum(weights)
        mean_t = sum(w * t for w, t in zip(weights, times)) / wsum
        mean_s = sum(w * s for w, s in zip(weights, sizes)) / wsum
        fallback = LinkModel(
            max(0.0, mean_t / self.round_trips),
            self.default_bandwidth,
            self._n,
            fitted=False,
        )
        if len(self._buckets) < 2:
            return fallback
        # Weighted least squares over bucket means: t = a + S * b.
        var_s = sum(w * (s - mean_s) ** 2 for w, s in zip(weights, sizes)) / wsum
        if var_s <= 0.0:
            return fallback
        cov = (
            sum(
                w * (s - mean_s) * (t - mean_t)
                for w, s, t in zip(weights, sizes, times)
            )
            / wsum
        )
        slope = cov / var_s
        if slope <= 0.0:
            # No measurable size dependence: a latency-dominated link (or a
            # descriptor-only shm path) — bandwidth is effectively unbounded.
            return LinkModel(
                max(0.0, mean_t / self.round_trips), _MAX_BANDWIDTH, self._n, fitted=True
            )
        bandwidth = min(_MAX_BANDWIDTH, max(_MIN_BANDWIDTH, 1.0 / slope))
        intercept = mean_t - slope * mean_s
        latency = max(0.0, intercept / self.round_trips)
        return LinkModel(latency, bandwidth, self._n, fitted=True)
