"""Pluggable payload transport: codecs, shared-memory frames, link models.

The transport subsystem decouples *what* crosses an execution boundary (an
item) from *how its bytes travel* (inline pickle vs shared-memory
descriptors).  Both heavy backends route items through a
:class:`~repro.transport.frames.Codec` selected by name:

* ``"pickle"`` — everything inline (the portable baseline);
* ``"shm"`` — every eligible buffer in a ``multiprocessing.shared_memory``
  segment, descriptors on the wire;
* ``"auto"`` — per-item by size: inline below
  :data:`~repro.transport.codecs.AUTO_THRESHOLD`, shared memory above
  (the default of both backends).

:mod:`repro.transport.linkfit` is the measurement half: size-stratified
transfer samples fitted to the ``latency + bytes/bandwidth`` model the
throughput predictor prices links with.  See ``docs/transport.md``.
"""

from __future__ import annotations

from typing import Callable

from repro.transport.codecs import (
    AUTO_THRESHOLD,
    PickleCodec,
    SharedMemoryCodec,
    calibrated_auto_threshold,
)
from repro.transport.frames import (
    SHM_PREFIX,
    Codec,
    Frame,
    SegmentRef,
    TransportError,
    decode_frame,
    materialize,
    new_session,
    session_segments,
    sweep_session,
    untrack,
)
from repro.transport.linkfit import LinkModel, SizeStratifiedLinkEstimator

__all__ = [
    "AUTO_THRESHOLD",
    "Codec",
    "Frame",
    "LinkModel",
    "PickleCodec",
    "SHM_PREFIX",
    "SegmentRef",
    "SharedMemoryCodec",
    "SizeStratifiedLinkEstimator",
    "TransportError",
    "available_codecs",
    "calibrated_auto_threshold",
    "decode_frame",
    "from_spec",
    "get",
    "materialize",
    "new_session",
    "register_codec",
    "session_segments",
    "spec_of",
    "sweep_session",
    "untrack",
]

_REGISTRY: dict[str, Callable[..., Codec]] = {}


def register_codec(
    name: str, factory: Callable[..., Codec], *, overwrite: bool = False
) -> None:
    """Register ``factory(**kwargs) -> Codec`` under ``name``."""
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"codec {name!r} is already registered")
    _REGISTRY[name] = factory


def available_codecs() -> list[str]:
    return sorted(_REGISTRY)


def get(name: str | Codec, **kwargs) -> Codec:
    """Resolve a codec by registry name (instances pass through unchanged)."""
    if isinstance(name, Codec):
        if kwargs:
            raise ValueError(
                f"codec instance given; unexpected kwargs: {sorted(kwargs)}"
            )
        return name
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        ) from None
    return factory(**kwargs)


def spec_of(codec: Codec) -> dict:
    """A picklable description another process can rebuild the codec from.

    Carries the registry name, the shared session token (one sweep must
    cover every party's segments) and the placement threshold where the
    codec has one — exactly what the process backend hands its forked
    workers and the distributed coordinator sends in ``welcome``.
    """
    spec = {"name": codec.name, "session": codec.session}
    threshold = getattr(codec, "threshold", None)
    if threshold is not None:
        spec["threshold"] = threshold
    return spec


def from_spec(spec: dict) -> Codec:
    """Rebuild a codec from :func:`spec_of` output (in another process)."""
    kwargs = {k: v for k, v in spec.items() if k != "name"}
    return get(spec["name"], **kwargs)


def _auto(**kwargs) -> Codec:
    kwargs.setdefault("threshold", AUTO_THRESHOLD)
    codec = SharedMemoryCodec(**kwargs)
    codec.name = "auto"  # placement policy label in frames and reports
    return codec


register_codec("pickle", PickleCodec)
register_codec("shm", SharedMemoryCodec)
register_codec("auto", _auto)
