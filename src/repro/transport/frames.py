"""The payload transport port: codecs that turn objects into frames.

A :class:`Frame` is the unit every heavy backend moves between processes
and hosts: a pickle-protocol-5 stream plus that stream's out-of-band
buffers, each carried either **inline** (plain bytes, travels with the
frame) or as a :class:`SegmentRef` — the name of a
``multiprocessing.shared_memory`` segment holding the actual bytes, so
only a descriptor crosses the queue or socket.

A :class:`Codec` decides *placement* at encode time (which buffers go to
shared memory); decoding is codec-agnostic because frames are
self-describing — :func:`decode_frame` reconstructs the object from any
frame, wherever it was encoded.  The lifecycle contract:

* ``encode`` creates segments (the creator closes its handles at once —
  segments survive by name, not by fd);
* ``decode`` **copies** buffer contents out of segments and never unlinks
  — decoding is side-effect-free, so an item can be re-dispatched after a
  consumer crash;
* ``release`` unlinks a frame's segments.  Exactly one party owns each
  frame's release (the worker for process-pool task frames, the
  coordinator for everything distributed); duplicate or concurrent
  releases are no-ops;
* :func:`sweep_session` is the safety net: it unlinks every surviving
  segment of a session (abort paths, crashed workers that never reported
  their segment names).

Segment names share a per-session prefix (``repro-shm-<session>-``) so a
sweep can find orphans by name alone, and so leak checks (tests, CI) can
assert the namespace is empty.
"""

from __future__ import annotations

import os
import pickle
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory

__all__ = [
    "Codec",
    "Frame",
    "SegmentRef",
    "SHM_PREFIX",
    "TransportError",
    "decode_frame",
    "materialize",
    "new_session",
    "session_segments",
    "sweep_session",
    "untrack",
]

#: Common prefix of every shared-memory segment this package creates.
SHM_PREFIX = "repro-shm-"

#: Where POSIX shared memory is visible as files (Linux); sweeps and leak
#: checks glob here.  On platforms without it, sweeps fall back to the
#: per-codec created-name ledger.
_SHM_DIR = "/dev/shm"


class TransportError(RuntimeError):
    """A frame could not be encoded, decoded or released."""


def new_session() -> str:
    """A fresh session token (the shared namespace of one backend's frames)."""
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class SegmentRef:
    """Descriptor of one shared-memory segment holding payload bytes.

    ``size`` is the payload length; the segment itself may be larger (the
    kernel rounds allocations up to page multiples).
    """

    name: str
    size: int


@dataclass(frozen=True)
class Frame:
    """One encoded payload: a pickle stream plus its out-of-band buffers.

    ``stream`` and each entry of ``buffers`` are either plain bytes
    (inline) or a :class:`SegmentRef`.  ``nbytes`` is the total payload
    size — stream plus all buffers, regardless of placement — which is
    what transfer-time models and the monitor's byte accounting consume.
    ``codec`` names the codec that chose the placement (reporting only;
    decoding needs no codec).
    """

    codec: str
    stream: bytes | SegmentRef
    buffers: tuple[bytes | SegmentRef, ...] = ()
    nbytes: int = 0

    def segment_refs(self) -> list[SegmentRef]:
        parts: list[bytes | SegmentRef] = [self.stream, *self.buffers]
        return [p for p in parts if isinstance(p, SegmentRef)]

    @property
    def inline(self) -> bool:
        """True when the frame is self-contained (no shared-memory refs)."""
        return not self.segment_refs()


# ------------------------------------------------------------------ segments
def untrack(seg: shared_memory.SharedMemory) -> None:
    """Opt one open segment out of ``multiprocessing.resource_tracker``.

    On Python 3.8–3.12 the tracker registers segments on *attach* as well
    as create (cpython#82300), and lazily-started per-process trackers
    then warn about "leaked" segments another process legitimately
    unlinked.  This package owns the full lifecycle — explicit
    ``release`` plus the session sweep — so every create or attach that
    will *not* end in a local ``unlink()`` (whose own unregister balances
    the books) is untracked immediately.
    """
    try:
        from multiprocessing import resource_tracker

        # The tracker stores the slash-prefixed OS name (``seg._name``).
        resource_tracker.unregister(getattr(seg, "_name", seg.name), "shared_memory")
    except Exception:  # noqa: BLE001 - tracking is best-effort everywhere
        pass


def _read_segment(ref: SegmentRef) -> bytearray:
    """Copy a segment's payload out (writable, so numpy views stay mutable)."""
    try:
        seg = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError as err:
        raise TransportError(
            f"shared-memory segment {ref.name!r} is gone (released before "
            "decode, or swept by an abort)"
        ) from err
    untrack(seg)  # attach registered it; decoding takes no ownership
    try:
        data = bytearray(seg.buf[: ref.size])
    finally:
        seg.close()
    return data


def _segment_exists(name: str) -> bool:
    """Does a segment still exist?  Portable (probes by attach off-Linux)."""
    if os.path.isdir(_SHM_DIR):
        return os.path.exists(os.path.join(_SHM_DIR, name))
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (OSError, ValueError):
        return False
    untrack(seg)
    seg.close()
    return True


def _unlink_segment(name: str) -> bool:
    """Unlink one segment by name; False when it was already gone."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        seg.close()
        seg.unlink()  # its unregister balances the attach-side register
    except FileNotFoundError:  # raced another releaser between open and unlink
        untrack(seg)  # unlink never ran, so balance the register ourselves
        return False
    return True


def decode_frame(frame: Frame) -> object:
    """Reconstruct the object from any frame (does **not** release it)."""
    stream = (
        bytes(_read_segment(frame.stream))
        if isinstance(frame.stream, SegmentRef)
        else frame.stream
    )
    buffers = [
        _read_segment(b) if isinstance(b, SegmentRef) else b for b in frame.buffers
    ]
    try:
        return pickle.loads(stream, buffers=buffers)
    except TransportError:
        raise
    except Exception as err:
        raise TransportError(f"undecodable frame ({frame.codec}): {err!r}") from err


def materialize(frame: Frame, *, release: bool = True) -> Frame:
    """An equivalent self-contained frame (segments copied inline).

    Used when a frame must cross a boundary shared memory cannot (a remote
    worker).  ``release`` (default) unlinks the source segments — the
    materialized frame replaces the original.
    """
    if frame.inline:
        return frame
    stream = frame.stream
    if isinstance(stream, SegmentRef):
        stream = bytes(_read_segment(stream))
    # Buffers stay bytearray: pickle rebuilds numpy arrays as views of the
    # provided buffers, and a bytes buffer would make them read-only on
    # the materialized path only (breaking in-place stages remotely).
    buffers = tuple(
        _read_segment(b) if isinstance(b, SegmentRef) else b for b in frame.buffers
    )
    if release:
        for ref in frame.segment_refs():
            _unlink_segment(ref.name)
    return Frame(codec=frame.codec, stream=stream, buffers=buffers, nbytes=frame.nbytes)


def session_segments(session: str) -> list[str]:
    """Names of the session's segments still alive (Linux: globs /dev/shm)."""
    prefix = f"{SHM_PREFIX}{session}-"
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def sweep_session(session: str, *, extra_names: set[str] | None = None) -> list[str]:
    """Unlink every surviving segment of ``session``; returns removed names.

    The abort/crash safety net: callers run it once the session's producers
    and consumers are all stopped.  ``extra_names`` is the portable fallback
    ledger (names a codec created) for platforms without a /dev/shm to glob.
    """
    names = set(session_segments(session))
    if extra_names:
        names |= extra_names
    removed = [name for name in sorted(names) if _unlink_segment(name)]
    return removed


class Codec:
    """Placement policy port: object -> :class:`Frame` and back.

    Instances are cheap and process-local; what must be *shared* between
    the parties of one pipeline run is only the session token (so sweeps
    cover every process's segments) and the placement parameters (so both
    sides agree on what travels by descriptor).
    """

    name: str = "abstract"

    #: Ledger size that triggers a prune of already-consumed names.
    _LEDGER_LIMIT = 4096

    def __init__(self, *, session: str | None = None) -> None:
        self.session = session if session is not None else new_session()
        self._created: set[str] = set()

    def track(self, name: str) -> None:
        """Adopt a segment into this codec's sweep ledger.

        The ledger is the portable sweep fallback (no /dev/shm to glob).
        Frames this codec encodes are tracked automatically; callers that
        create session segments directly (e.g. the distributed probe)
        register them here.  Most frames are *released in a different
        process* (the consumer), so a long-lived encoder prunes names
        that no longer exist once the ledger passes ``_LEDGER_LIMIT`` —
        membership is advisory, existence is what sweeps act on.
        """
        self._created.add(name)
        if len(self._created) > self._LEDGER_LIMIT:
            self._created = {n for n in self._created if _segment_exists(n)}

    # ------------------------------------------------------------------ port
    def encode(self, obj: object) -> Frame:
        raise NotImplementedError

    def decode(self, frame: Frame) -> object:
        """Reconstruct the object (frames are self-describing; no unlink)."""
        return decode_frame(frame)

    def release(self, frame: Frame) -> None:
        """Unlink the frame's segments; duplicate release is a no-op."""
        for ref in frame.segment_refs():
            _unlink_segment(ref.name)
            self._created.discard(ref.name)

    def sweep(self) -> list[str]:
        """Unlink every surviving segment of this codec's session."""
        removed = sweep_session(self.session, extra_names=self._created)
        self._created.clear()
        return removed

    def close(self) -> None:
        """Release whatever the codec still tracks (idempotent)."""
        self.sweep()
