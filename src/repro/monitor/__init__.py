"""Resource monitoring and forecasting (the NWS-like substrate).

The adaptive pipeline cannot read ground truth: it must *measure*.  This
package supplies:

* :mod:`repro.monitor.samples` — timestamped measurement streams with
  windowed queries.
* :mod:`repro.monitor.forecasters` — one-step-ahead predictors and the
  Network-Weather-Service-style :class:`EnsembleForecaster` that dynamically
  selects the predictor with the lowest running error.
* :mod:`repro.monitor.resource_monitor` — periodic (noisy) sampling of
  processor availability and link performance inside a simulation.
* :mod:`repro.monitor.instrument` — stage-level instrumentation: service
  times, transfer times, queue occupancy; the *observe* step of the pattern.
"""

from repro.monitor.forecasters import (
    EnsembleForecaster,
    ExponentialSmoothingForecaster,
    Forecaster,
    LastValueForecaster,
    RunningMeanForecaster,
    SlidingMeanForecaster,
    SlidingMedianForecaster,
    default_ensemble,
)
from repro.monitor.instrument import PipelineInstrumentation, StageMetrics, StageSnapshot
from repro.monitor.resource_monitor import ResourceEstimates, ResourceMonitor
from repro.monitor.samples import MeasurementStream

__all__ = [
    "EnsembleForecaster",
    "ExponentialSmoothingForecaster",
    "Forecaster",
    "LastValueForecaster",
    "MeasurementStream",
    "PipelineInstrumentation",
    "ResourceEstimates",
    "ResourceMonitor",
    "RunningMeanForecaster",
    "SlidingMeanForecaster",
    "SlidingMedianForecaster",
    "StageMetrics",
    "StageSnapshot",
    "default_ensemble",
]
