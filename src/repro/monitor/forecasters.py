"""One-step-ahead forecasters and the NWS-style adaptive ensemble.

The Network Weather Service (Wolski et al., FGCS 1999) — the monitoring
substrate grid schedulers of the paper's era relied on — forecasts each
resource series with a *family* of simple predictors and, at every step,
reports the prediction of whichever predictor has the lowest accumulated
error so far.  :class:`EnsembleForecaster` reproduces exactly that behaviour;
experiment E7 validates it against individual predictors on several trace
families.

All forecasters share a tiny interface: ``observe(value)`` folds in the next
measurement, ``predict()`` returns the one-step-ahead estimate (NaN before
any data).
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.stats import SlidingWindow
from repro.util.validation import check_positive

__all__ = [
    "Forecaster",
    "LastValueForecaster",
    "RunningMeanForecaster",
    "SlidingMeanForecaster",
    "SlidingMedianForecaster",
    "ExponentialSmoothingForecaster",
    "EnsembleForecaster",
    "default_ensemble",
]


class Forecaster:
    """Interface for one-step-ahead prediction of a scalar series."""

    name: str = "forecaster"

    def observe(self, value: float) -> None:
        """Fold the next measurement into the forecaster state."""
        raise NotImplementedError

    def predict(self) -> float:
        """One-step-ahead prediction; NaN before the first observation."""
        raise NotImplementedError


class LastValueForecaster(Forecaster):
    """Predicts the most recent observation (random-walk-optimal)."""

    name = "last"

    def __init__(self) -> None:
        self._last = math.nan

    def observe(self, value: float) -> None:
        self._last = float(value)

    def predict(self) -> float:
        return self._last


class RunningMeanForecaster(Forecaster):
    """Predicts the mean of the entire history (stationary-optimal)."""

    name = "mean"

    def __init__(self) -> None:
        self._sum = 0.0
        self._n = 0

    def observe(self, value: float) -> None:
        self._sum += float(value)
        self._n += 1

    def predict(self) -> float:
        return self._sum / self._n if self._n else math.nan


class SlidingMeanForecaster(Forecaster):
    """Predicts the mean of the last ``k`` observations."""

    def __init__(self, k: int = 10) -> None:
        check_positive(k, "k")
        self.name = f"win_mean({k})"
        self._win = SlidingWindow(int(k))

    def observe(self, value: float) -> None:
        self._win.push(value)

    def predict(self) -> float:
        return self._win.mean


class SlidingMedianForecaster(Forecaster):
    """Predicts the median of the last ``k`` observations (outlier-robust)."""

    def __init__(self, k: int = 10) -> None:
        check_positive(k, "k")
        self.name = f"win_median({k})"
        self._win = SlidingWindow(int(k))

    def observe(self, value: float) -> None:
        self._win.push(value)

    def predict(self) -> float:
        return self._win.median


class ExponentialSmoothingForecaster(Forecaster):
    """Predicts an exponentially weighted moving average."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.name = f"ewma({alpha})"
        self._alpha = alpha
        self._value = math.nan

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(self._value):
            self._value = value
        else:
            self._value += self._alpha * (value - self._value)

    def predict(self) -> float:
        return self._value


class EnsembleForecaster(Forecaster):
    """NWS-style dynamic predictor selection.

    Every member makes a one-step-ahead prediction before each observation;
    when the observation arrives, each member's absolute error is accumulated
    into a running MAE.  ``predict`` returns the prediction of the member
    with the lowest MAE so far (ties break toward the earliest member, so the
    default ordering makes ``last`` the initial choice).
    """

    name = "ensemble"

    def __init__(self, members: list[Forecaster]) -> None:
        if not members:
            raise ValueError("ensemble requires at least one member")
        self._members = list(members)
        self._abs_err = [0.0] * len(members)
        self._n_scored = [0] * len(members)

    def observe(self, value: float) -> None:
        value = float(value)
        for i, m in enumerate(self._members):
            pred = m.predict()
            if not math.isnan(pred):
                self._abs_err[i] += abs(pred - value)
                self._n_scored[i] += 1
            m.observe(value)

    def _mae(self, i: int) -> float:
        n = self._n_scored[i]
        return self._abs_err[i] / n if n else math.inf

    def best_member(self) -> Forecaster:
        """The member currently trusted (lowest running MAE)."""
        maes = [self._mae(i) for i in range(len(self._members))]
        if all(math.isinf(m) for m in maes):
            return self._members[0]
        return self._members[int(np.argmin(maes))]

    def predict(self) -> float:
        return self.best_member().predict()

    def member_maes(self) -> dict[str, float]:
        """Running MAE per member name (inf before any scored prediction)."""
        return {m.name: self._mae(i) for i, m in enumerate(self._members)}


def default_ensemble() -> EnsembleForecaster:
    """The predictor family used by the resource monitor.

    Mirrors the NWS default mix: last value, running mean, two window means,
    a robust median and an EWMA.
    """
    return EnsembleForecaster(
        [
            LastValueForecaster(),
            RunningMeanForecaster(),
            SlidingMeanForecaster(5),
            SlidingMeanForecaster(20),
            SlidingMedianForecaster(11),
            ExponentialSmoothingForecaster(0.3),
        ]
    )
