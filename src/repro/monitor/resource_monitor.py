"""Periodic, noisy sampling of grid resources inside a simulation.

The :class:`ResourceMonitor` plays the role of the NWS sensors: a simulated
process wakes every ``period`` seconds, "measures" each processor's
availability and each link's bandwidth (ground truth perturbed by
multiplicative Gaussian noise — real sensors are noisy), feeds each series to
its own :func:`~repro.monitor.forecasters.default_ensemble`, and exposes the
forecasts through :meth:`estimates`.

The *decide* step of the adaptive pipeline consumes only these estimates —
never ground truth — so every adaptation decision in the experiments is made
with realistic, imperfect information.

:class:`HostLoadSampler` is the same sensor idea pointed at the *real* host:
it samples ``os.getloadavg()`` and turns it into an effective per-core speed
for the virtual grid the wall-clock adaptation loop plans over, so the
thread and distributed backends model contended cores instead of assuming
speed 1.0.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.gridsim.engine import Simulator
from repro.gridsim.grid import GridSystem
from repro.monitor.forecasters import EnsembleForecaster, default_ensemble
from repro.monitor.samples import MeasurementStream
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "HostLoadSampler",
    "ResourceMonitor",
    "ResourceEstimates",
    "load_to_speed",
    "read_load1",
]

#: Effective speed is never reported below this: a saturated host still
#: makes progress, and a zero speed would divide the throughput model by 0.
SPEED_FLOOR = 0.05


def read_load1() -> float:
    """The host's 1-minute load average; 0.0 where unavailable (dedicated).

    The one load sensor in the codebase: the thread backend's sampler and
    the distributed worker's heartbeats both read through here.
    """
    if not hasattr(os, "getloadavg"):
        return 0.0
    try:
        return float(os.getloadavg()[0])
    except OSError:
        return 0.0


def load_to_speed(load: float, cores: int, *, floor: float = SPEED_FLOOR) -> float:
    """Effective per-core speed of a host with ``cores`` at load avg ``load``.

    The NWS-style availability heuristic: each unit of load average is one
    runnable task contending for a core, so a newly placed worker sees
    roughly the free fraction ``1 - load/cores`` of one core, clamped to
    ``[floor, 1]``.
    """
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    return max(floor, min(1.0, 1.0 - max(0.0, load) / cores))


class HostLoadSampler:
    """Samples the host's load average into an effective-speed estimate.

    Samples are rate-limited (at most one ``os.getloadavg`` call per
    ``min_interval`` seconds) and EWMA-smoothed, because the decide loop may
    query at sub-second cadence while the kernel updates the 1-minute load
    average far more slowly.  On platforms without ``os.getloadavg`` the
    sampler reports a dedicated host (speed 1.0, load 0.0).
    """

    def __init__(
        self,
        *,
        cores: int | None = None,
        alpha: float = 0.5,
        min_interval: float = 0.25,
        floor: float = SPEED_FLOOR,
    ) -> None:
        check_non_negative(min_interval, "min_interval")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.cores = cores if cores is not None else (os.cpu_count() or 1)
        self.alpha = float(alpha)
        self.min_interval = float(min_interval)
        self.floor = float(floor)
        self._speed: float | None = None
        self._load = 0.0
        self._last_sample = -math.inf

    def sample(self) -> float:
        """Take (or reuse) a load sample; returns the raw 1-min load avg."""
        now = time.monotonic()
        if now - self._last_sample >= self.min_interval:
            self._last_sample = now
            self._load = read_load1()
            raw = load_to_speed(self._load, self.cores, floor=self.floor)
            if self._speed is None:
                self._speed = raw
            else:
                self._speed += self.alpha * (raw - self._speed)
        return self._load

    def effective_speed(self) -> float:
        """Smoothed effective per-core speed in ``[floor, 1]``."""
        self.sample()
        assert self._speed is not None
        return self._speed


@dataclass(frozen=True)
class ResourceEstimates:
    """Forecasts of grid state, as believed by the monitor at ``time``.

    ``availability`` maps pid → forecast availability (0, 1]; ``bandwidth``
    maps (src, dst) → forecast bytes/s; ``latency`` maps (src, dst) →
    latency in seconds (latencies are treated as static, matching the
    topology model).
    """

    time: float
    availability: dict[int, float]
    bandwidth: dict[tuple[int, int], float] = field(default_factory=dict)
    latency: dict[tuple[int, int], float] = field(default_factory=dict)

    def effective_speed(self, pid: int, nominal_speed: float) -> float:
        """Forecast work-units/s for a processor of ``nominal_speed``."""
        return nominal_speed * self.availability[pid]


class ResourceMonitor:
    """Samples a :class:`GridSystem` periodically from within a simulation.

    Parameters
    ----------
    sim, grid:
        The simulation to run in and the grid to observe.
    period:
        Sampling interval in simulated seconds.
    noise_std:
        Multiplicative measurement noise: a sample of true value ``v`` is
        ``v * (1 + N(0, noise_std))`` clamped positive.  0 disables noise.
    rng:
        Source of measurement noise (seeded upstream).
    pairs:
        Link pairs to monitor; defaults to all ordered pairs.
    """

    def __init__(
        self,
        sim: Simulator,
        grid: GridSystem,
        *,
        period: float = 1.0,
        noise_std: float = 0.02,
        rng: np.random.Generator | None = None,
        pairs: list[tuple[int, int]] | None = None,
    ) -> None:
        check_positive(period, "period")
        check_non_negative(noise_std, "noise_std")
        self._sim = sim
        self._grid = grid
        self.period = float(period)
        self.noise_std = float(noise_std)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        pids = grid.pids
        self._pairs = pairs if pairs is not None else [(a, b) for a in pids for b in pids]
        self._avail_fc: dict[int, EnsembleForecaster] = {p: default_ensemble() for p in pids}
        self._bw_fc: dict[tuple[int, int], EnsembleForecaster] = {
            pr: default_ensemble() for pr in self._pairs
        }
        self._avail_streams: dict[int, MeasurementStream] = {
            p: MeasurementStream(f"avail[{p}]") for p in pids
        }
        self._samples_taken = 0
        self._proc = sim.process(self._sampling_loop(), name="resource-monitor")

    # -- measurement --------------------------------------------------------
    def _noisy(self, true_value: float) -> float:
        if self.noise_std == 0.0:
            return true_value
        factor = 1.0 + float(self._rng.normal(0.0, self.noise_std))
        return max(1e-9, true_value * factor)

    def _sample_once(self) -> None:
        t = self._sim.now
        for pid in self._grid.pids:
            measured = self._noisy(self._grid.processor(pid).availability(t))
            measured = min(1.0, measured)
            self._avail_fc[pid].observe(measured)
            self._avail_streams[pid].add(t, measured)
        for a, b in self._pairs:
            link = self._grid.link(a, b)
            self._bw_fc[(a, b)].observe(self._noisy(link.effective_bandwidth(t)))
        self._samples_taken += 1

    def _sampling_loop(self):
        # Take a sample immediately so estimates exist from t=0.
        self._sample_once()
        while True:
            yield self._sim.timeout(self.period)
            self._sample_once()

    # -- queries --------------------------------------------------------------
    @property
    def samples_taken(self) -> int:
        return self._samples_taken

    def availability_stream(self, pid: int) -> MeasurementStream:
        """Raw measured availability series for one processor."""
        return self._avail_streams[pid]

    def estimates(self) -> ResourceEstimates:
        """Current forecasts for all monitored resources."""
        avail = {}
        for pid, fc in self._avail_fc.items():
            pred = fc.predict()
            if math.isnan(pred):
                pred = 1.0  # optimistic prior before any sample
            avail[pid] = min(1.0, max(1e-3, pred))
        bandwidth = {}
        latency = {}
        for pr, fc in self._bw_fc.items():
            pred = fc.predict()
            link = self._grid.link(*pr)
            bandwidth[pr] = link.bandwidth if math.isnan(pred) else max(1e-9, pred)
            latency[pr] = link.latency
        return ResourceEstimates(
            time=self._sim.now, availability=avail, bandwidth=bandwidth, latency=latency
        )

    def stop(self) -> None:
        """Stop the sampling loop (e.g. at the end of a run)."""
        self._proc.interrupt("monitor-stop")
