"""Periodic, noisy sampling of grid resources inside a simulation.

The :class:`ResourceMonitor` plays the role of the NWS sensors: a simulated
process wakes every ``period`` seconds, "measures" each processor's
availability and each link's bandwidth (ground truth perturbed by
multiplicative Gaussian noise — real sensors are noisy), feeds each series to
its own :func:`~repro.monitor.forecasters.default_ensemble`, and exposes the
forecasts through :meth:`estimates`.

The *decide* step of the adaptive pipeline consumes only these estimates —
never ground truth — so every adaptation decision in the experiments is made
with realistic, imperfect information.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.gridsim.engine import Simulator
from repro.gridsim.grid import GridSystem
from repro.monitor.forecasters import EnsembleForecaster, default_ensemble
from repro.monitor.samples import MeasurementStream
from repro.util.validation import check_non_negative, check_positive

__all__ = ["ResourceMonitor", "ResourceEstimates"]


@dataclass(frozen=True)
class ResourceEstimates:
    """Forecasts of grid state, as believed by the monitor at ``time``.

    ``availability`` maps pid → forecast availability (0, 1]; ``bandwidth``
    maps (src, dst) → forecast bytes/s; ``latency`` maps (src, dst) →
    latency in seconds (latencies are treated as static, matching the
    topology model).
    """

    time: float
    availability: dict[int, float]
    bandwidth: dict[tuple[int, int], float] = field(default_factory=dict)
    latency: dict[tuple[int, int], float] = field(default_factory=dict)

    def effective_speed(self, pid: int, nominal_speed: float) -> float:
        """Forecast work-units/s for a processor of ``nominal_speed``."""
        return nominal_speed * self.availability[pid]


class ResourceMonitor:
    """Samples a :class:`GridSystem` periodically from within a simulation.

    Parameters
    ----------
    sim, grid:
        The simulation to run in and the grid to observe.
    period:
        Sampling interval in simulated seconds.
    noise_std:
        Multiplicative measurement noise: a sample of true value ``v`` is
        ``v * (1 + N(0, noise_std))`` clamped positive.  0 disables noise.
    rng:
        Source of measurement noise (seeded upstream).
    pairs:
        Link pairs to monitor; defaults to all ordered pairs.
    """

    def __init__(
        self,
        sim: Simulator,
        grid: GridSystem,
        *,
        period: float = 1.0,
        noise_std: float = 0.02,
        rng: np.random.Generator | None = None,
        pairs: list[tuple[int, int]] | None = None,
    ) -> None:
        check_positive(period, "period")
        check_non_negative(noise_std, "noise_std")
        self._sim = sim
        self._grid = grid
        self.period = float(period)
        self.noise_std = float(noise_std)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        pids = grid.pids
        self._pairs = pairs if pairs is not None else [(a, b) for a in pids for b in pids]
        self._avail_fc: dict[int, EnsembleForecaster] = {p: default_ensemble() for p in pids}
        self._bw_fc: dict[tuple[int, int], EnsembleForecaster] = {
            pr: default_ensemble() for pr in self._pairs
        }
        self._avail_streams: dict[int, MeasurementStream] = {
            p: MeasurementStream(f"avail[{p}]") for p in pids
        }
        self._samples_taken = 0
        self._proc = sim.process(self._sampling_loop(), name="resource-monitor")

    # -- measurement --------------------------------------------------------
    def _noisy(self, true_value: float) -> float:
        if self.noise_std == 0.0:
            return true_value
        factor = 1.0 + float(self._rng.normal(0.0, self.noise_std))
        return max(1e-9, true_value * factor)

    def _sample_once(self) -> None:
        t = self._sim.now
        for pid in self._grid.pids:
            measured = self._noisy(self._grid.processor(pid).availability(t))
            measured = min(1.0, measured)
            self._avail_fc[pid].observe(measured)
            self._avail_streams[pid].add(t, measured)
        for a, b in self._pairs:
            link = self._grid.link(a, b)
            self._bw_fc[(a, b)].observe(self._noisy(link.effective_bandwidth(t)))
        self._samples_taken += 1

    def _sampling_loop(self):
        # Take a sample immediately so estimates exist from t=0.
        self._sample_once()
        while True:
            yield self._sim.timeout(self.period)
            self._sample_once()

    # -- queries --------------------------------------------------------------
    @property
    def samples_taken(self) -> int:
        return self._samples_taken

    def availability_stream(self, pid: int) -> MeasurementStream:
        """Raw measured availability series for one processor."""
        return self._avail_streams[pid]

    def estimates(self) -> ResourceEstimates:
        """Current forecasts for all monitored resources."""
        avail = {}
        for pid, fc in self._avail_fc.items():
            pred = fc.predict()
            if math.isnan(pred):
                pred = 1.0  # optimistic prior before any sample
            avail[pid] = min(1.0, max(1e-3, pred))
        bandwidth = {}
        latency = {}
        for pr, fc in self._bw_fc.items():
            pred = fc.predict()
            link = self._grid.link(*pr)
            bandwidth[pr] = link.bandwidth if math.isnan(pred) else max(1e-9, pred)
            latency[pr] = link.latency
        return ResourceEstimates(
            time=self._sim.now, availability=avail, bandwidth=bandwidth, latency=latency
        )

    def stop(self) -> None:
        """Stop the sampling loop (e.g. at the end of a run)."""
        self._proc.interrupt("monitor-stop")
