"""Stage-level instrumentation: the *observe* step of the pattern.

Every stage actor reports per-item service times and transfer times here.
The adaptation policy reads :class:`StageSnapshot` objects — windowed views
of recent behaviour — to locate the bottleneck stage and to estimate each
stage's *work* (service time × effective speed), which is what makes
re-mapping predictions possible on heterogeneous processors.
"""

from __future__ import annotations

import math
from collections import Counter
from contextlib import AbstractContextManager
from dataclasses import dataclass
from typing import Sequence

from repro.util.stats import OnlineStats, SlidingWindow

__all__ = ["StageMetrics", "StageSnapshot", "PipelineInstrumentation"]


@dataclass(frozen=True)
class StageSnapshot:
    """Windowed view of one stage's recent behaviour.

    ``service_time``/``transfer_time`` are window means (seconds/item);
    ``work_estimate`` is the inferred work per item in normalised units
    (service time × the effective speed the item actually saw), which is
    mapping-independent and lets the model predict service times elsewhere.
    ``bytes_in``/``bytes_out`` are window-mean measured payload sizes (0.0
    until a backend records them) — the same observations the distributed
    link-bandwidth fit consumes, so model pricing and reports share one
    data source.
    """

    stage_index: int
    items_processed: int
    service_time: float
    service_cv: float
    transfer_time: float
    work_estimate: float
    queue_length: float
    bytes_in: float = 0.0
    bytes_out: float = 0.0

    @property
    def period(self) -> float:
        """Observed per-item period contribution of this stage."""
        return self.service_time


class StageMetrics:
    """Accumulates measurements for one stage (merging all replicas).

    ``events`` (an :class:`repro.obs.events.EventBus`) turns every
    ``record_service`` into a ``stage.service`` event as well — the single
    hook through which all executors feed both the adaptation policy's
    windows and the telemetry exporters.
    """

    def __init__(self, stage_index: int, window: int = 32, events=None) -> None:
        self.stage_index = stage_index
        self.events = events
        self.total = OnlineStats()
        self._service_win = SlidingWindow(window)
        self._transfer_win = SlidingWindow(window)
        self._work_win = SlidingWindow(window)
        self._queue_win = SlidingWindow(window)
        self._bytes_in_win = SlidingWindow(window)
        self._bytes_out_win = SlidingWindow(window)
        # log2-bucketed payload-size histograms (bucket = nbytes.bit_length(),
        # so bucket b covers [2^(b-1), 2^b)); cheap enough to keep unwindowed.
        self.bytes_in_hist: Counter = Counter()
        self.bytes_out_hist: Counter = Counter()
        self.total_bytes_in = 0
        self.total_bytes_out = 0
        self.items_processed = 0

    def record_service(
        self,
        seconds: float,
        effective_speed: float,
        *,
        seq: int | None = None,
        worker: "int | str | None" = None,
        queue: float | None = None,
        items: int = 1,
    ) -> None:
        """``items`` items serviced in ``seconds`` at the given speed.

        A micro-batched executor records one call per *batch*: the
        policy-facing windows are fed the per-item mean (``seconds /
        items``) so service-time estimates stay comparable with unbatched
        runs, while the emitted ``stage.service`` event carries the batch
        total plus an ``items`` count (and ``seq`` = the batch's first
        item) so span attribution can fan it back out per item without
        double-counting.

        ``seq``/``worker``/``queue`` only annotate the emitted event (span
        attribution and the live ``top`` view); the windows ignore them.
        """
        per_item = seconds / items if items > 1 else seconds
        self.items_processed += items
        for _ in range(items):
            self.total.push(per_item)
        self._service_win.push(per_item)
        self._work_win.push(per_item * effective_speed)
        bus = self.events
        if bus is not None and bus.wants("stage.service"):
            fields: dict = {
                "stage": self.stage_index,
                "seconds": seconds,
                "speed": effective_speed,
            }
            if items > 1:
                fields["items"] = items
            if seq is not None:
                fields["seq"] = seq
            if worker is not None:
                fields["worker"] = worker
            if queue is not None:
                fields["queue"] = queue
            bus.emit("stage.service", **fields)

    def record_transfer(self, seconds: float) -> None:
        """One inter-stage transfer completed (into this stage)."""
        self._transfer_win.push(seconds)

    def record_queue_length(self, length: float) -> None:
        self._queue_win.push(length)

    def record_bytes_in(self, nbytes: float) -> None:
        """One item's measured payload size on arrival at this stage."""
        n = max(0, int(nbytes))
        self._bytes_in_win.push(n)
        self.bytes_in_hist[n.bit_length()] += 1
        self.total_bytes_in += n

    def record_bytes_out(self, nbytes: float) -> None:
        """One item's measured payload size leaving this stage."""
        n = max(0, int(nbytes))
        self._bytes_out_win.push(n)
        self.bytes_out_hist[n.bit_length()] += 1
        self.total_bytes_out += n

    def snapshot(self) -> StageSnapshot:
        service = self._service_win.mean
        std = self._service_win.std
        cv = std / service if service and not math.isnan(std) and service > 0 else 0.0
        transfer = self._transfer_win.mean
        bytes_in = self._bytes_in_win.mean
        bytes_out = self._bytes_out_win.mean
        return StageSnapshot(
            stage_index=self.stage_index,
            items_processed=self.items_processed,
            service_time=service,
            service_cv=cv if not math.isnan(cv) else 0.0,
            transfer_time=0.0 if math.isnan(transfer) else transfer,
            work_estimate=self._work_win.mean,
            queue_length=0.0 if math.isnan(self._queue_win.mean) else self._queue_win.mean,
            bytes_in=0.0 if math.isnan(bytes_in) else bytes_in,
            bytes_out=0.0 if math.isnan(bytes_out) else bytes_out,
        )


class PipelineInstrumentation:
    """Instrumentation for a whole pipeline plus completion accounting.

    Counters are **session-cumulative**: a long-lived streaming session
    keeps one instrumentation across every stream it serves, so windowed
    views (and the adaptation loop reading them) never reset at a stream
    boundary.  :meth:`begin_stream` additionally scopes a per-stream
    completion counter (``stream_items_completed``) so callers can tell
    "items of the current stream" apart from "items since the session
    opened" — the batch accounting that used to be implicit in one-shot
    runs.
    """

    def __init__(self, n_stages: int, window: int = 32, events=None) -> None:
        if n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {n_stages}")
        self.stages = [
            StageMetrics(i, window=window, events=events) for i in range(n_stages)
        ]
        self.completion_times: list[float] = []
        self._window = window
        self.stream_index = 0
        self._stream_start = 0

    def begin_stream(self) -> None:
        """Open a new stream scope for the per-stream completion counter."""
        self.stream_index += 1
        self._stream_start = len(self.completion_times)

    def record_completion(self, t: float, items: int = 1) -> None:
        """``items`` items left the last stage at (simulated) time ``t``.

        A micro-batched collector records one call per delivered batch;
        every item in it counts toward throughput at the batch's delivery
        time (they genuinely completed together).
        """
        if items == 1:
            self.completion_times.append(t)
        else:
            self.completion_times.extend([t] * items)

    @property
    def items_completed(self) -> int:
        return len(self.completion_times)

    @property
    def stream_items_completed(self) -> int:
        """Completions since the last :meth:`begin_stream` (all, before one)."""
        return len(self.completion_times) - self._stream_start

    def snapshots(self, locks: "Sequence[AbstractContextManager] | None" = None) -> list[StageSnapshot]:
        """Per-stage snapshots; ``locks[i]`` (if given) guards stage ``i``.

        The simulator reads single-threaded and passes nothing; the real
        executors pass their per-stage locks so snapshots are consistent
        with concurrent ``record_service`` calls.
        """
        if locks is None:
            return [s.snapshot() for s in self.stages]
        snaps = []
        for stage, lock in zip(self.stages, locks):
            with lock:
                snaps.append(stage.snapshot())
        return snaps

    def bottleneck(self) -> StageSnapshot | None:
        """Stage with the largest recent service time (None before data)."""
        snaps = [s for s in self.snapshots() if not math.isnan(s.service_time)]
        if not snaps:
            return None
        return max(snaps, key=lambda s: s.service_time)

    def recent_throughput(self, now: float, horizon: float) -> float:
        """Completions per second over ``[now - horizon, now]``.

        NaN when the window saw no completions (distinguishes "no data" from
        genuinely zero throughput at the start of a run).
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        since = now - horizon
        recent = [t for t in self.completion_times if t >= since]
        if not recent:
            return math.nan
        return len(recent) / horizon

    def overall_throughput(self, end_time: float | None = None) -> float:
        """Completions per second from t=0 to ``end_time`` (or last item)."""
        if not self.completion_times:
            return 0.0
        end = end_time if end_time is not None else self.completion_times[-1]
        if end <= 0:
            return 0.0
        return len(self.completion_times) / end
