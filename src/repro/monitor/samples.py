"""Timestamped measurement streams.

A :class:`MeasurementStream` is an append-only sequence of ``(time, value)``
pairs with a bounded retention window, supporting the windowed queries the
adaptation policy needs ("mean service time over the last 20 s").
"""

from __future__ import annotations

import bisect
import math
from collections import deque

import numpy as np

from repro.util.validation import check_positive

__all__ = ["MeasurementStream"]


class MeasurementStream:
    """Append-only (time, value) series with bounded retention.

    ``max_samples`` bounds memory; old samples are evicted FIFO.  Times must
    be non-decreasing (enforced), which both the simulator and wall-clock
    collection guarantee.
    """

    def __init__(self, name: str = "", max_samples: int = 4096) -> None:
        check_positive(max_samples, "max_samples")
        self.name = name
        self._times: deque[float] = deque(maxlen=int(max_samples))
        self._values: deque[float] = deque(maxlen=int(max_samples))

    def add(self, t: float, value: float) -> None:
        """Append one measurement; ``t`` must not precede the last sample."""
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"non-monotonic time in stream {self.name!r}: {t} < {self._times[-1]}"
            )
        self._times.append(float(t))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def last_time(self) -> float:
        return self._times[-1] if self._times else math.nan

    @property
    def last_value(self) -> float:
        return self._values[-1] if self._values else math.nan

    def values(self) -> list[float]:
        return list(self._values)

    def times(self) -> list[float]:
        return list(self._times)

    def window(self, since: float) -> list[float]:
        """Values with timestamp >= ``since`` (chronological)."""
        times = list(self._times)
        i = bisect.bisect_left(times, since)
        return list(self._values)[i:]

    def window_mean(self, since: float) -> float:
        """Mean of the window, or NaN when empty."""
        w = self.window(since)
        return float(np.mean(w)) if w else math.nan

    def window_median(self, since: float) -> float:
        w = self.window(since)
        return float(np.median(w)) if w else math.nan

    def window_count(self, since: float) -> int:
        return len(self.window(since))

    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else math.nan
