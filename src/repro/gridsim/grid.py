"""The :class:`GridSystem` façade and point-in-time snapshots.

A :class:`GridSystem` bundles processors and topology, answers "what does the
grid look like right now" via :meth:`GridSystem.snapshot`, and hosts the
perturbation API used by benchmark scenarios.  Snapshots are what the
performance model consumes — they are *ground truth*; the monitoring layer
produces noisy estimates of the same quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gridsim.channels import SimResource
from repro.gridsim.load import CompositeLoad, StepLoad
from repro.gridsim.network import Link, Topology
from repro.gridsim.resources import Processor

__all__ = ["GridSystem", "GridSnapshot"]


@dataclass(frozen=True)
class GridSnapshot:
    """Ground-truth grid state at one instant.

    ``effective_speed[pid]`` is nominal speed × availability; ``links`` maps
    ``(src_pid, dst_pid)`` to ``(latency_s, effective_bandwidth_Bps)``.
    Only pairs that were requested are present in ``links`` (it is built
    lazily via :meth:`GridSystem.snapshot` for the processors of interest).
    """

    time: float
    speed: dict[int, float]
    availability: dict[int, float]
    effective_speed: dict[int, float]
    links: dict[tuple[int, int], tuple[float, float]] = field(default_factory=dict)

    def link_params(self, a: int, b: int) -> tuple[float, float]:
        """(latency, bandwidth) for the ``a``→``b`` pair."""
        return self.links[(a, b)]


class GridSystem:
    """A set of processors plus their interconnect.

    Construct directly from components or declaratively through
    :class:`repro.gridsim.spec.GridSpec`.
    """

    def __init__(self, processors: list[Processor], topology: Topology | None = None) -> None:
        if not processors:
            raise ValueError("a grid needs at least one processor")
        pids = [p.pid for p in processors]
        if len(set(pids)) != len(pids):
            raise ValueError(f"duplicate processor ids: {sorted(pids)}")
        self._procs: dict[int, Processor] = {p.pid: p for p in processors}
        self.topology = topology if topology is not None else Topology()
        self._link_resources: dict[int, SimResource] = {}

    # -- accessors ----------------------------------------------------------
    @property
    def processors(self) -> list[Processor]:
        """Processors ordered by pid."""
        return [self._procs[pid] for pid in sorted(self._procs)]

    @property
    def pids(self) -> list[int]:
        return sorted(self._procs)

    def processor(self, pid: int) -> Processor:
        try:
            return self._procs[pid]
        except KeyError:
            raise KeyError(f"no processor with pid {pid}; have {sorted(self._procs)}") from None

    def link(self, a: int, b: int) -> Link:
        """Link used for data moving from processor ``a`` to ``b``."""
        return self.topology.link(self.processor(a), self.processor(b))

    def link_resource(self, a: int, b: int) -> SimResource:
        """Serialisation resource for the physical link carrying ``a``→``b``.

        Used by executors running with link contention enabled: concurrent
        transfers over the same *physical* link queue here, so a shared
        bottleneck (e.g. the one WAN pipe between two sites, which the
        topology returns as a single :class:`Link` object for every
        cross-site pair) genuinely saturates.  Keyed by link-object
        identity; both directions share (half-duplex).  Same-processor
        transfers never contend — callers skip loopbacks.
        """
        if a == b:
            raise ValueError("loopback transfers do not contend; do not request a resource")
        link = self.link(a, b)
        key = id(link)
        res = self._link_resources.get(key)
        if res is None:
            res = SimResource(capacity=1, name=f"link[{link.name or key}]")
            self._link_resources[key] = res
        return res

    def __len__(self) -> int:
        return len(self._procs)

    def __contains__(self, pid: int) -> bool:
        return pid in self._procs

    # -- snapshots ------------------------------------------------------------
    def snapshot(self, t: float, pairs: list[tuple[int, int]] | None = None) -> GridSnapshot:
        """Ground-truth state at time ``t``.

        ``pairs`` selects which link pairs to materialise; ``None`` includes
        all ordered pairs (fine for the grid sizes in the experiments).
        """
        speed = {pid: p.speed for pid, p in self._procs.items()}
        avail = {pid: p.availability(t) for pid, p in self._procs.items()}
        eff = {pid: speed[pid] * avail[pid] for pid in self._procs}
        if pairs is None:
            pids = sorted(self._procs)
            pairs = [(a, b) for a in pids for b in pids]
        links = {}
        for a, b in pairs:
            lk = self.link(a, b)
            links[(a, b)] = (lk.latency, lk.effective_bandwidth(t))
        return GridSnapshot(
            time=t, speed=speed, availability=avail, effective_speed=eff, links=links
        )

    # -- perturbations ---------------------------------------------------------
    def perturb(self, pid: int, steps: list[tuple[float, float]]) -> None:
        """Overlay a stepped availability schedule on processor ``pid``.

        The schedule multiplies the processor's existing load model, so a node
        that already fluctuates keeps fluctuating around the new level.  Used
        by benchmark scenarios ("at t=40, node 3 drops to 20 %").
        """
        proc = self.processor(pid)
        proc.set_load(CompositeLoad([proc.load, StepLoad(steps, initial=1.0)]))
