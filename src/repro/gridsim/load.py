"""Background-load models: the "non-dedicated" behaviour of grid nodes.

A load model maps simulated time to an **availability** fraction in
``(0, 1]``: the share of a processor's nominal speed left for the pipeline
after external users take theirs.  All models are deterministic functions of
time given their seed, so re-evaluating ``availability(t)`` for the same
``t`` always agrees — a property both the simulator (service times) and the
monitor (measurements) rely on.

Models provided:

====================  =====================================================
:class:`ConstantLoad`  fixed availability (dedicated node when 1.0)
:class:`StepLoad`      piecewise-constant schedule — perturbation scripts
:class:`RandomWalkLoad` reflected Gaussian random walk on a time grid
:class:`MarkovOnOffLoad` alternating exponential busy/idle periods
:class:`PeriodicLoad`  sinusoidal (diurnal) availability
:class:`TraceLoad`     arbitrary (times, values) step trace
:class:`CompositeLoad` product of sub-models (e.g. diurnal × walk)
====================  =====================================================
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

import numpy as np

from repro.util.validation import check_positive, check_probability

__all__ = [
    "LoadModel",
    "ConstantLoad",
    "StepLoad",
    "RandomWalkLoad",
    "MarkovOnOffLoad",
    "PeriodicLoad",
    "TraceLoad",
    "CompositeLoad",
    "MIN_AVAILABILITY",
]

# Availability is clamped away from zero: a fully saturated node still makes
# (very slow) progress, and division by zero in service times is impossible.
MIN_AVAILABILITY = 1e-3


def _clamp(a: float) -> float:
    return min(1.0, max(MIN_AVAILABILITY, a))


class LoadModel:
    """Interface: deterministic availability as a function of time."""

    def availability(self, t: float) -> float:
        """Fraction of nominal speed available at time ``t``, in (0, 1]."""
        raise NotImplementedError

    def __call__(self, t: float) -> float:
        return self.availability(t)


class ConstantLoad(LoadModel):
    """Fixed availability; ``ConstantLoad(1.0)`` is a dedicated node."""

    def __init__(self, availability: float = 1.0) -> None:
        check_probability(availability, "availability")
        self._a = _clamp(availability)

    def availability(self, t: float) -> float:
        return self._a

    def __repr__(self) -> str:
        return f"ConstantLoad({self._a})"


class StepLoad(LoadModel):
    """Piecewise-constant availability from ``[(time, value), ...]`` steps.

    Before the first breakpoint the ``initial`` value applies.  This is the
    workhorse for scripted perturbations ("at t=40 s, node 3 drops to 20 %").
    """

    def __init__(
        self, steps: Sequence[tuple[float, float]], initial: float = 1.0
    ) -> None:
        check_probability(initial, "initial")
        pairs = sorted((float(t), float(v)) for t, v in steps)
        for _, v in pairs:
            check_probability(v, "step value")
        self._times = [t for t, _ in pairs]
        self._values = [_clamp(v) for _, v in pairs]
        self._initial = _clamp(initial)

    def availability(self, t: float) -> float:
        i = bisect.bisect_right(self._times, t)
        return self._initial if i == 0 else self._values[i - 1]

    def __repr__(self) -> str:
        return f"StepLoad({list(zip(self._times, self._values))}, initial={self._initial})"


class TraceLoad(StepLoad):
    """Step trace from explicit arrays (e.g. replayed NWS measurements)."""

    def __init__(self, times: Sequence[float], values: Sequence[float]) -> None:
        if len(times) != len(values):
            raise ValueError(
                f"times and values must have equal length, got {len(times)} vs {len(values)}"
            )
        super().__init__(list(zip(times, values)), initial=values[0] if len(values) else 1.0)


class RandomWalkLoad(LoadModel):
    """Reflected Gaussian random walk sampled on a ``dt`` grid.

    The walk is generated lazily and cached, so ``availability`` is a pure
    function of ``t`` for a fixed seed.  Values reflect off ``lo``/``hi``.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        dt: float = 1.0,
        sigma: float = 0.05,
        start: float = 1.0,
        lo: float = 0.05,
        hi: float = 1.0,
    ) -> None:
        check_positive(dt, "dt")
        check_positive(sigma, "sigma")
        if not MIN_AVAILABILITY <= lo < hi <= 1.0:
            raise ValueError(f"need {MIN_AVAILABILITY} <= lo < hi <= 1, got lo={lo} hi={hi}")
        check_probability(start, "start")
        self._rng = rng
        self._dt = float(dt)
        self._sigma = float(sigma)
        self._lo = float(lo)
        self._hi = float(hi)
        self._values = [float(min(hi, max(lo, start)))]

    def _extend_to(self, k: int) -> None:
        while len(self._values) <= k:
            nxt = self._values[-1] + float(self._rng.normal(0.0, self._sigma))
            # Reflect off the bounds until inside [lo, hi].
            while nxt < self._lo or nxt > self._hi:
                if nxt < self._lo:
                    nxt = 2 * self._lo - nxt
                if nxt > self._hi:
                    nxt = 2 * self._hi - nxt
            self._values.append(nxt)

    def availability(self, t: float) -> float:
        k = max(0, int(t / self._dt))
        self._extend_to(k)
        return _clamp(self._values[k])


class MarkovOnOffLoad(LoadModel):
    """Two-state Markov-modulated load: idle (avail=1) / busy (avail=low).

    Sojourn times are exponential with means ``mean_idle`` and ``mean_busy``.
    Segments are generated lazily from the seeded RNG, so the process is a
    deterministic function of time.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        mean_idle: float = 30.0,
        mean_busy: float = 10.0,
        busy_availability: float = 0.2,
        start_busy: bool = False,
    ) -> None:
        check_positive(mean_idle, "mean_idle")
        check_positive(mean_busy, "mean_busy")
        check_probability(busy_availability, "busy_availability")
        self._rng = rng
        self._mean_idle = float(mean_idle)
        self._mean_busy = float(mean_busy)
        self._busy_avail = _clamp(busy_availability)
        # Segment boundaries: times[i] is the END of segment i.
        self._ends: list[float] = []
        self._busy: list[bool] = []
        self._state_busy = start_busy
        self._horizon = 0.0

    def _extend_to(self, t: float) -> None:
        while self._horizon <= t:
            mean = self._mean_busy if self._state_busy else self._mean_idle
            dur = float(self._rng.exponential(mean))
            self._horizon += max(dur, 1e-9)
            self._ends.append(self._horizon)
            self._busy.append(self._state_busy)
            self._state_busy = not self._state_busy

    def availability(self, t: float) -> float:
        self._extend_to(t)
        i = bisect.bisect_right(self._ends, t)
        if i >= len(self._busy):
            i = len(self._busy) - 1
        return self._busy_avail if self._busy[i] else 1.0


class PeriodicLoad(LoadModel):
    """Sinusoidal (diurnal-style) availability.

    ``availability(t) = base + amplitude * sin(2π (t + phase) / period)``,
    clamped to (0, 1].
    """

    def __init__(
        self,
        *,
        base: float = 0.7,
        amplitude: float = 0.25,
        period: float = 120.0,
        phase: float = 0.0,
    ) -> None:
        check_probability(base, "base")
        check_positive(period, "period")
        if amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {amplitude}")
        self._base = base
        self._amp = amplitude
        self._period = period
        self._phase = phase

    def availability(self, t: float) -> float:
        return _clamp(
            self._base + self._amp * math.sin(2.0 * math.pi * (t + self._phase) / self._period)
        )


class CompositeLoad(LoadModel):
    """Product of sub-model availabilities (clamped)."""

    def __init__(self, models: Sequence[LoadModel]) -> None:
        if not models:
            raise ValueError("CompositeLoad requires at least one model")
        self._models = list(models)

    def availability(self, t: float) -> float:
        a = 1.0
        for m in self._models:
            a *= m.availability(t)
        return _clamp(a)
