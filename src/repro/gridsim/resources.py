"""Processors: heterogeneous, non-dedicated compute resources.

A :class:`Processor` has a *nominal speed* (work units per second, relative
to a reference machine at 1.0) and a background :class:`~repro.gridsim.load.
LoadModel` describing how much of that speed external users take away over
time.  Co-located pipeline stages contend for the processor through its
``resource`` (a capacity-1 :class:`~repro.gridsim.channels.SimResource`),
which realises equitable time-sharing in the simulation.

Service-time semantics: the effective speed is *frozen at service start* —
an item that starts executing when availability is 0.5 runs to completion at
that speed even if availability changes mid-service.  This is a standard DES
approximation; with per-item service times far below load-change timescales
(the regime of every experiment here) the error is negligible.
"""

from __future__ import annotations

from repro.gridsim.channels import SimResource
from repro.gridsim.load import ConstantLoad, LoadModel
from repro.util.validation import check_positive

__all__ = ["Processor"]


class Processor:
    """One grid node.

    Parameters
    ----------
    pid:
        Unique integer id, used in mappings and snapshots.
    speed:
        Nominal speed in work-units/second relative to the reference machine.
    load:
        Background-load model; defaults to a dedicated node.
    site:
        Name of the site (cluster) this node belongs to; drives default link
        selection in :class:`~repro.gridsim.network.Topology`.
    name:
        Human-readable label.
    """

    def __init__(
        self,
        pid: int,
        speed: float = 1.0,
        load: LoadModel | None = None,
        site: str = "site0",
        name: str | None = None,
    ) -> None:
        check_positive(speed, "speed")
        self.pid = int(pid)
        self.speed = float(speed)
        self.load = load if load is not None else ConstantLoad(1.0)
        self.site = site
        self.name = name if name is not None else f"proc{pid}"
        # Capacity-1: co-located stage actors serialise on the CPU.
        self.resource = SimResource(capacity=1, name=f"{self.name}.cpu")

    def availability(self, t: float) -> float:
        """Background-load availability at time ``t`` in (0, 1]."""
        return self.load.availability(t)

    def effective_speed(self, t: float) -> float:
        """Work units per second actually deliverable at time ``t``."""
        return self.speed * self.load.availability(t)

    def service_time(self, work: float, t: float) -> float:
        """Seconds to execute ``work`` units starting at time ``t``."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        return work / self.effective_speed(t)

    def set_load(self, load: LoadModel) -> None:
        """Replace the background-load model (used by perturbation scenarios)."""
        self.load = load

    def __repr__(self) -> str:
        return f"Processor(pid={self.pid}, speed={self.speed}, site={self.site!r})"
