"""Blocking FIFO channels and counting resources for the simulation kernel.

:class:`Channel` mirrors the semantics the paper's eSkel/MPI substrate gives
inter-stage communication: bounded buffering with back-pressure (a full buffer
blocks the producer — this is what makes an upstream stage *feel* a downstream
bottleneck) and strict FIFO ordering.  :class:`SimResource` is a counting
semaphore used to serialise access to processors and (optionally) links.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.gridsim.engine import ResumeFn, Simulator, Waitable

__all__ = ["Channel", "ChannelClosed", "SimResource"]


class ChannelClosed(Exception):
    """Raised at a ``get`` when the channel is closed and drained."""


class _PutOp(Waitable):
    __slots__ = ("channel", "item")

    def __init__(self, channel: "Channel", item: Any) -> None:
        self.channel = channel
        self.item = item

    def _subscribe(self, sim: Simulator, callback: ResumeFn) -> None:
        self.channel._do_put(sim, self.item, callback)


class _PutFrontOp(Waitable):
    __slots__ = ("channel", "item")

    def __init__(self, channel: "Channel", item: Any) -> None:
        self.channel = channel
        self.item = item

    def _subscribe(self, sim: Simulator, callback: ResumeFn) -> None:
        self.channel._do_put_front(sim, self.item, callback)


class _GetOp(Waitable):
    __slots__ = ("channel",)

    def __init__(self, channel: "Channel") -> None:
        self.channel = channel

    def _subscribe(self, sim: Simulator, callback: ResumeFn) -> None:
        self.channel._do_get(sim, callback)


class Channel:
    """Bounded FIFO channel with blocking put/get.

    * ``capacity=None`` means unbounded (puts never block).
    * ``close()`` causes subsequent/blocked gets to raise
      :class:`ChannelClosed` once the buffer drains; puts to a closed channel
      raise immediately (at the yield point).

    Within a process::

        yield ch.put(item)      # blocks while the buffer is full
        item = yield ch.get()   # blocks while the buffer is empty
    """

    def __init__(self, capacity: int | None = None, name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[ResumeFn] = deque()
        self._putters: Deque[tuple[Any, ResumeFn]] = deque()
        self._front_putters: Deque[tuple[Any, ResumeFn]] = deque()
        self._closed = False

    # -- public operation constructors -------------------------------------
    def put(self, item: Any) -> _PutOp:
        """Waitable that completes once ``item`` is accepted by the buffer."""
        return _PutOp(self, item)

    def put_front(self, item: Any) -> _PutFrontOp:
        """Priority put: ``item`` is delivered before anything buffered.

        Used for control markers (e.g. replica stop tokens) that must not
        wait behind a backlog of data items.  If the buffer is full, the
        item is inserted at the front as soon as a slot frees, ahead of any
        blocked ordinary putters.
        """
        return _PutFrontOp(self, item)

    def get(self) -> _GetOp:
        """Waitable that completes with the next item (FIFO)."""
        return _GetOp(self)

    def close(self) -> None:
        """Close the channel; wake blocked getters with :class:`ChannelClosed`
        once (and only once) no buffered items remain for them."""
        if self._closed:
            return
        self._closed = True
        # Blocked getters can never be satisfied: buffer is empty whenever
        # getters wait (invariant), so fail them all now.
        while self._getters:
            cb = self._getters.popleft()
            self._sim_schedule_fail(cb)

    # -- state inspection ---------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        """Number of buffered items."""
        return len(self._items)

    @property
    def waiting_putters(self) -> int:
        return len(self._putters)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    @property
    def occupancy(self) -> float:
        """Buffer fill fraction in [0, 1]; 0 for unbounded channels."""
        if self.capacity is None:
            return 0.0
        return len(self._items) / self.capacity

    # -- kernel-facing plumbing ---------------------------------------------
    _sim: Simulator | None = None

    def _remember_sim(self, sim: Simulator) -> None:
        self._sim = sim

    def _sim_schedule(self, cb: ResumeFn, value: Any) -> None:
        assert self._sim is not None
        self._sim.schedule(0.0, cb, value, None)

    def _sim_schedule_fail(self, cb: ResumeFn) -> None:
        assert self._sim is not None
        self._sim.schedule(
            0.0, cb, None, ChannelClosed(f"channel {self.name!r} closed")
        )

    def _do_put(self, sim: Simulator, item: Any, callback: ResumeFn) -> None:
        self._remember_sim(sim)
        if self._closed:
            sim.schedule(
                0.0,
                callback,
                None,
                ChannelClosed(f"put on closed channel {self.name!r}"),
            )
            return
        if self._getters:
            # Hand the item straight to the oldest blocked getter.
            getter = self._getters.popleft()
            self._sim_schedule(getter, item)
            self._sim_schedule(callback, None)
            return
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self._sim_schedule(callback, None)
            return
        self._putters.append((item, callback))

    def _do_put_front(self, sim: Simulator, item: Any, callback: ResumeFn) -> None:
        self._remember_sim(sim)
        if self._closed:
            sim.schedule(
                0.0,
                callback,
                None,
                ChannelClosed(f"put_front on closed channel {self.name!r}"),
            )
            return
        if self._getters:
            getter = self._getters.popleft()
            self._sim_schedule(getter, item)
            self._sim_schedule(callback, None)
            return
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.appendleft(item)
            self._sim_schedule(callback, None)
            return
        # Buffer full: jump the ordinary putter queue — the item enters at
        # the front as soon as the next get frees a slot.
        self._front_putters.append((item, callback))

    def _do_get(self, sim: Simulator, callback: ResumeFn) -> None:
        self._remember_sim(sim)
        if self._items:
            item = self._items.popleft()
            self._sim_schedule(callback, item)
            if self._front_putters:
                # A slot opened: a priority item enters at the front.
                pitem, pcb = self._front_putters.popleft()
                self._items.appendleft(pitem)
                self._sim_schedule(pcb, None)
            elif self._putters:
                # A buffer slot opened up: admit the oldest blocked putter.
                pitem, pcb = self._putters.popleft()
                self._items.append(pitem)
                self._sim_schedule(pcb, None)
            return
        if self._front_putters:
            pitem, pcb = self._front_putters.popleft()
            self._sim_schedule(callback, pitem)
            self._sim_schedule(pcb, None)
            return
        if self._putters:
            # capacity could be 0-like only transiently; hand over directly.
            pitem, pcb = self._putters.popleft()
            self._sim_schedule(callback, pitem)
            self._sim_schedule(pcb, None)
            return
        if self._closed:
            self._sim_schedule_fail(callback)
            return
        self._getters.append(callback)


class _AcquireOp(Waitable):
    __slots__ = ("resource",)

    def __init__(self, resource: "SimResource") -> None:
        self.resource = resource

    def _subscribe(self, sim: Simulator, callback: ResumeFn) -> None:
        self.resource._do_acquire(sim, callback)


class SimResource:
    """Counting resource (semaphore) with FIFO granting.

    Processors are modelled as ``SimResource(capacity=1)``: stage actors
    co-located on a processor contend for it, which *is* the equitable
    time-sharing the analytic model approximates with a share factor.
    """

    def __init__(self, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[ResumeFn] = deque()
        self._sim: Simulator | None = None

    def acquire(self) -> _AcquireOp:
        """Waitable granting one unit of the resource (FIFO order)."""
        return _AcquireOp(self)

    def release(self) -> None:
        """Return one unit; wakes the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit directly to the next waiter (count unchanged).
            cb = self._waiters.popleft()
            assert self._sim is not None
            self._sim.schedule(0.0, cb, None, None)
        else:
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def _do_acquire(self, sim: Simulator, callback: ResumeFn) -> None:
        self._sim = sim
        if self._in_use < self.capacity:
            self._in_use += 1
            sim.schedule(0.0, callback, None, None)
        else:
            self._waiters.append(callback)
