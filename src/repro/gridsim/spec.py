"""Declarative grid construction.

Experiments describe grids as data (:class:`GridSpec` / :class:`SiteSpec`)
so scenario files and benchmarks stay free of construction boilerplate, and
the same spec can be rebuilt with different seeds for repetitions.

Convenience builders:

* :func:`uniform_grid` — ``n`` identical dedicated nodes in one site.
* :func:`heterogeneous_grid` — explicit per-node speeds in one site.
* :func:`two_site_grid` — a classic grid shape: a fast local cluster plus a
  remote cluster behind a WAN link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.gridsim.grid import GridSystem
from repro.gridsim.load import ConstantLoad, LoadModel
from repro.gridsim.network import Link, Topology
from repro.gridsim.resources import Processor
from repro.util.rng import derive_rng
from repro.util.validation import check_positive

__all__ = ["SiteSpec", "GridSpec", "uniform_grid", "heterogeneous_grid", "two_site_grid"]

# A load factory receives (rng, pid) and returns the node's load model, so
# specs can describe stochastic load without baking in generator state.
LoadFactory = Callable[[np.random.Generator, int], LoadModel]


def _dedicated(_rng: np.random.Generator, _pid: int) -> LoadModel:
    return ConstantLoad(1.0)


@dataclass
class SiteSpec:
    """One cluster: node count, per-node speeds, intra-site link."""

    name: str
    speeds: list[float]
    intra_latency: float = 1e-4
    intra_bandwidth: float = 100e6
    load_factory: LoadFactory = _dedicated

    def __post_init__(self) -> None:
        if not self.speeds:
            raise ValueError(f"site {self.name!r} has no nodes")
        for s in self.speeds:
            check_positive(s, "speed")


@dataclass
class GridSpec:
    """A multi-site grid description; ``build`` turns it into a GridSystem."""

    sites: list[SiteSpec]
    inter_latency: float = 30e-3
    inter_bandwidth: float = 5e6
    seed: int = 0
    link_overrides: list[tuple[int, int, Link]] = field(default_factory=list)

    def build(self) -> GridSystem:
        """Materialise processors and topology (fresh load-model streams)."""
        if not self.sites:
            raise ValueError("grid spec has no sites")
        procs: list[Processor] = []
        pid = 0
        for site in self.sites:
            for speed in site.speeds:
                rng = derive_rng(self.seed, "load", site.name, str(pid))
                procs.append(
                    Processor(
                        pid=pid,
                        speed=speed,
                        load=site.load_factory(rng, pid),
                        site=site.name,
                    )
                )
                pid += 1
        # Use the first site's link parameters as the intra-site default; the
        # topology consults `site` equality, so differing sites only matter
        # for the inter-site link.  Per-site intra links can be expressed via
        # link_overrides when needed.
        first = self.sites[0]
        topo = Topology(
            intra_site=Link(first.intra_latency, first.intra_bandwidth, name="intra"),
            inter_site=Link(self.inter_latency, self.inter_bandwidth, name="inter"),
        )
        for a, b, link in self.link_overrides:
            topo.set_link(a, b, link)
        return GridSystem(procs, topo)


def uniform_grid(
    n: int,
    speed: float = 1.0,
    *,
    latency: float = 1e-4,
    bandwidth: float = 100e6,
    load_factory: LoadFactory = _dedicated,
    seed: int = 0,
) -> GridSystem:
    """``n`` identical nodes in a single site."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    spec = GridSpec(
        sites=[
            SiteSpec(
                name="site0",
                speeds=[speed] * n,
                intra_latency=latency,
                intra_bandwidth=bandwidth,
                load_factory=load_factory,
            )
        ],
        seed=seed,
    )
    return spec.build()


def heterogeneous_grid(
    speeds: list[float],
    *,
    latency: float = 1e-4,
    bandwidth: float = 100e6,
    load_factory: LoadFactory = _dedicated,
    seed: int = 0,
) -> GridSystem:
    """Single-site grid with explicit per-node speeds."""
    spec = GridSpec(
        sites=[
            SiteSpec(
                name="site0",
                speeds=list(speeds),
                intra_latency=latency,
                intra_bandwidth=bandwidth,
                load_factory=load_factory,
            )
        ],
        seed=seed,
    )
    return spec.build()


def two_site_grid(
    local_speeds: list[float],
    remote_speeds: list[float],
    *,
    wan_latency: float = 30e-3,
    wan_bandwidth: float = 5e6,
    seed: int = 0,
    local_load: LoadFactory = _dedicated,
    remote_load: LoadFactory = _dedicated,
) -> GridSystem:
    """A local cluster plus a remote cluster behind a WAN link."""
    spec = GridSpec(
        sites=[
            SiteSpec(name="local", speeds=list(local_speeds), load_factory=local_load),
            SiteSpec(name="remote", speeds=list(remote_speeds), load_factory=remote_load),
        ],
        inter_latency=wan_latency,
        inter_bandwidth=wan_bandwidth,
        seed=seed,
    )
    return spec.build()
