"""Links and topology: the heterogeneous grid interconnect.

The model keeps what the adaptive pipeline reacts to — per-pair latency and
bandwidth, optionally time-varying — and nothing it does not (no routing, no
packet-level detail).  Transfers between stages co-located on one processor
use a :func:`loopback_link` that is effectively free, matching the paper
line's observation that in-memory hand-off is orders of magnitude cheaper
than wide-area transfer.
"""

from __future__ import annotations

from repro.gridsim.load import ConstantLoad, LoadModel
from repro.gridsim.resources import Processor
from repro.util.validation import check_non_negative, check_positive

__all__ = ["Link", "Topology", "loopback_link", "LOOPBACK_LATENCY", "LOOPBACK_BANDWIDTH"]

LOOPBACK_LATENCY = 1e-7  # seconds
LOOPBACK_BANDWIDTH = 1e12  # bytes/second


class Link:
    """A directed network link with latency, bandwidth and optional quality.

    ``quality`` is a :class:`LoadModel` multiplying the bandwidth (1.0 =
    unloaded link); latency is treated as load-independent, which matches the
    NWS observation that wide-area latency variance is dominated by bandwidth
    contention for bulk transfers.
    """

    def __init__(
        self,
        latency: float,
        bandwidth: float,
        quality: LoadModel | None = None,
        name: str = "",
    ) -> None:
        check_non_negative(latency, "latency")
        check_positive(bandwidth, "bandwidth")
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.quality = quality if quality is not None else ConstantLoad(1.0)
        self.name = name

    def effective_bandwidth(self, t: float) -> float:
        """Bytes/second deliverable at time ``t``."""
        return self.bandwidth * self.quality.availability(t)

    def transfer_time(self, nbytes: float, t: float) -> float:
        """Seconds to move ``nbytes`` starting at time ``t``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.effective_bandwidth(t)

    def __repr__(self) -> str:
        return f"Link(latency={self.latency}, bandwidth={self.bandwidth:g})"


def loopback_link() -> Link:
    """Link used for same-processor transfers (effectively free)."""
    return Link(LOOPBACK_LATENCY, LOOPBACK_BANDWIDTH, name="loopback")


class Topology:
    """Per-pair link lookup with site-based defaults.

    Resolution order for ``link(a, b)``:

    1. same processor → loopback;
    2. an explicit override registered with :meth:`set_link`;
    3. same site → the intra-site default link;
    4. otherwise → the inter-site default link.

    Links are symmetric unless an asymmetric override is registered.
    """

    def __init__(
        self,
        intra_site: Link | None = None,
        inter_site: Link | None = None,
    ) -> None:
        # LAN-ish and WAN-ish defaults (2008-era grid numbers).
        self.intra_site = intra_site if intra_site is not None else Link(1e-4, 100e6)
        self.inter_site = inter_site if inter_site is not None else Link(30e-3, 5e6)
        self._loopback = loopback_link()
        self._overrides: dict[tuple[int, int], Link] = {}

    def set_link(self, a: int, b: int, link: Link, symmetric: bool = True) -> None:
        """Register an explicit link between processors ``a`` and ``b``."""
        self._overrides[(a, b)] = link
        if symmetric:
            self._overrides[(b, a)] = link

    def link(self, a: Processor, b: Processor) -> Link:
        """Resolve the link used to move data from ``a`` to ``b``."""
        if a.pid == b.pid:
            return self._loopback
        override = self._overrides.get((a.pid, b.pid))
        if override is not None:
            return override
        if a.site == b.site:
            return self.intra_site
        return self.inter_site
