"""A deterministic discrete-event simulation kernel with coroutine processes.

The kernel is a small, from-scratch analogue of SimPy, specialised for this
reproduction:

* **Event heap.**  Events are ``(time, seq, callback)`` triples in a binary
  heap; ``seq`` is a global monotonically increasing counter so simultaneous
  events fire in scheduling order (FIFO tie-break), making runs bit-for-bit
  reproducible.
* **Processes.**  A simulated activity is a Python generator that ``yield``\\ s
  *waitables*: :class:`Timeout`, :class:`SimEvent`, another :class:`Process`,
  channel operations (:mod:`repro.gridsim.channels`) or :class:`AnyOf` /
  :class:`AllOf` combinators.  The value of the ``yield`` expression is the
  waitable's result (e.g. the item received from a channel).
* **Interrupts.**  ``process.interrupt(cause)`` throws :class:`Interrupt`
  into the generator *if it is still waiting* when the interrupt is
  delivered; if the awaited event fired first at the same simulated time, the
  interrupt is dropped (SimPy-like semantics).  The adaptive pipeline uses
  interrupts to preempt stage actors during re-mapping.
* **Fail fast.**  An uncaught exception inside a process aborts the
  simulation by raising :class:`ProcessFailed` from :meth:`Simulator.run`,
  so bugs surface in tests instead of silently stalling the event loop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

__all__ = [
    "Simulator",
    "Process",
    "ProcessFailed",
    "Interrupt",
    "SimEvent",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Waitable",
]

# A process generator yields Waitables and receives their results.
ProcessGen = Generator["Waitable", Any, Any]
# Resume callbacks receive (value, exception); exactly one is non-None on
# failure paths, both may be None for pure timeouts.
ResumeFn = Callable[[Any, BaseException | None], None]


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ProcessFailed(RuntimeError):
    """Raised from :meth:`Simulator.run` when a process died uncaught."""

    def __init__(self, process: "Process", exc: BaseException) -> None:
        super().__init__(f"process {process.name!r} failed: {exc!r}")
        self.process = process
        self.exc = exc


class Waitable:
    """Protocol for objects a process may ``yield``."""

    def _subscribe(self, sim: "Simulator", callback: ResumeFn) -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Fires ``delay`` simulated seconds after being yielded, with ``value``."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, sim: "Simulator", callback: ResumeFn) -> None:
        sim.schedule(self.delay, callback, self.value, None)


class SimEvent(Waitable):
    """A one-shot event that processes can wait on.

    ``succeed(value)`` resumes all waiters with ``value``; ``fail(exc)``
    resumes them with the exception raised at their ``yield``.  Waiting on an
    already-completed event resumes immediately (at the current time).
    """

    __slots__ = ("_sim", "_done", "_value", "_exc", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._exc: BaseException | None = None
        self._callbacks: list[ResumeFn] = []
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        """Result value; only meaningful once :attr:`triggered`."""
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        """Complete the event successfully (idempotent calls are errors)."""
        if self._done:
            raise RuntimeError(f"event {self.name!r} already completed")
        self._done = True
        self._value = value
        for cb in self._callbacks:
            self._sim.schedule(0.0, cb, value, None)
        self._callbacks.clear()
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Complete the event by failing every waiter with ``exc``."""
        if self._done:
            raise RuntimeError(f"event {self.name!r} already completed")
        self._done = True
        self._exc = exc
        for cb in self._callbacks:
            self._sim.schedule(0.0, cb, None, exc)
        self._callbacks.clear()
        return self

    def _subscribe(self, sim: "Simulator", callback: ResumeFn) -> None:
        if self._done:
            sim.schedule(0.0, callback, self._value, self._exc)
        else:
            self._callbacks.append(callback)


class AnyOf(Waitable):
    """Resumes when the *first* of several waitables fires.

    The result is ``(index, value)`` identifying which waitable won.  Late
    completions of the losers are discarded (their callbacks are guarded).
    """

    __slots__ = ("waitables",)

    def __init__(self, waitables: Iterable[Waitable]) -> None:
        self.waitables = list(waitables)
        if not self.waitables:
            raise ValueError("AnyOf requires at least one waitable")

    def _subscribe(self, sim: "Simulator", callback: ResumeFn) -> None:
        fired = [False]

        def make_cb(i: int) -> ResumeFn:
            def cb(value: Any, exc: BaseException | None) -> None:
                if fired[0]:
                    return
                fired[0] = True
                if exc is not None:
                    callback(None, exc)
                else:
                    callback((i, value), None)

            return cb

        for i, w in enumerate(self.waitables):
            w._subscribe(sim, make_cb(i))


class AllOf(Waitable):
    """Resumes when *all* waitables have fired; result is the list of values."""

    __slots__ = ("waitables",)

    def __init__(self, waitables: Iterable[Waitable]) -> None:
        self.waitables = list(waitables)

    def _subscribe(self, sim: "Simulator", callback: ResumeFn) -> None:
        n = len(self.waitables)
        if n == 0:
            sim.schedule(0.0, callback, [], None)
            return
        results: list[Any] = [None] * n
        state = {"remaining": n, "failed": False}

        def make_cb(i: int) -> ResumeFn:
            def cb(value: Any, exc: BaseException | None) -> None:
                if state["failed"]:
                    return
                if exc is not None:
                    state["failed"] = True
                    callback(None, exc)
                    return
                results[i] = value
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    callback(results, None)

            return cb

        for i, w in enumerate(self.waitables):
            w._subscribe(sim, make_cb(i))


class Process(Waitable):
    """A running simulated activity wrapping a generator.

    Waiting on a process resumes when it terminates, yielding its return
    value.  See module docstring for interrupt semantics.
    """

    __slots__ = ("_sim", "_gen", "name", "_done", "_value", "_exc", "_token", "_completion")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "process") -> None:
        self._sim = sim
        self._gen = gen
        self.name = name
        self._done = False
        self._value: Any = None
        self._exc: BaseException | None = None
        # Token guards stale resumptions: each wait gets a fresh token and a
        # resume is honoured only if its token is still current.
        self._token = 0
        self._completion = SimEvent(sim, name=f"{name}.done")
        sim.schedule(0.0, self._resume, self._token, None, None)

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        """Return value of the generator; meaningful once :attr:`done`."""
        return self._value

    @property
    def failure(self) -> BaseException | None:
        return self._exc

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        No-op if the process already finished.  If the awaited event fires at
        the same simulated time before the interrupt is delivered, the
        interrupt is dropped.
        """
        if self._done:
            return
        self._sim.schedule(0.0, self._resume, self._token, None, Interrupt(cause))

    def _resume(self, token: int, value: Any, exc: BaseException | None) -> None:
        if self._done or token != self._token:
            return  # stale wake-up (e.g. lost race with an interrupt)
        self._token += 1
        try:
            if exc is not None:
                cmd = self._gen.throw(exc)
            else:
                cmd = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as err:  # noqa: BLE001 - report via ProcessFailed
            self._finish(None, err)
            return
        if not isinstance(cmd, Waitable):
            self._finish(
                None,
                TypeError(f"process {self.name!r} yielded non-waitable {cmd!r}"),
            )
            return
        current = self._token
        cmd._subscribe(
            self._sim,
            lambda v, e, _t=current: self._resume(_t, v, e),
        )

    def _finish(self, value: Any, exc: BaseException | None) -> None:
        self._done = True
        self._value = value
        self._exc = exc
        if exc is not None:
            self._sim._report_failure(self, exc)
            # Completion event fails so waiters see the error too.
            if not self._completion.triggered:
                self._completion.fail(exc)
        else:
            self._completion.succeed(value)

    def _subscribe(self, sim: "Simulator", callback: ResumeFn) -> None:
        self._completion._subscribe(sim, callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._done else "running"
        return f"Process({self.name!r}, {state})"


class _Handle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self._entry[3] = None


class Simulator:
    """The discrete-event loop: clock, heap, process bookkeeping."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        # heap entries: [time, seq, args, callback_or_None]
        self._heap: list[list] = []
        self._failure: ProcessFailed | None = None
        self._processes: list[Process] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> _Handle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._seq += 1
        entry = [self._now + delay, self._seq, args, callback]
        heapq.heappush(self._heap, entry)
        return _Handle(entry)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Waitable that fires after ``delay`` seconds."""
        return Timeout(delay, value)

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh one-shot event."""
        return SimEvent(self, name=name)

    def process(self, gen: ProcessGen, name: str = "process") -> Process:
        """Start a new process from a generator; begins at the current time."""
        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        return proc

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        while self._heap and self._heap[0][3] is None:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> bool:
        """Execute the next event.  Returns False if the heap is empty."""
        while self._heap:
            time, _seq, args, callback = heapq.heappop(self._heap)
            if callback is None:
                continue  # cancelled
            self._now = time
            callback(*args)
            if self._failure is not None:
                failure, self._failure = self._failure, None
                raise failure
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the final simulated time.  ``max_events`` is a runaway guard;
        exceeding it raises ``RuntimeError``.
        """
        count = 0
        while True:
            nxt = self.peek()
            if nxt == float("inf"):
                if until is not None and until > self._now:
                    self._now = until
                return self._now
            if until is not None and nxt > until:
                self._now = until
                return self._now
            if not self.step():
                return self._now
            count += 1
            if count > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events (runaway loop?)"
                )

    def _report_failure(self, process: Process, exc: BaseException) -> None:
        if isinstance(exc, Interrupt):
            # An interrupt escaping a generator means the process chose to
            # terminate on interruption; that is normal shutdown, not failure.
            return
        if self._failure is None:
            self._failure = ProcessFailed(process, exc)
