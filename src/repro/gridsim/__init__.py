"""Discrete-event simulation of a computational grid.

This subpackage is the substrate that replaces the paper's physical grid
testbed (see DESIGN.md §2).  It provides:

* :mod:`repro.gridsim.engine` — a deterministic discrete-event simulator with
  generator-coroutine processes (a minimal SimPy-like kernel built from
  scratch, as required by the reproduction protocol).
* :mod:`repro.gridsim.channels` — finite-capacity FIFO channels with blocking
  put/get (MPI-like message semantics) and counting resources.
* :mod:`repro.gridsim.resources` — processors with relative speeds and
  time-varying background load (the "non-dedicated" part of the grid).
* :mod:`repro.gridsim.load` — background-load models: constant, steps,
  random walk, Markov on/off, periodic, trace-driven, composite.
* :mod:`repro.gridsim.network` — links (latency + bandwidth) and topology.
* :mod:`repro.gridsim.grid` — the :class:`GridSystem` façade + snapshots.
* :mod:`repro.gridsim.spec` — declarative grid construction helpers.
"""

from repro.gridsim.channels import Channel, ChannelClosed, SimResource
from repro.gridsim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    ProcessFailed,
    SimEvent,
    Simulator,
    Timeout,
)
from repro.gridsim.grid import GridSnapshot, GridSystem
from repro.gridsim.load import (
    CompositeLoad,
    ConstantLoad,
    LoadModel,
    MarkovOnOffLoad,
    PeriodicLoad,
    RandomWalkLoad,
    StepLoad,
    TraceLoad,
)
from repro.gridsim.network import Link, Topology, loopback_link
from repro.gridsim.resources import Processor
from repro.gridsim.spec import (
    GridSpec,
    SiteSpec,
    heterogeneous_grid,
    two_site_grid,
    uniform_grid,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "ChannelClosed",
    "CompositeLoad",
    "ConstantLoad",
    "GridSnapshot",
    "GridSpec",
    "GridSystem",
    "Interrupt",
    "Link",
    "LoadModel",
    "MarkovOnOffLoad",
    "PeriodicLoad",
    "Process",
    "ProcessFailed",
    "Processor",
    "RandomWalkLoad",
    "SimEvent",
    "SimResource",
    "Simulator",
    "SiteSpec",
    "StepLoad",
    "Timeout",
    "Topology",
    "TraceLoad",
    "heterogeneous_grid",
    "loopback_link",
    "two_site_grid",
    "uniform_grid",
]
