"""repro — An Adaptive Parallel Pipeline Pattern for Grids (IPDPS 2008).

A from-scratch reproduction of the adaptive pipeline skeleton of
Gonzalez-Velez & Cole, including every substrate it needs: a discrete-event
grid simulator, an NWS-style monitoring/forecasting layer, an analytic
mapping model with optimisers, and the observe-decide-act adaptation engine.
See README.md for a tour and DESIGN.md for the full inventory (and the
paper-text mismatch notice).

Quickstart::

    from repro import (AdaptationConfig, AdaptivePipeline, Mapping,
                       balanced_pipeline, uniform_grid)

    grid = uniform_grid(4)
    grid.perturb(1, [(20.0, 0.1)])          # node 1 degrades at t=20 s
    pipe = balanced_pipeline(3, work=0.1)
    runner = AdaptivePipeline(pipe, grid, config=AdaptationConfig(),
                              initial_mapping=Mapping.single([0, 1, 2]))
    result = runner.run(1000)
    print(result.throughput(), result.adaptation_events)
"""

from repro.backend import (
    Backend,
    BackendResult,
    ProcessPoolBackend,
    RuntimeAdaptiveRunner,
    RuntimeRunResult,
    SimBackend,
    ThreadBackend,
    available_backends,
    local_config,
    make_backend,
    register_backend,
)
from repro.core import (
    AdaptationConfig,
    AdaptationEvent,
    AdaptationPolicy,
    AdaptivePipeline,
    FixedWork,
    PipelineSpec,
    RunResult,
    StageSpec,
    run_static,
)
from repro.gridsim import (
    GridSpec,
    GridSystem,
    SiteSpec,
    heterogeneous_grid,
    two_site_grid,
    uniform_grid,
)
from repro.model import Mapping, ModelContext, StageCost, predict
from repro.runtime import AdaptiveThreadPipeline, ThreadPipeline
from repro.skel import (
    farm,
    open_pipeline,
    pipeline_1for1,
    simulate_farm,
    simulate_pipeline,
)
from repro.workloads import (
    balanced_pipeline,
    heterogeneity_ladder,
    imbalanced_pipeline,
    load_step,
    stochastic_pipeline,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptationConfig",
    "AdaptationEvent",
    "AdaptationPolicy",
    "AdaptivePipeline",
    "AdaptiveThreadPipeline",
    "Backend",
    "BackendResult",
    "FixedWork",
    "GridSpec",
    "GridSystem",
    "Mapping",
    "ModelContext",
    "PipelineSpec",
    "ProcessPoolBackend",
    "RunResult",
    "RuntimeAdaptiveRunner",
    "RuntimeRunResult",
    "SimBackend",
    "SiteSpec",
    "StageCost",
    "StageSpec",
    "ThreadBackend",
    "ThreadPipeline",
    "__version__",
    "available_backends",
    "balanced_pipeline",
    "farm",
    "heterogeneity_ladder",
    "heterogeneous_grid",
    "imbalanced_pipeline",
    "load_step",
    "local_config",
    "make_backend",
    "open_pipeline",
    "pipeline_1for1",
    "predict",
    "register_backend",
    "run_static",
    "simulate_farm",
    "simulate_pipeline",
    "stochastic_pipeline",
    "two_site_grid",
    "uniform_grid",
]
