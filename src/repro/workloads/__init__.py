"""Workload generators: stage-cost distributions, scenarios, applications.

* :mod:`repro.workloads.cost_models` — stochastic :class:`~repro.core.stage.
  WorkModel` implementations (exponential, log-normal, Pareto, bimodal, ...);
* :mod:`repro.workloads.synthetic` — pipeline builders (balanced, imbalanced
  profiles) used across tests and benchmarks;
* :mod:`repro.workloads.scenarios` — named grid scenarios: perturbation
  scripts, heterogeneity ladders, non-dedicated load mixes;
* :mod:`repro.workloads.apps` — realistic application pipelines (numpy image
  processing, text analytics, k-mer counting) runnable on the thread runtime
  and mirrored as simulated cost models;
* :mod:`repro.workloads.payloads` — large-payload (megabytes/item) array
  pipelines where transport cost dominates, for the transport/zero-copy
  experiments (E17).
"""

from repro.workloads.cost_models import (
    BimodalWork,
    EmpiricalWork,
    ExponentialWork,
    LogNormalWork,
    ParetoWork,
    UniformWork,
)
from repro.workloads.scenarios import (
    PerturbationScenario,
    diurnal_load_factory,
    flash_crowd,
    heterogeneity_ladder,
    load_step,
    markov_load_factory,
    node_churn,
    random_walk_load_factory,
)
from repro.workloads.payloads import array_pipeline, make_arrays
from repro.workloads.synthetic import (
    balanced_pipeline,
    imbalanced_pipeline,
    stochastic_pipeline,
)

__all__ = [
    "BimodalWork",
    "EmpiricalWork",
    "ExponentialWork",
    "LogNormalWork",
    "ParetoWork",
    "PerturbationScenario",
    "UniformWork",
    "array_pipeline",
    "balanced_pipeline",
    "diurnal_load_factory",
    "flash_crowd",
    "heterogeneity_ladder",
    "imbalanced_pipeline",
    "load_step",
    "make_arrays",
    "markov_load_factory",
    "node_churn",
    "random_walk_load_factory",
    "stochastic_pipeline",
]
