"""Realistic application pipelines.

Each application exists in two forms sharing one :class:`PipelineSpec`:

* ``fn`` callables for the **thread runtime** (real numpy computation —
  numpy releases the GIL, so these genuinely pipeline on a multicore host);
* :class:`WorkModel` costs for the **simulator**, calibrated to the relative
  weight of each stage so simulated mappings are meaningful.

The three apps cover the motivating workload families of grid-era pipeline
papers: image processing (filter chains), text analytics (document
processing) and bioinformatics (sequence scanning).
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter

import numpy as np

from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.util.validation import check_positive
from repro.workloads.cost_models import LogNormalWork

__all__ = [
    "image_pipeline",
    "make_images",
    "text_pipeline",
    "make_documents",
    "kmer_pipeline",
    "make_sequences",
    "fetch_pipeline",
    "make_requests",
]


# --------------------------------------------------------------------- image
def make_images(n: int, size: int = 96, seed: int = 0) -> list[np.ndarray]:
    """Synthesize ``n`` grayscale test images (size x size, float64)."""
    check_positive(n, "n")
    rng = np.random.default_rng(seed)
    images = []
    for _ in range(n):
        img = rng.random((size, size))
        # Add structure so edge detection has something to find.
        x = np.linspace(0, 4 * np.pi, size)
        img += np.sin(x)[None, :] + np.cos(x)[:, None]
        images.append(img)
    return images


def _denoise(img: np.ndarray) -> np.ndarray:
    """3x3 box blur via shifted sums (stays in numpy, releases the GIL)."""
    out = img.copy()
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx or dy:
                out += np.roll(np.roll(img, dx, axis=0), dy, axis=1)
    return out / 9.0


def _edges(img: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude."""
    gx = np.zeros_like(img)
    gy = np.zeros_like(img)
    gx[1:-1, 1:-1] = (
        img[:-2, 2:] + 2 * img[1:-1, 2:] + img[2:, 2:]
        - img[:-2, :-2] - 2 * img[1:-1, :-2] - img[2:, :-2]
    )
    gy[1:-1, 1:-1] = (
        img[2:, :-2] + 2 * img[2:, 1:-1] + img[2:, 2:]
        - img[:-2, :-2] - 2 * img[:-2, 1:-1] - img[:-2, 2:]
    )
    return np.hypot(gx, gy)


def _threshold(img: np.ndarray) -> np.ndarray:
    return (img > np.percentile(img, 90)).astype(np.float64)


def _summarise(img: np.ndarray) -> dict:
    return {
        "edge_pixels": int(img.sum()),
        "fraction": float(img.mean()),
    }


def image_pipeline(*, sim_scale: float = 1.0) -> PipelineSpec:
    """Denoise → edge-detect → threshold → summarise.

    ``sim_scale`` scales the simulated work units (1.0 ≈ tens of
    milliseconds per stage on the reference processor, matching the relative
    stage weights measured locally: edges ≈ 2x denoise, threshold ≈ 0.5x,
    summarise ≈ 0.1x).
    """
    check_positive(sim_scale, "sim_scale")
    s = sim_scale
    return PipelineSpec(
        (
            StageSpec(
                name="denoise", work=LogNormalWork(0.04 * s, 0.2), out_bytes=73_728,
                fn=_denoise,
            ),
            StageSpec(
                name="edges", work=LogNormalWork(0.08 * s, 0.2), out_bytes=73_728,
                fn=_edges,
            ),
            StageSpec(
                name="threshold", work=LogNormalWork(0.02 * s, 0.2), out_bytes=73_728,
                fn=_threshold,
            ),
            StageSpec(
                name="summarise", work=LogNormalWork(0.004 * s, 0.2), out_bytes=64,
                fn=_summarise,
            ),
        ),
        input_bytes=73_728,
        name="image",
    )


# --------------------------------------------------------------------- text
_WORDS = (
    "grid pipeline skeleton stage adaptive mapping processor latency "
    "bandwidth throughput monitor forecast migrate replicate schedule"
).split()


def make_documents(n: int, words: int = 400, seed: int = 0) -> list[str]:
    """Synthesize ``n`` documents of ``words`` words each."""
    check_positive(n, "n")
    rng = np.random.default_rng(seed)
    docs = []
    for _ in range(n):
        idx = rng.integers(0, len(_WORDS), size=words)
        docs.append(" ".join(_WORDS[i] for i in idx))
    return docs


def _tokenise(doc: str) -> list[str]:
    return doc.lower().split()


def _filter_stopwords(tokens: list[str]) -> list[str]:
    stop = {"grid", "stage"}
    return [t for t in tokens if t not in stop]


def _count(tokens: list[str]) -> dict[str, int]:
    return dict(Counter(tokens))


def text_pipeline(*, sim_scale: float = 1.0) -> PipelineSpec:
    """Tokenise → stop-word filter → term count."""
    check_positive(sim_scale, "sim_scale")
    s = sim_scale
    return PipelineSpec(
        (
            StageSpec(name="tokenise", work=LogNormalWork(0.02 * s, 0.3),
                      out_bytes=4_000, fn=_tokenise),
            StageSpec(name="filter", work=LogNormalWork(0.01 * s, 0.3),
                      out_bytes=3_500, fn=_filter_stopwords),
            StageSpec(name="count", work=LogNormalWork(0.03 * s, 0.3),
                      out_bytes=800, fn=_count),
        ),
        input_bytes=4_500,
        name="text",
    )


# --------------------------------------------------------------------- kmer
def make_sequences(n: int, length: int = 20_000, seed: int = 0) -> list[str]:
    """Synthesize ``n`` random DNA sequences."""
    check_positive(n, "n")
    rng = np.random.default_rng(seed)
    alphabet = np.array(list("ACGT"))
    return ["".join(alphabet[rng.integers(0, 4, size=length)]) for _ in range(n)]


def _gc_content(seq: str) -> tuple[str, float]:
    gc = (seq.count("G") + seq.count("C")) / len(seq)
    return seq, gc


def _kmer_count(args: tuple[str, float], k: int = 6) -> tuple[float, dict[str, int]]:
    seq, gc = args
    counts: Counter = Counter(seq[i : i + k] for i in range(len(seq) - k + 1))
    return gc, dict(counts.most_common(10))


def _report(args: tuple[float, dict[str, int]]) -> dict:
    gc, top = args
    return {"gc": gc, "top_kmer": next(iter(top), None), "distinct_top": len(top)}


# ----------------------------------------------------------------------- io
def make_requests(n: int) -> list[int]:
    """Request ids for the simulated-latency service pipeline."""
    check_positive(n, "n")
    return list(range(n))


def _simulated_latency(rid: int, base: float, jitter: float) -> float:
    """Deterministic per-request latency, identical for sync/async variants."""
    frac = ((rid * 2654435761) % 1000) / 1000.0
    return base * (1.0 - jitter + 2.0 * jitter * frac)


def fetch_pipeline(
    *,
    latency: float = 0.02,
    jitter: float = 0.25,
    asynchronous: bool = False,
    sim_scale: float = 1.0,
) -> PipelineSpec:
    """Fetch → parse → store: a simulated-latency I/O service pipeline.

    The dominant costs are *waits* (a network fetch, a storage write), not
    computation — the workload family production services are made of.  Each
    request's latency is a deterministic function of its id, so the
    blocking variant (``time.sleep``, for the thread backend) and the
    ``asynchronous=True`` variant (``await asyncio.sleep``, for the asyncio
    backend) wait identical durations and produce identical outputs; only
    the middle ``parse`` stage is real (and cheap) CPU work, and it stays a
    plain callable in both variants.
    """
    check_positive(latency, "latency")
    check_positive(sim_scale, "sim_scale")
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")

    def fetch_sync(rid: int) -> tuple[int, str]:
        time.sleep(_simulated_latency(rid, latency, jitter))
        return rid, f"payload-{rid:06d}" * 8

    async def fetch_async(rid: int) -> tuple[int, str]:
        await asyncio.sleep(_simulated_latency(rid, latency, jitter))
        return rid, f"payload-{rid:06d}" * 8

    def parse(args: tuple[int, str]) -> tuple[int, int]:
        rid, payload = args
        return rid, sum(1 for c in payload if c.isdigit())

    def store_sync(args: tuple[int, int]) -> dict:
        rid, digits = args
        time.sleep(_simulated_latency(rid + 1_000_003, 0.5 * latency, jitter))
        return {"id": rid, "digits": digits, "stored": True}

    async def store_async(args: tuple[int, int]) -> dict:
        rid, digits = args
        await asyncio.sleep(_simulated_latency(rid + 1_000_003, 0.5 * latency, jitter))
        return {"id": rid, "digits": digits, "stored": True}

    s = sim_scale
    return PipelineSpec(
        (
            StageSpec(
                name="fetch", work=latency * s, out_bytes=16_384,
                fn=fetch_async if asynchronous else fetch_sync,
            ),
            StageSpec(
                name="parse", work=0.02 * latency * s, out_bytes=64,
                fn=parse,
            ),
            StageSpec(
                name="store", work=0.5 * latency * s, out_bytes=64,
                fn=store_async if asynchronous else store_sync,
            ),
        ),
        input_bytes=64,
        name="fetch",
    )


def kmer_pipeline(*, sim_scale: float = 1.0) -> PipelineSpec:
    """GC-content → k-mer counting → report (k-mer stage dominates)."""
    check_positive(sim_scale, "sim_scale")
    s = sim_scale
    return PipelineSpec(
        (
            StageSpec(name="gc", work=LogNormalWork(0.01 * s, 0.2),
                      out_bytes=20_000, fn=_gc_content),
            StageSpec(name="kmers", work=LogNormalWork(0.12 * s, 0.3),
                      out_bytes=600, fn=_kmer_count),
            StageSpec(name="report", work=LogNormalWork(0.002 * s, 0.2),
                      out_bytes=120, fn=_report),
        ),
        input_bytes=20_000,
        name="kmer",
    )
