"""Realistic application pipelines.

Each application exists in two forms sharing one :class:`PipelineSpec`:

* ``fn`` callables for the **thread runtime** (real numpy computation —
  numpy releases the GIL, so these genuinely pipeline on a multicore host);
* :class:`WorkModel` costs for the **simulator**, calibrated to the relative
  weight of each stage so simulated mappings are meaningful.

The three apps cover the motivating workload families of grid-era pipeline
papers: image processing (filter chains), text analytics (document
processing) and bioinformatics (sequence scanning).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.util.validation import check_positive
from repro.workloads.cost_models import LogNormalWork

__all__ = [
    "image_pipeline",
    "make_images",
    "text_pipeline",
    "make_documents",
    "kmer_pipeline",
    "make_sequences",
]


# --------------------------------------------------------------------- image
def make_images(n: int, size: int = 96, seed: int = 0) -> list[np.ndarray]:
    """Synthesize ``n`` grayscale test images (size x size, float64)."""
    check_positive(n, "n")
    rng = np.random.default_rng(seed)
    images = []
    for _ in range(n):
        img = rng.random((size, size))
        # Add structure so edge detection has something to find.
        x = np.linspace(0, 4 * np.pi, size)
        img += np.sin(x)[None, :] + np.cos(x)[:, None]
        images.append(img)
    return images


def _denoise(img: np.ndarray) -> np.ndarray:
    """3x3 box blur via shifted sums (stays in numpy, releases the GIL)."""
    out = img.copy()
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx or dy:
                out += np.roll(np.roll(img, dx, axis=0), dy, axis=1)
    return out / 9.0


def _edges(img: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude."""
    gx = np.zeros_like(img)
    gy = np.zeros_like(img)
    gx[1:-1, 1:-1] = (
        img[:-2, 2:] + 2 * img[1:-1, 2:] + img[2:, 2:]
        - img[:-2, :-2] - 2 * img[1:-1, :-2] - img[2:, :-2]
    )
    gy[1:-1, 1:-1] = (
        img[2:, :-2] + 2 * img[2:, 1:-1] + img[2:, 2:]
        - img[:-2, :-2] - 2 * img[:-2, 1:-1] - img[:-2, 2:]
    )
    return np.hypot(gx, gy)


def _threshold(img: np.ndarray) -> np.ndarray:
    return (img > np.percentile(img, 90)).astype(np.float64)


def _summarise(img: np.ndarray) -> dict:
    return {
        "edge_pixels": int(img.sum()),
        "fraction": float(img.mean()),
    }


def image_pipeline(*, sim_scale: float = 1.0) -> PipelineSpec:
    """Denoise → edge-detect → threshold → summarise.

    ``sim_scale`` scales the simulated work units (1.0 ≈ tens of
    milliseconds per stage on the reference processor, matching the relative
    stage weights measured locally: edges ≈ 2x denoise, threshold ≈ 0.5x,
    summarise ≈ 0.1x).
    """
    check_positive(sim_scale, "sim_scale")
    s = sim_scale
    return PipelineSpec(
        (
            StageSpec(
                name="denoise", work=LogNormalWork(0.04 * s, 0.2), out_bytes=73_728,
                fn=_denoise,
            ),
            StageSpec(
                name="edges", work=LogNormalWork(0.08 * s, 0.2), out_bytes=73_728,
                fn=_edges,
            ),
            StageSpec(
                name="threshold", work=LogNormalWork(0.02 * s, 0.2), out_bytes=73_728,
                fn=_threshold,
            ),
            StageSpec(
                name="summarise", work=LogNormalWork(0.004 * s, 0.2), out_bytes=64,
                fn=_summarise,
            ),
        ),
        input_bytes=73_728,
        name="image",
    )


# --------------------------------------------------------------------- text
_WORDS = (
    "grid pipeline skeleton stage adaptive mapping processor latency "
    "bandwidth throughput monitor forecast migrate replicate schedule"
).split()


def make_documents(n: int, words: int = 400, seed: int = 0) -> list[str]:
    """Synthesize ``n`` documents of ``words`` words each."""
    check_positive(n, "n")
    rng = np.random.default_rng(seed)
    docs = []
    for _ in range(n):
        idx = rng.integers(0, len(_WORDS), size=words)
        docs.append(" ".join(_WORDS[i] for i in idx))
    return docs


def _tokenise(doc: str) -> list[str]:
    return doc.lower().split()


def _filter_stopwords(tokens: list[str]) -> list[str]:
    stop = {"grid", "stage"}
    return [t for t in tokens if t not in stop]


def _count(tokens: list[str]) -> dict[str, int]:
    return dict(Counter(tokens))


def text_pipeline(*, sim_scale: float = 1.0) -> PipelineSpec:
    """Tokenise → stop-word filter → term count."""
    check_positive(sim_scale, "sim_scale")
    s = sim_scale
    return PipelineSpec(
        (
            StageSpec(name="tokenise", work=LogNormalWork(0.02 * s, 0.3),
                      out_bytes=4_000, fn=_tokenise),
            StageSpec(name="filter", work=LogNormalWork(0.01 * s, 0.3),
                      out_bytes=3_500, fn=_filter_stopwords),
            StageSpec(name="count", work=LogNormalWork(0.03 * s, 0.3),
                      out_bytes=800, fn=_count),
        ),
        input_bytes=4_500,
        name="text",
    )


# --------------------------------------------------------------------- kmer
def make_sequences(n: int, length: int = 20_000, seed: int = 0) -> list[str]:
    """Synthesize ``n`` random DNA sequences."""
    check_positive(n, "n")
    rng = np.random.default_rng(seed)
    alphabet = np.array(list("ACGT"))
    return ["".join(alphabet[rng.integers(0, 4, size=length)]) for _ in range(n)]


def _gc_content(seq: str) -> tuple[str, float]:
    gc = (seq.count("G") + seq.count("C")) / len(seq)
    return seq, gc


def _kmer_count(args: tuple[str, float], k: int = 6) -> tuple[float, dict[str, int]]:
    seq, gc = args
    counts: Counter = Counter(seq[i : i + k] for i in range(len(seq) - k + 1))
    return gc, dict(counts.most_common(10))


def _report(args: tuple[float, dict[str, int]]) -> dict:
    gc, top = args
    return {"gc": gc, "top_kmer": next(iter(top), None), "distinct_top": len(top)}


def kmer_pipeline(*, sim_scale: float = 1.0) -> PipelineSpec:
    """GC-content → k-mer counting → report (k-mer stage dominates)."""
    check_positive(sim_scale, "sim_scale")
    s = sim_scale
    return PipelineSpec(
        (
            StageSpec(name="gc", work=LogNormalWork(0.01 * s, 0.2),
                      out_bytes=20_000, fn=_gc_content),
            StageSpec(name="kmers", work=LogNormalWork(0.12 * s, 0.3),
                      out_bytes=600, fn=_kmer_count),
            StageSpec(name="report", work=LogNormalWork(0.002 * s, 0.2),
                      out_bytes=120, fn=_report),
        ),
        input_bytes=20_000,
        name="kmer",
    )
