"""Large-payload pipelines: the transport subsystem's workload family.

The app pipelines in :mod:`repro.workloads.apps` move kilobytes per item;
serialization is noise there.  This module moves **megabytes** per item —
the regime where per-item cost is dominated by how bytes cross execution
boundaries, which is exactly what E17 measures (pickle vs shared-memory
descriptors) and what the distributed link-bandwidth fit needs to observe.

All stage callables are module-level functions, so the pipeline runs
unchanged on every backend including ``spawn``-method process pools and
distributed workers.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.util.validation import check_positive
from repro.workloads.cost_models import LogNormalWork

__all__ = ["array_pipeline", "make_arrays"]


def make_arrays(
    n: int, *, mbytes: float = 1.0, mix: list[float] | None = None, seed: int = 0
) -> list[np.ndarray]:
    """``n`` float64 arrays of ~``mbytes`` MB each (deterministic content).

    ``mix`` overrides ``mbytes`` with a set of sizes dealt evenly but in
    shuffled order — a mixed-size stream gives the size-stratified link
    estimator the spread it needs to fit bandwidth, and exercises the
    ``auto`` codec's per-item decision.  (Shuffled, not alternating: on a
    saturated link every item queues behind its predecessor's transfer, so
    a strict alternation would anti-correlate observed overhead with the
    item's own size and hide the bandwidth term from the fit.)
    """
    check_positive(n, "n")
    rng = np.random.default_rng(seed)
    if mix:
        sizes = [mix[k % len(mix)] for k in range(n)]
        rng.shuffle(sizes)
    else:
        sizes = [mbytes] * n
    arrays = []
    for mb in sizes:
        check_positive(mb, "payload size (MB)")
        cells = max(1, int(mb * 1e6 / 8))
        arrays.append(rng.random(cells))
    return arrays


def scale_array(a: np.ndarray) -> np.ndarray:
    """Normalise to zero mean, unit scale (bulk in, bulk out)."""
    return (a - a.mean()) / (a.std() + 1e-12)


def smooth_array(a: np.ndarray) -> np.ndarray:
    """Three-point moving average via shifted sums (bulk in, bulk out)."""
    out = a.copy()
    out[1:] += a[:-1]
    out[:-1] += a[1:]
    return out / 3.0


def checksum_array(a: np.ndarray) -> dict:
    """Reduce to a small summary (bulk in, ~100 B out: the sink stage)."""
    return {
        "n": int(a.size),
        "mean": float(a.mean()),
        "l2": float(np.sqrt(np.dot(a, a))),
    }


def array_pipeline(*, mbytes: float = 1.0, sim_scale: float = 1.0) -> PipelineSpec:
    """Scale → smooth → checksum over ~``mbytes``-MB float64 arrays.

    The first two stages forward the full array downstream, so every hop
    pays the transport cost; the numpy kernels themselves are cheap and
    release the GIL — per-item time is transport-bound by design.
    ``mbytes`` sizes the declared byte costs for the simulator/model;
    real runs measure actual payload sizes through the monitor.
    """
    check_positive(mbytes, "mbytes")
    check_positive(sim_scale, "sim_scale")
    nbytes = float(mbytes) * 1e6
    s = sim_scale
    return PipelineSpec(
        (
            StageSpec(
                name="scale", work=LogNormalWork(0.004 * mbytes * s, 0.2),
                out_bytes=nbytes, fn=scale_array,
            ),
            StageSpec(
                name="smooth", work=LogNormalWork(0.006 * mbytes * s, 0.2),
                out_bytes=nbytes, fn=smooth_array,
            ),
            StageSpec(
                name="checksum", work=LogNormalWork(0.003 * mbytes * s, 0.2),
                out_bytes=128, fn=checksum_array,
            ),
        ),
        input_bytes=nbytes,
        name="array",
    )
