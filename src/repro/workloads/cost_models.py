"""Stochastic per-item work distributions.

All models implement :class:`~repro.core.stage.WorkModel` and are
parameterised by their **mean** so experiments can sweep variability (CV)
while holding expected load constant — the knob experiment E8 turns.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.stage import WorkModel
from repro.util.validation import check_positive

__all__ = [
    "ExponentialWork",
    "LogNormalWork",
    "UniformWork",
    "ParetoWork",
    "BimodalWork",
    "EmpiricalWork",
]


class ExponentialWork(WorkModel):
    """Exponential work (CV = 1), the classic M/M-style service model."""

    def __init__(self, mean: float) -> None:
        check_positive(mean, "mean")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def __repr__(self) -> str:
        return f"ExponentialWork(mean={self._mean})"


class LogNormalWork(WorkModel):
    """Log-normal work with chosen mean and coefficient of variation.

    ``cv`` sweeps burstiness smoothly: 0.1 is near-deterministic, 2.0 is
    heavily skewed.
    """

    def __init__(self, mean: float, cv: float = 0.5) -> None:
        check_positive(mean, "mean")
        check_positive(cv, "cv")
        self._mean = float(mean)
        self.cv = float(cv)
        sigma2 = math.log(1.0 + cv * cv)
        self._sigma = math.sqrt(sigma2)
        self._mu = math.log(mean) - sigma2 / 2.0

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self._sigma))

    def __repr__(self) -> str:
        return f"LogNormalWork(mean={self._mean}, cv={self.cv})"


class UniformWork(WorkModel):
    """Uniform work on ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float) -> None:
        check_positive(lo, "lo")
        if hi < lo:
            raise ValueError(f"hi must be >= lo, got [{lo}, {hi}]")
        self._lo = float(lo)
        self._hi = float(hi)

    @property
    def mean(self) -> float:
        return (self._lo + self._hi) / 2.0

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self._lo, self._hi))


class ParetoWork(WorkModel):
    """Bounded Pareto work: heavy-tailed with an explicit cap.

    ``alpha`` controls the tail (smaller = heavier); samples exceeding
    ``cap × mean`` are clamped so a single item cannot stall the pipeline
    beyond the experiment horizon.
    """

    def __init__(self, mean: float, alpha: float = 1.8, cap: float = 50.0) -> None:
        check_positive(mean, "mean")
        if alpha <= 1.0:
            raise ValueError(f"alpha must be > 1 for a finite mean, got {alpha}")
        check_positive(cap, "cap")
        self._mean = float(mean)
        self._alpha = float(alpha)
        self._cap = float(cap)
        # Uncapped Pareto with scale x_m has mean alpha*x_m/(alpha-1).
        self._xm = mean * (alpha - 1.0) / alpha

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        x = self._xm * (1.0 + rng.pareto(self._alpha))
        return float(min(x, self._cap * self._mean))


class BimodalWork(WorkModel):
    """Mixture of a light and a heavy mode (e.g. cache hit vs miss).

    With probability ``p_heavy`` an item costs ``heavy``, otherwise
    ``light``.
    """

    def __init__(self, light: float, heavy: float, p_heavy: float = 0.1) -> None:
        check_positive(light, "light")
        check_positive(heavy, "heavy")
        if not 0.0 <= p_heavy <= 1.0:
            raise ValueError(f"p_heavy must be in [0, 1], got {p_heavy}")
        self._light = float(light)
        self._heavy = float(heavy)
        self._p = float(p_heavy)

    @property
    def mean(self) -> float:
        return (1.0 - self._p) * self._light + self._p * self._heavy

    def sample(self, rng: np.random.Generator) -> float:
        return self._heavy if rng.random() < self._p else self._light


class EmpiricalWork(WorkModel):
    """Resamples observed work values (trace-driven service times)."""

    def __init__(self, samples: Sequence[float]) -> None:
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("EmpiricalWork needs at least one sample")
        if (arr <= 0).any():
            raise ValueError("work samples must be positive")
        self._samples = arr

    @property
    def mean(self) -> float:
        return float(self._samples.mean())

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self._samples))
