"""Named grid scenarios: the "non-dedicated grid" conditions of the paper.

A :class:`PerturbationScenario` is a reproducible script of availability
changes applied to a grid.  Benchmarks build a fresh grid per run and apply
the scenario, so baselines and adaptive runs face *identical* conditions.

Load factories (for :class:`~repro.gridsim.spec.SiteSpec.load_factory`)
describe statistically non-dedicated nodes: Markov on/off interference,
random-walk availability, diurnal cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gridsim.grid import GridSystem
from repro.gridsim.load import (
    LoadModel,
    MarkovOnOffLoad,
    PeriodicLoad,
    RandomWalkLoad,
)
from repro.util.validation import check_positive

__all__ = [
    "PerturbationScenario",
    "load_step",
    "flash_crowd",
    "node_churn",
    "heterogeneity_ladder",
    "markov_load_factory",
    "random_walk_load_factory",
    "diurnal_load_factory",
]


@dataclass(frozen=True)
class PerturbationScenario:
    """A named, reproducible availability script.

    ``steps`` maps pid → list of (time, availability) breakpoints, applied
    multiplicatively on top of whatever load the grid already has.
    """

    name: str
    steps: dict[int, list[tuple[float, float]]] = field(default_factory=dict)

    def apply(self, grid: GridSystem) -> GridSystem:
        """Apply the script to ``grid`` (mutates and returns it)."""
        for pid, schedule in self.steps.items():
            grid.perturb(pid, schedule)
        return grid


def load_step(
    pid: int, at: float, availability: float, *, recover_at: float | None = None
) -> PerturbationScenario:
    """One node drops to ``availability`` at ``at`` (optionally recovers).

    The canonical E1 condition: an external job lands on one grid node.
    """
    schedule = [(at, availability)]
    if recover_at is not None:
        if recover_at <= at:
            raise ValueError(f"recover_at must follow at: {recover_at} <= {at}")
        schedule.append((recover_at, 1.0))
    return PerturbationScenario(name=f"load-step(p{pid}@{at})", steps={pid: schedule})


def flash_crowd(
    pids: list[int], at: float, availability: float = 0.25, stagger: float = 2.0
) -> PerturbationScenario:
    """Several nodes degrade in quick succession (site-wide interference)."""
    if not pids:
        raise ValueError("flash_crowd needs at least one pid")
    steps = {
        pid: [(at + i * stagger, availability)] for i, pid in enumerate(pids)
    }
    return PerturbationScenario(name=f"flash-crowd({len(pids)}@{at})", steps=steps)


def node_churn(
    pid: int, period: float, duty: float = 0.5, availability: float = 0.01, until: float = 1e4
) -> PerturbationScenario:
    """A node that repeatedly (almost) disappears and returns.

    ``duty`` is the fraction of each period the node is *up*; "down" means
    ``availability`` (near zero — grid nodes rarely vanish cleanly, they
    just stop making progress).
    """
    check_positive(period, "period")
    if not 0.0 < duty < 1.0:
        raise ValueError(f"duty must be in (0, 1), got {duty}")
    schedule: list[tuple[float, float]] = []
    t = period * duty
    while t < until:
        schedule.append((t, availability))
        schedule.append((t + period * (1.0 - duty), 1.0))
        t += period
    return PerturbationScenario(name=f"churn(p{pid})", steps={pid: schedule})


def heterogeneity_ladder(n: int, factor: float) -> list[float]:
    """Speeds for an ``n``-node grid with max/min speed ratio ``factor``.

    Speeds are geometrically spaced between 1.0 and ``factor`` — the E3
    x-axis.  ``factor=1`` is a homogeneous cluster.
    """
    check_positive(n, "n")
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1.0, got {factor}")
    if n == 1:
        return [1.0]
    return [float(factor ** (i / (n - 1))) for i in range(n)]


def markov_load_factory(
    mean_idle: float = 40.0, mean_busy: float = 15.0, busy_availability: float = 0.3
):
    """Nodes suffering Markov on/off external jobs (non-dedicated cluster)."""

    def factory(rng: np.random.Generator, pid: int) -> LoadModel:
        return MarkovOnOffLoad(
            rng,
            mean_idle=mean_idle,
            mean_busy=mean_busy,
            busy_availability=busy_availability,
        )

    return factory


def random_walk_load_factory(sigma: float = 0.03, lo: float = 0.3, hi: float = 1.0):
    """Nodes with slowly wandering availability (shared interactive hosts)."""

    def factory(rng: np.random.Generator, pid: int) -> LoadModel:
        return RandomWalkLoad(rng, dt=1.0, sigma=sigma, lo=lo, hi=hi)

    return factory


def diurnal_load_factory(period: float = 600.0, base: float = 0.7, amplitude: float = 0.25):
    """Nodes with a day/night availability cycle, phase-shifted per node."""

    def factory(rng: np.random.Generator, pid: int) -> LoadModel:
        phase = float(rng.uniform(0.0, period))
        return PeriodicLoad(base=base, amplitude=amplitude, period=period, phase=phase)

    return factory
