"""Synthetic pipeline builders used across tests, examples and benchmarks."""

from __future__ import annotations

from typing import Sequence

from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.util.validation import check_positive
from repro.workloads.cost_models import LogNormalWork

__all__ = ["balanced_pipeline", "imbalanced_pipeline", "stochastic_pipeline"]


def balanced_pipeline(
    n_stages: int,
    work: float = 0.1,
    *,
    out_bytes: float = 0.0,
    input_bytes: float = 0.0,
    state_bytes: float = 0.0,
) -> PipelineSpec:
    """``n_stages`` identical deterministic stages."""
    check_positive(n_stages, "n_stages")
    return PipelineSpec(
        tuple(
            StageSpec(
                name=f"s{i}",
                work=work,
                out_bytes=out_bytes,
                state_bytes=state_bytes,
            )
            for i in range(n_stages)
        ),
        input_bytes=input_bytes,
        name=f"balanced{n_stages}",
    )


def imbalanced_pipeline(
    works: Sequence[float],
    *,
    out_bytes: float = 0.0,
    input_bytes: float = 0.0,
    bottleneck_replicable: bool = True,
) -> PipelineSpec:
    """Deterministic stages with explicit per-stage works.

    ``bottleneck_replicable=False`` marks the heaviest stage stateful, which
    forbids farm conversion — the ablation in E6.
    """
    if not works:
        raise ValueError("works must be non-empty")
    heaviest = max(range(len(works)), key=lambda i: works[i])
    stages = []
    for i, w in enumerate(works):
        stages.append(
            StageSpec(
                name=f"s{i}",
                work=w,
                out_bytes=out_bytes,
                replicable=bottleneck_replicable or i != heaviest,
            )
        )
    return PipelineSpec(tuple(stages), input_bytes=input_bytes, name="imbalanced")


def stochastic_pipeline(
    means: Sequence[float],
    cv: float,
    *,
    out_bytes: float = 0.0,
) -> PipelineSpec:
    """Log-normal stages with a shared coefficient of variation (E8)."""
    if not means:
        raise ValueError("means must be non-empty")
    return PipelineSpec(
        tuple(
            StageSpec(name=f"s{i}", work=LogNormalWork(m, cv), out_bytes=out_bytes)
            for i, m in enumerate(means)
        ),
        name=f"stochastic(cv={cv})",
    )
