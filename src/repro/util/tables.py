"""Plain-text rendering of tables, series and line plots.

The benchmark harness reports every reconstructed table and figure as text so
results are readable in CI logs and diffable between runs.  ``render_table``
produces aligned ASCII tables; ``ascii_plot`` renders an x/y series as a crude
line plot, which is how "figures" appear in ``bench_output.txt``.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["format_float", "render_table", "render_series", "ascii_plot"]


def format_float(x: object, digits: int = 4) -> str:
    """Format a cell: floats with ``digits`` significant figures, rest str()."""
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        return str(x)
    if isinstance(x, int):
        return str(x)
    if math.isnan(x):
        return "nan"
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    if x == 0:
        return "0"
    return f"{x:.{digits}g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    digits: int = 4,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Numeric cells are right-aligned, text cells left-aligned.  ``rows`` may be
    ragged only in the sense of shorter rows, which are padded with blanks.
    """
    ncols = len(headers)
    cells: list[list[str]] = []
    numeric = [True] * ncols
    for row in rows:
        line = []
        for j in range(ncols):
            val = row[j] if j < len(row) else ""
            line.append(format_float(val, digits))
            if j < len(row) and not isinstance(val, (int, float)):
                numeric[j] = False
        cells.append(line)
    widths = [
        max(len(str(headers[j])), *(len(r[j]) for r in cells)) if cells else len(str(headers[j]))
        for j in range(ncols)
    ]

    def fmt_row(row: Sequence[str], header: bool = False) -> str:
        parts = []
        for j, cell in enumerate(row):
            if numeric[j] and not header:
                parts.append(cell.rjust(widths[j]))
            else:
                parts.append(cell.ljust(widths[j]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(fmt_row([str(h) for h in headers], header=True))
    out.append(sep)
    out.extend(fmt_row(r) for r in cells)
    return "\n".join(out)


def render_series(
    series: Mapping[str, Sequence[float]],
    x: Sequence[float],
    *,
    x_label: str = "x",
    digits: int = 4,
    title: str | None = None,
) -> str:
    """Render one or more y-series against a shared x axis as a table."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, xv in enumerate(x):
        row: list[object] = [xv]
        for ys in series.values():
            row.append(ys[i] if i < len(ys) else math.nan)
        rows.append(row)
    return render_table(headers, rows, digits=digits, title=title)


def ascii_plot(
    x: Sequence[float],
    y: Sequence[float],
    *,
    width: int = 72,
    height: int = 16,
    label: str = "",
) -> str:
    """Render a single series as an ASCII line plot.

    Intended for eyeballing the *shape* of a figure (steps, crossovers,
    saturation) directly in benchmark logs, not for precise reading.
    """
    if len(x) != len(y):
        raise ValueError(f"x and y must have equal length, got {len(x)} vs {len(y)}")
    pts = [(float(a), float(b)) for a, b in zip(x, y) if not (math.isnan(b) or math.isinf(b))]
    if not pts:
        return f"{label}: (no finite data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0
    grid = [[" "] * width for _ in range(height)]
    for a, b in pts:
        col = int((a - xmin) / (xmax - xmin) * (width - 1))
        row = int((b - ymin) / (ymax - ymin) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"y in [{format_float(ymin)}, {format_float(ymax)}]")
    lines.extend("|" + "".join(r) for r in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x in [{format_float(xmin)}, {format_float(xmax)}]")
    return "\n".join(lines)
