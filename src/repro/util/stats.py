"""Online and windowed statistics used by monitoring and instrumentation.

The monitoring layer observes unbounded measurement streams, so everything
here is O(1) or O(window) in memory: Welford accumulators for whole-stream
moments, exponentially weighted moving averages for recency-biased estimates,
and fixed-capacity sliding windows for quantiles.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "OnlineStats",
    "EWMA",
    "SlidingWindow",
    "StatSummary",
    "summarize",
    "coefficient_of_variation",
]


class OnlineStats:
    """Numerically stable streaming mean/variance (Welford's algorithm).

    Supports :meth:`merge` so per-replica accumulators can be combined into a
    per-stage view without keeping raw samples.
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, x: float) -> None:
        """Add one observation."""
        x = float(x)
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs: Iterable[float]) -> None:
        """Add many observations."""
        for x in xs:
            self.push(x)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to seeing both streams."""
        out = OnlineStats()
        if self._n == 0:
            out._n, out._mean, out._m2 = other._n, other._mean, other._m2
            out._min, out._max = other._min, other._max
            return out
        if other._n == 0:
            out._n, out._mean, out._m2 = self._n, self._mean, self._m2
            out._min, out._max = self._min, self._max
            return out
        n = self._n + other._n
        delta = other._mean - self._mean
        out._n = n
        out._mean = self._mean + delta * other._n / n
        out._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out

    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN with fewer than two observations."""
        return self._m2 / (self._n - 1) if self._n > 1 else math.nan

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating

    @property
    def min(self) -> float:
        return self._min if self._n else math.nan

    @property
    def max(self) -> float:
        return self._max if self._n else math.nan

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        if self._n < 2 or self._mean == 0.0:
            return math.nan
        return self.std / abs(self._mean)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OnlineStats(n={self._n}, mean={self.mean:.6g}, std={self.std:.6g})"


class EWMA:
    """Exponentially weighted moving average with smoothing factor ``alpha``.

    ``alpha`` close to 1 tracks the latest sample; close to 0 averages over a
    long history.  ``value`` is NaN until the first observation.
    """

    __slots__ = ("alpha", "_value", "_n")

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._value = math.nan
        self._n = 0

    def push(self, x: float) -> float:
        """Fold one observation in and return the updated average."""
        x = float(x)
        if self._n == 0:
            self._value = x
        else:
            self._value += self.alpha * (x - self._value)
        self._n += 1
        return self._value

    @property
    def value(self) -> float:
        return self._value

    @property
    def n(self) -> int:
        return self._n


class SlidingWindow:
    """Fixed-capacity window over the most recent observations.

    Used wherever the adaptation logic must react to *recent* behaviour
    (service times after a load change) rather than the whole run history.
    """

    __slots__ = ("_buf",)

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buf: deque[float] = deque(maxlen=capacity)

    def push(self, x: float) -> None:
        self._buf.append(float(x))

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.push(x)

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def capacity(self) -> int:
        return self._buf.maxlen or 0

    @property
    def full(self) -> bool:
        return len(self._buf) == self._buf.maxlen

    def values(self) -> list[float]:
        """Chronological copy of the window contents."""
        return list(self._buf)

    @property
    def mean(self) -> float:
        return float(np.mean(self._buf)) if self._buf else math.nan

    @property
    def median(self) -> float:
        return float(np.median(self._buf)) if self._buf else math.nan

    @property
    def std(self) -> float:
        return float(np.std(self._buf, ddof=1)) if len(self._buf) > 1 else math.nan

    @property
    def last(self) -> float:
        return self._buf[-1] if self._buf else math.nan

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile (0..100) of the window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        return float(np.percentile(self._buf, q)) if self._buf else math.nan


@dataclass(frozen=True)
class StatSummary:
    """Immutable five-number-ish summary of a finished sample."""

    n: int
    mean: float
    std: float
    min: float
    p50: float
    p95: float
    max: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.min:.6g} p50={self.p50:.6g} p95={self.p95:.6g} "
            f"max={self.max:.6g}"
        )


def summarize(xs: Sequence[float]) -> StatSummary:
    """Summarize a finite sample into a :class:`StatSummary`."""
    arr = np.asarray(list(xs), dtype=float)
    if arr.size == 0:
        nan = math.nan
        return StatSummary(0, nan, nan, nan, nan, nan, nan)
    return StatSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        max=float(arr.max()),
    )


def coefficient_of_variation(xs: Sequence[float]) -> float:
    """CV (std/mean) of a sample; NaN for degenerate inputs."""
    arr = np.asarray(list(xs), dtype=float)
    if arr.size < 2:
        return math.nan
    m = arr.mean()
    if m == 0.0:
        return math.nan
    return float(arr.std(ddof=1) / abs(m))
