"""Micro-batch currency shared by the session layer and every executor.

A :class:`Batch` is one coalesced run of *consecutive* stream items that
travels the executor fabrics as a single logical unit: one queue hop, one
reorderer transaction, one :class:`~repro.transport.Frame` on the wire —
that is the whole amortization story.  Executors stay batching-agnostic on
their dispatch path (a batch is just a value with one sequence number);
only the stage-function application sites map element-wise over
``batch.items``, so stage callables never see batching at all.

This module lives in ``util`` (not ``backend``) because every layer
touches it: the session assembles and splits batches, the thread runtime's
workers and the process/distributed worker *processes* map over them — and
pickled batches must resolve against one importable module on any host.

Sizing has three bounds (any one flushes the assembly buffer):

* ``max_items`` — the count bound; ``"auto"`` calibrates it at the first
  batched open from a quick probe of this host's per-item hop cost
  (:func:`calibrated_batch_items`), mirroring the transport layer's
  ``calibrated_auto_threshold`` pattern;
* ``max_bytes`` — the size bound, so a batch of large payloads never
  balloons one frame past what the transport moves well;
* ``linger_s`` — the deadline bound: under trickle load a partial batch is
  flushed after this long, capping the latency cost of waiting for peers.
"""

from __future__ import annotations

import pickle
import queue
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = [
    "Batch",
    "BatchingConfig",
    "DEFAULT_LINGER_S",
    "DEFAULT_MAX_BYTES",
    "calibrated_batch_items",
    "map_batch",
    "normalize_batching",
]

#: Default flush deadline for a partial batch (the first-result latency
#: cost of batching under trickle load is at most this).
DEFAULT_LINGER_S = 0.002

#: Default byte bound per batch — one frame of roughly this size is still
#: comfortably inside the transport's sweet spot (cf. AUTO_THRESHOLD's
#: calibration band topping out at 1 MiB).
DEFAULT_MAX_BYTES = 1 << 20

#: Clamp band for the calibrated (and the explicit) item bound.  The floor
#: keeps auto mode from degenerating into per-item dispatch on fast hosts;
#: the ceiling bounds head-of-line blocking and redispatch cost (a worker
#: death re-sends whole batches).
_ITEMS_MIN = 4
_ITEMS_MAX = 64
_DEFAULT_ITEMS = 16


class Batch:
    """One coalesced run of consecutive items, travelling as a single unit.

    ``base_seq``/``gbase`` are the first item's stream-scoped and
    session-global sequence numbers; items ``k`` of the batch carry
    ``base_seq + k``/``gbase + k`` implicitly (assembly only coalesces
    consecutive admissions).  ``bseq`` is the batch's own stream-scoped
    sequence number — the one executors order and account by.
    """

    __slots__ = ("items", "base_seq", "gbase", "bseq")

    def __init__(self, items: Iterable[Any], base_seq: int, gbase: int, bseq: int) -> None:
        self.items = list(items)
        self.base_seq = base_seq
        self.gbase = gbase
        self.bseq = bseq

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Batch(n={len(self.items)}, base_seq={self.base_seq}, "
            f"gbase={self.gbase}, bseq={self.bseq})"
        )

    # __slots__ classes need explicit state plumbing only below protocol 2;
    # protocol 5 (the transport's floor) handles them natively.


def map_batch(fn: Callable[[Any], Any], batch: Batch) -> Batch:
    """Apply a per-item stage function element-wise; metadata rides along."""
    return Batch([fn(v) for v in batch.items], batch.base_seq, batch.gbase, batch.bseq)


@dataclass(frozen=True)
class BatchingConfig:
    """Resolved batching bounds (see module docstring for the three knobs)."""

    max_items: int
    max_bytes: int = DEFAULT_MAX_BYTES
    linger_s: float = DEFAULT_LINGER_S

    def __post_init__(self) -> None:
        if self.max_items < 1:
            raise ValueError(f"max_items must be >= 1, got {self.max_items}")
        if self.max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {self.max_bytes}")
        if self.linger_s < 0:
            raise ValueError(f"linger_s must be >= 0, got {self.linger_s}")


def normalize_batching(spec: Any, *, work_hint_s: float = 0.0) -> BatchingConfig | None:
    """Resolve the user-facing ``batching=`` spec to a config (or ``None``).

    Accepted forms: ``None``/``False`` (off), ``True``/``"auto"`` (item
    bound calibrated at open), an ``int`` (explicit item bound), a ``dict``
    of :class:`BatchingConfig` fields (``max_items`` may be ``"auto"``), or
    a ready :class:`BatchingConfig`.  ``work_hint_s`` is the pipeline's
    declared per-item service time (sum of stage ``work`` hints); ``auto``
    sizing uses it to keep a batch's service from holding the first result
    back (see :func:`calibrated_batch_items`).
    """
    if spec is None or spec is False:
        return None
    if isinstance(spec, BatchingConfig):
        return spec
    if spec is True or spec == "auto":
        return BatchingConfig(max_items=calibrated_batch_items(work_hint_s=work_hint_s))
    if isinstance(spec, int):
        return BatchingConfig(max_items=spec)
    if isinstance(spec, dict):
        kwargs = dict(spec)
        if kwargs.get("max_items", None) in (None, "auto"):
            kwargs["max_items"] = calibrated_batch_items(work_hint_s=work_hint_s)
        return BatchingConfig(**kwargs)
    raise TypeError(
        "batching must be None, True, 'auto', an int (max items), a dict "
        f"of BatchingConfig fields, or a BatchingConfig; got {spec!r}"
    )


def approx_nbytes(item: Any) -> int:
    """Cheap payload-size estimate for the assembly buffer's byte bound.

    Exact for the bulk carriers (``bytes``-likes and objects exposing
    ``nbytes`` — numpy arrays, memoryviews); ``sys.getsizeof`` for the
    rest.  The byte bound is a guard rail, not an accounting ledger, so a
    shallow estimate is the right cost here.
    """
    nbytes = getattr(item, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(item, (bytes, bytearray, str)):
        return len(item)
    return sys.getsizeof(item)


_UNCALIBRATED = object()  # cache sentinel: "the probe has not run yet"
_calibrated: "int | object" = _UNCALIBRATED


def calibrated_batch_items(
    *, repeats: int = 3, work_hint_s: float = 0.0, _cache: bool = True
) -> int:
    """Measure this host's per-item hop cost and size batches from it.

    The quantity batching amortizes is the fixed per-item framework cost:
    one bounded-queue hop plus one small pickle round trip (the in-process
    and cross-process halves of the per-item tax).  The probe times both
    (best of ``repeats``, like the transport threshold probe) and returns
    how many such hops fit in one default linger window — the batch size
    at which coalescing saves roughly a linger's worth of per-item overhead
    without ever holding an item longer than the deadline already allows.
    Clamped to [{_ITEMS_MIN}, {_ITEMS_MAX}] and cached per process.

    ``work_hint_s`` (the pipeline's declared per-item service time) caps
    the result from the latency side: a whole batch is serviced before its
    first result egresses, so the count bound must keep ``max_items x
    work`` inside the same one-linger budget the deadline bound promises.
    Amortizing a ~e-5 s hop against millisecond stages buys nothing and
    costs batch x service of first-result latency — there ``auto``
    degenerates toward per-item dispatch (down to 1), below the probe
    clamp's floor on purpose.
    """
    global _calibrated
    if _cache and _calibrated is not _UNCALIBRATED:
        result = _calibrated
    else:
        result = _DEFAULT_ITEMS
        try:
            per_item = _probe_hop_cost(repeats)
            if per_item > 0:
                result = int(DEFAULT_LINGER_S / per_item)
        except Exception:  # noqa: BLE001 - calibration is best-effort everywhere
            pass
        result = max(_ITEMS_MIN, min(_ITEMS_MAX, result))
        if _cache:
            _calibrated = result
    if work_hint_s > 0:
        result = min(result, max(1, int(DEFAULT_LINGER_S / work_hint_s)))
    return result  # type: ignore[return-value]


def _probe_hop_cost(repeats: int, n: int = 128) -> float:
    """Seconds of fixed framework cost one item pays (queue hop + pickle)."""
    q: queue.Queue = queue.Queue()
    payload = (0, ("probe", 1.0))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for i in range(n):
            q.put(payload)
            q.get()
            pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        best = min(best, (time.perf_counter() - t0) / n)
    return best
