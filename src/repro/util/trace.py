"""Structured event tracing for simulations and adaptation runs.

A :class:`Tracer` collects timestamped, categorised events.  It is cheap when
disabled (a single branch per emit) and is the mechanism behind run
post-mortems in tests and the adaptation timelines printed by examples.

Since the unified telemetry layer landed (:mod:`repro.obs.events`), the
trace record *is* the runtime event record: :data:`TraceEvent` is an alias
of :class:`repro.obs.events.Event` and categories are expected to be kinds
from :data:`repro.obs.events.SCHEMA` (``"adapt.decide"``, ``"item.complete"``,
...).  Free-form category strings still work — the simulator's history
predates the schema — but are deprecated; new call sites should emit
schema kinds so traces can be forwarded verbatim onto a session's
:class:`~repro.obs.events.EventBus`.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Iterator

from repro.obs.events import SCHEMA, Event

__all__ = ["TraceEvent", "Tracer"]

#: One trace record.  An alias of the runtime event type: ``(time, kind,
#: message, fields)`` positionally, with ``category`` aliasing ``kind``.
TraceEvent = Event


class Tracer:
    """Collects :class:`TraceEvent` records and fans out to subscribers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def emit(self, time: float, category: str, message: str, **fields: Any) -> None:
        """Record an event (no-op when disabled).

        ``category`` should be a kind from :data:`repro.obs.events.SCHEMA`;
        anything else is accepted for compatibility but deprecated.
        """
        if not self.enabled:
            return
        if category not in SCHEMA:
            warnings.warn(
                f"free-form trace category {category!r} is deprecated; "
                "use a kind from repro.obs.events.SCHEMA",
                DeprecationWarning,
                stacklevel=2,
            )
        ev = TraceEvent(time=time, kind=category, message=message, fields=fields)
        self._events.append(ev)
        for sub in self._subscribers:
            sub(ev)

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked for every subsequent event."""
        self._subscribers.append(fn)

    def events(self, category: str | None = None) -> list[TraceEvent]:
        """All events so far, optionally filtered by category (kind)."""
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)
