"""Structured event tracing for simulations and adaptation runs.

A :class:`Tracer` collects timestamped, categorised events.  It is cheap when
disabled (a single branch per emit) and is the mechanism behind run
post-mortems in tests and the adaptation timelines printed by examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: simulated time, category tag, message, payload."""

    time: float
    category: str
    message: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:12.6f}] {self.category:<12} {self.message}" + (
            f" ({extra})" if extra else ""
        )


class Tracer:
    """Collects :class:`TraceEvent` records and fans out to subscribers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def emit(self, time: float, category: str, message: str, **fields: Any) -> None:
        """Record an event (no-op when disabled)."""
        if not self.enabled:
            return
        ev = TraceEvent(time=time, category=category, message=message, fields=fields)
        self._events.append(ev)
        for sub in self._subscribers:
            sub(ev)

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked for every subsequent event."""
        self._subscribers.append(fn)

    def events(self, category: str | None = None) -> list[TraceEvent]:
        """All events so far, optionally filtered by category."""
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)
