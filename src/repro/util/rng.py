"""Deterministic random-number stream derivation.

Every stochastic component in the simulator (background-load models,
cost-model sampling, measurement noise, ...) receives its own independent
:class:`numpy.random.Generator`, derived from a single run seed plus a string
path identifying the component (e.g. ``("load", "proc-3")``).  This gives two
properties the experiments rely on:

* **Reproducibility** — the same run seed reproduces the exact event trace.
* **Independence under reconfiguration** — adding a processor or stage does
  not perturb the random streams of unrelated components, because streams are
  keyed by name rather than by creation order.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "derive_rng", "spawn_rngs"]

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, *keys: str) -> int:
    """Derive a 64-bit child seed from ``seed`` and a path of string keys.

    The derivation hashes ``seed`` together with the keys using BLAKE2b, so
    distinct key paths yield (with overwhelming probability) independent
    seeds, and the mapping is stable across processes and Python versions.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(seed & _MASK64).to_bytes(8, "little"))
    for key in keys:
        h.update(b"\x00")
        h.update(key.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


def derive_rng(seed: int, *keys: str) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for a key path."""
    return np.random.default_rng(derive_seed(seed, *keys))


def spawn_rngs(seed: int, prefix: str, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators keyed ``prefix/0 .. prefix/n-1``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return [derive_rng(seed, prefix, str(i)) for i in range(n)]
