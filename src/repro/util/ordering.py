"""Sequence-order restoration shared by the real executors.

Replicated stage workers finish items out of order; every executor restores
input order before the next stage starts them (and before final output) —
the invariant behind the ``Pipeline1for1`` contract.  Both the thread
runtime's dispatchers and the process backend's routers delegate to this
one implementation so the invariant has a single home.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["SequenceReorderer"]


class SequenceReorderer:
    """Buffers (seq, value) pairs and releases them in sequence order."""

    def __init__(self, start: int = 0) -> None:
        self._pending: dict[int, Any] = {}
        self._next_seq = start

    def push(self, seq: int, value: Any) -> Iterator[tuple[int, Any]]:
        """Accept one pair; yield every pair now ready, in order."""
        self._pending[seq] = value
        while self._next_seq in self._pending:
            seq_out = self._next_seq
            self._next_seq += 1
            yield seq_out, self._pending.pop(seq_out)

    def drain(self) -> Iterator[tuple[int, Any]]:
        """Yield any remaining consecutive pairs (used at shutdown)."""
        while self._next_seq in self._pending:
            seq_out = self._next_seq
            self._next_seq += 1
            yield seq_out, self._pending.pop(seq_out)

    def __len__(self) -> int:
        return len(self._pending)
