"""Sequence-order restoration shared by the real executors.

Replicated stage workers finish items out of order; every executor restores
input order before the next stage starts them (and before final output) —
the invariant behind the ``Pipeline1for1`` contract.  Both the thread
runtime's dispatchers and the process backend's routers delegate to this
one implementation so the invariant has a single home.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["SequenceReorderer"]


class SequenceReorderer:
    """Buffers (seq, value) pairs and releases them in sequence order.

    Duplicate sequence numbers are rejected: a seq still buffered, or one
    already released, can only mean an executor dispatched the same item
    twice — silently overwriting (or re-emitting) it would corrupt the
    1-for-1 contract downstream, so ``push`` raises instead.

    Long-lived streaming sessions run several *sequential* streams through
    one reorderer; :meth:`begin_stream` opens a fresh stream-scoped
    sequence space (typically restarting at 0) once the previous stream has
    fully drained, so per-stream sequence numbers never collide with the
    last stream's and the duplicate guard keeps its exactly-once meaning
    within each stream.
    """

    def __init__(self, start: int = 0) -> None:
        self._pending: dict[int, Any] = {}
        self._next_seq = start

    def begin_stream(self, start: int = 0) -> None:
        """Rebase onto a new stream's sequence space (``start``, usually 0).

        Only legal between streams: pairs still buffered belong to the old
        space and could never be released under the new one, so a non-empty
        reorderer raises instead of silently stranding them.
        """
        if self._pending:
            raise RuntimeError(
                f"cannot begin a new stream: {len(self._pending)} pairs of "
                "the previous stream are still buffered"
            )
        self._next_seq = start

    def push(self, seq: int, value: Any) -> Iterator[tuple[int, Any]]:
        """Accept one pair; yield every pair now ready, in order.

        Validation and buffering happen eagerly (not on first iteration of
        the returned iterator), so duplicates raise even if a caller never
        consumes the ready items.
        """
        if seq < self._next_seq:
            raise ValueError(
                f"sequence {seq} was already released (next is {self._next_seq})"
            )
        if seq in self._pending:
            raise ValueError(f"sequence {seq} is already buffered")
        self._pending[seq] = value
        return self._release()

    def push_range(self, start: int, values: list[Any]) -> Iterator[tuple[int, Any]]:
        """Accept ``len(values)`` consecutive pairs in one transaction.

        The micro-batched egress path admits a whole batch with a single
        call — one stale/duplicate validation over the range and one
        release sweep — instead of ``len(values)`` per-seq transactions.
        The range is validated in full before anything is buffered, so a
        bad batch leaves the reorderer untouched.
        """
        if start < self._next_seq:
            raise ValueError(
                f"sequence {start} was already released (next is {self._next_seq})"
            )
        for k in range(len(values)):
            if start + k in self._pending:
                raise ValueError(f"sequence {start + k} is already buffered")
        for k, value in enumerate(values):
            self._pending[start + k] = value
        return self._release()

    def drain(self) -> Iterator[tuple[int, Any]]:
        """Yield any remaining consecutive pairs (used at shutdown)."""
        return self._release()

    def _release(self) -> Iterator[tuple[int, Any]]:
        while self._next_seq in self._pending:
            seq_out = self._next_seq
            self._next_seq += 1
            yield seq_out, self._pending.pop(seq_out)

    def __len__(self) -> int:
        return len(self._pending)
