"""Shared utilities: seeded RNG streams, online statistics, rendering, tracing.

These helpers are deliberately dependency-light (numpy only) and are used by
every other subpackage.  Nothing in :mod:`repro.util` knows about grids,
pipelines or adaptation.
"""

from repro.util.rng import derive_rng, derive_seed, spawn_rngs
from repro.util.stats import (
    EWMA,
    OnlineStats,
    SlidingWindow,
    StatSummary,
    coefficient_of_variation,
    summarize,
)
from repro.util.tables import ascii_plot, format_float, render_series, render_table
from repro.util.trace import TraceEvent, Tracer
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    require,
)

__all__ = [
    "EWMA",
    "OnlineStats",
    "SlidingWindow",
    "StatSummary",
    "TraceEvent",
    "Tracer",
    "ascii_plot",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "coefficient_of_variation",
    "derive_rng",
    "derive_seed",
    "format_float",
    "render_series",
    "render_table",
    "require",
    "spawn_rngs",
    "summarize",
]
