"""Argument-validation helpers with uniform error messages.

Fail-fast validation at public API boundaries; internal hot paths skip these.
"""

from __future__ import annotations

__all__ = [
    "require",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate ``value >= 0`` and return it."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate ``0 <= value <= 1`` and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Validate ``lo <= value <= hi`` and return it."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value
