"""``python -m repro.obs.top`` — live terminal view of a running pipeline.

Tails a JSONL journal (the one a session writes when opened with
``telemetry=``) and renders per-stage throughput, mean service time, queue
depth and replica counts, the last N adaptation decisions and — when
distributed trace propagation is on — a per-hop latency breakdown with
worker clock fits; a
curses-free ``top`` for the streaming stack, attachable to any running
session whose journal path you know::

    python -m repro.obs.top /tmp/pipeline.jsonl
    python -m repro.obs.top /tmp/pipeline.jsonl --interval 0.5 --decisions 8
    python -m repro.obs.top /tmp/pipeline.jsonl --once   # one frame, no ANSI

Rates are computed from the wall-clock stamps the journal adds per line,
over a trailing ``--window`` seconds, so the view stays honest even when
the emitting session's own clock is relative.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import deque
from pathlib import Path

__all__ = ["TopState", "main", "render"]

_CLEAR = "\x1b[H\x1b[2J"


class TopState:
    """Aggregated view of a journal's event stream (one consumer, no locks)."""

    def __init__(self, *, window: float = 5.0, decisions: int = 10) -> None:
        self.window = window
        self.backend = "?"
        self.stage_names: list[str] = []
        self.submitted = 0
        self.completed = 0
        self.streams = 0
        self.workers_alive = 0
        self.session_open = False
        self.last_t = 0.0
        # stage -> {items, svc_sum, queue, replicas, recent: deque[wall]}
        self.stages: dict[int, dict] = {}
        self.decisions: deque[tuple[float, str, str]] = deque(maxlen=decisions)
        # phase -> cumulative seconds from span.phases hops (+ admit waits).
        self.phase_sums: dict[str, float] = {}
        self.phase_hops = 0
        self.admit_wait_sum = 0.0
        # worker -> (offset, err) from the latest clock.sync.
        self.clocks: dict[int, tuple[float, float]] = {}

    def _stage(self, i: int) -> dict:
        return self.stages.setdefault(
            int(i),
            {"items": 0, "svc_sum": 0.0, "queue": 0.0, "replicas": 1, "recent": deque()},
        )

    def feed(self, rec: dict) -> None:
        kind = rec.get("kind", "")
        self.last_t = max(self.last_t, rec.get("t", 0.0))
        if kind == "session.open":
            self.session_open = True
            self.backend = rec.get("backend", "?")
            self.stage_names = list(rec.get("stages", []))
        elif kind == "session.close":
            self.session_open = False
        elif kind == "item.submit":
            self.submitted += 1
            self.admit_wait_sum += rec.get("wait", 0.0)
        elif kind == "item.complete":
            self.completed += 1
        elif kind == "stream.begin":
            self.streams += 1
        elif kind == "stage.service":
            s = self._stage(rec.get("stage", 0))
            # One record may cover a whole micro-batch (items=N, seconds =
            # batch total): count N items so svc_sum / items stays the
            # honest per-item mean rather than N-times-inflated.
            n = rec.get("items", 1)
            s["items"] += n
            s["svc_sum"] += rec.get("seconds", 0.0)
            if "queue" in rec:
                s["queue"] = rec["queue"]
            s["recent"].extend([rec.get("wall", time.time())] * n)
        elif kind in ("replica.add", "replica.remove"):
            if "n" in rec:
                self._stage(rec.get("stage", 0))["replicas"] = rec["n"]
        elif kind in ("adapt.decide", "adapt.act", "adapt.rollback"):
            reason = rec.get("reason", rec.get("msg", ""))
            self.decisions.append((rec.get("t", 0.0), kind, str(reason)))
        elif kind == "worker.join":
            self.workers_alive += 1
        elif kind == "worker.death":
            self.workers_alive = max(0, self.workers_alive - 1)
        elif kind == "span.phases":
            # A batched hop carries items=N: weight it as N item-hops so
            # the mean-per-hop line stays per-item.
            self.phase_hops += rec.get("items", 1)
            for phase in ("wire_out", "worker_queue", "service", "encode", "wire_back"):
                if phase in rec:
                    self.phase_sums[phase] = self.phase_sums.get(phase, 0.0) + rec[phase]
        elif kind == "clock.sync":
            if "worker" in rec:
                self.clocks[rec["worker"]] = (
                    rec.get("offset", 0.0), rec.get("err", 0.0)
                )

    def rate(self, stage: int, now: float) -> float:
        recent = self.stages[stage]["recent"]
        cutoff = now - self.window
        while recent and recent[0] < cutoff:
            recent.popleft()
        return len(recent) / self.window


def render(state: TopState, now: float | None = None) -> str:
    """One frame of the view as plain text (no ANSI)."""
    now = time.time() if now is None else now
    status = "live" if state.session_open else "closed"
    out = [
        f"repro.obs.top  backend={state.backend}  [{status}]  "
        f"t={state.last_t:.2f}s  streams={state.streams}  "
        f"items {state.completed}/{state.submitted}  "
        f"backlog {state.submitted - state.completed}"
        + (f"  workers {state.workers_alive}" if state.workers_alive else ""),
        "",
        f"{'stage':<24} {'items':>8} {'rate/s':>8} {'svc ms':>8} "
        f"{'queue':>7} {'repl':>5}",
    ]
    for i in sorted(state.stages):
        s = state.stages[i]
        name = (
            state.stage_names[i] if i < len(state.stage_names) else str(i)
        )
        svc_ms = (s["svc_sum"] / s["items"] * 1e3) if s["items"] else 0.0
        out.append(
            f"{name[:24]:<24} {s['items']:>8} {state.rate(i, now):>8.1f} "
            f"{svc_ms:>8.2f} {s['queue']:>7.1f} {s['replicas']:>5}"
        )
    if not state.stages:
        out.append("(no stage activity yet)")
    if state.phase_hops:
        # Per-hop latency breakdown (distributed trace propagation on).
        total = max(sum(state.phase_sums.values()), 1e-12)
        parts = "  ".join(
            f"{p}={state.phase_sums.get(p, 0.0) / state.phase_hops * 1e3:.2f}ms"
            f"({state.phase_sums.get(p, 0.0) / total:.0%})"
            for p in ("wire_out", "worker_queue", "service", "encode", "wire_back")
        )
        out.append("")
        out.append(f"latency breakdown ({state.phase_hops} hops, mean/hop): {parts}")
        if state.admit_wait_sum:
            out.append(f"  admit wait total: {state.admit_wait_sum * 1e3:.1f}ms")
        if state.clocks:
            fits = "  ".join(
                f"w{w}:{off * 1e3:+.2f}±{err * 1e3:.2f}ms"
                for w, (off, err) in sorted(state.clocks.items())
            )
            out.append(f"  worker clocks: {fits}")
    out.append("")
    out.append(f"last {state.decisions.maxlen} adaptation decisions:")
    if state.decisions:
        for t, kind, reason in state.decisions:
            out.append(f"  [{t:9.3f}] {kind:<14} {reason}")
    else:
        out.append("  (none)")
    return "\n".join(out)


def _tail(path: Path, state: TopState, pos: int) -> int:
    """Feed journal lines appended since ``pos``; returns the new offset."""
    try:
        size = path.stat().st_size
    except OSError:
        return pos
    if size < pos:  # rotated under us: start over on the fresh file
        pos = 0
    if size == pos:
        return pos
    with open(path, "r", encoding="utf-8") as fh:
        fh.seek(pos)
        for line in fh:
            if not line.endswith("\n"):
                break  # partial write: re-read next round
            pos += len(line.encode("utf-8"))
            line = line.strip()
            if not line:
                continue
            try:
                state.feed(json.loads(line))
            except json.JSONDecodeError:
                continue
    return pos


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top", description=__doc__.split("\n")[0]
    )
    parser.add_argument("journal", help="JSONL journal path a session writes to")
    parser.add_argument("--interval", type=float, default=1.0, help="refresh seconds")
    parser.add_argument(
        "--window", type=float, default=5.0, help="throughput window (seconds)"
    )
    parser.add_argument(
        "--decisions", type=int, default=10, help="adaptation decisions to keep"
    )
    parser.add_argument(
        "--once", action="store_true",
        help="read the whole journal, print one frame, exit (no ANSI)",
    )
    args = parser.parse_args(argv)
    path = Path(args.journal)
    state = TopState(window=args.window, decisions=args.decisions)
    if args.once:
        _tail(path, state, 0)
        print(render(state))
        return 0
    pos = 0
    try:
        while True:
            pos = _tail(path, state, pos)
            sys.stdout.write(_CLEAR + render(state) + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
