"""Unified telemetry: structured events, metrics, spans, exporters, top.

The observability layer over the streaming/adaptive stack (see
``docs/observability.md``): sessions emit :class:`Event` records on a
per-session :class:`EventBus` (schema in :data:`SCHEMA`), and the pieces
here consume them —

* :class:`JsonlJournal` — durable JSONL stream with rotation;
* :class:`MetricsRegistry`/:class:`MetricsRecorder` — counters, gauges and
  log2 histograms with per-stage/per-worker labels;
* :class:`SpanCollector`/:func:`spans_from_journal` — per-item
  submit→service→yield timelines;
* :class:`Telemetry` — the bundle ``open_pipeline(..., telemetry=...)``
  accepts;
* ``python -m repro.obs.top`` — live terminal view over a journal.
"""

from repro.obs.events import NULL_BUS, SCHEMA, Event, EventBus
from repro.obs.exporters import (
    Telemetry,
    as_telemetry,
    render_prometheus,
    write_prometheus,
)
from repro.obs.journal import JsonlJournal, read_journal
from repro.obs.metrics import (
    Counter,
    Gauge,
    Log2Histogram,
    MetricsRecorder,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanCollector, spans_from_journal

__all__ = [
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "JsonlJournal",
    "Log2Histogram",
    "MetricsRecorder",
    "MetricsRegistry",
    "NULL_BUS",
    "SCHEMA",
    "Span",
    "SpanCollector",
    "Telemetry",
    "as_telemetry",
    "read_journal",
    "render_prometheus",
    "spans_from_journal",
    "write_prometheus",
]
