"""Exporters: Prometheus-text snapshots and the session telemetry façade.

:class:`Telemetry` is the one object user code configures — it bundles the
JSONL journal, the metrics recorder and the Prometheus snapshot writer and
attaches them to a session's event bus.  It is what
``open_pipeline(..., telemetry=...)`` accepts (a bare path string/Path is
shorthand for ``Telemetry(journal=path)``), and sessions attach it inside
``Session.__init__`` — *before* any executor machinery starts — so even
warm-up events (distributed ``worker.join``) reach the exporters.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.obs.events import EventBus
from repro.obs.journal import JsonlJournal
from repro.obs.metrics import Log2Histogram, MetricsRecorder, MetricsRegistry
from repro.obs.spans import SpanCollector

__all__ = ["Telemetry", "as_telemetry", "render_prometheus", "write_prometheus"]


def _fmt_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + inner + "}"


#: Quantiles rendered as ``<name>_p50``/``_p95``/``_p99`` gauge families
#: alongside every histogram (estimated from its log2 buckets).
_PERCENTILES = ((0.5, "_p50"), (0.95, "_p95"), (0.99, "_p99"))


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Render a registry in the Prometheus text exposition format.

    Histograms additionally export ``_p50``/``_p95``/``_p99`` gauges —
    per-label quantile estimates interpolated from the log2 buckets
    (:meth:`~repro.obs.metrics.Log2Histogram.quantile`), so dashboards get
    per-stage latency percentiles without server-side ``histogram_quantile``
    over sparse buckets.
    """
    lines: list[str] = []
    # pname -> sample lines, kept grouped so each percentile gauge family
    # renders contiguously (the text format requires family grouping).
    percentiles: dict[str, list[str]] = {}
    seen: set[str] = set()
    for name, labels, inst in registry.collect():
        full = prefix + name
        if full not in seen:
            seen.add(full)
            lines.append(f"# TYPE {full} {inst.kind}")
        if isinstance(inst, Log2Histogram):
            for bound, cum in inst.bounds():
                lines.append(
                    f"{full}_bucket{_fmt_labels(labels, {'le': f'{bound:g}'})} {cum}"
                )
            lines.append(f"{full}_bucket{_fmt_labels(labels, {'le': '+Inf'})} {inst.count}")
            lines.append(f"{full}_sum{_fmt_labels(labels)} {inst.sum:g}")
            lines.append(f"{full}_count{_fmt_labels(labels)} {inst.count}")
            if inst.count:
                for q, suffix in _PERCENTILES:
                    percentiles.setdefault(full + suffix, []).append(
                        f"{full}{suffix}{_fmt_labels(labels)} {inst.quantile(q):g}"
                    )
        else:
            lines.append(f"{full}{_fmt_labels(labels)} {inst.value:g}")
    for pname in sorted(percentiles):
        lines.append(f"# TYPE {pname} gauge")
        lines.extend(percentiles[pname])
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    registry: MetricsRegistry, path: str | os.PathLike, prefix: str = "repro_"
) -> None:
    """Atomically write a registry snapshot to ``path`` (text format)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(render_prometheus(registry, prefix=prefix), encoding="utf-8")
    tmp.replace(path)


class Telemetry:
    """Opt-in observability bundle for one (or more) sessions.

    Parameters
    ----------
    journal:
        JSONL journal path (or a configured :class:`JsonlJournal`); None
        disables the journal.
    metrics:
        Keep a :class:`MetricsRegistry` fed from the event stream
        (default True when ``prometheus`` is set, else False — counters
        cost a lock each, so they stay off unless something reads them).
    prometheus:
        Path to write a Prometheus text snapshot to when the session
        closes (and on every explicit :meth:`write_snapshot`).
    spans:
        Keep per-item :class:`~repro.obs.spans.Span` timelines in memory
        (default False; unbounded in items, meant for tests and
        short-lived diagnostics — the journal is the durable form).
    kinds:
        Restrict the journal to these event kinds (default: everything).
    rotate_bytes, max_files:
        Journal rotation policy (when ``journal`` is a path).
    """

    def __init__(
        self,
        *,
        journal: str | os.PathLike | JsonlJournal | None = None,
        metrics: bool | None = None,
        prometheus: str | os.PathLike | None = None,
        spans: bool = False,
        kinds: tuple[str, ...] | None = None,
        rotate_bytes: int = 32 * 1024 * 1024,
        max_files: int = 3,
    ) -> None:
        if isinstance(journal, JsonlJournal):
            self.journal: JsonlJournal | None = journal
        elif journal is not None:
            self.journal = JsonlJournal(
                journal, rotate_bytes=rotate_bytes, max_files=max_files
            )
        else:
            self.journal = None
        self.prometheus_path = Path(prometheus) if prometheus is not None else None
        if metrics is None:
            metrics = self.prometheus_path is not None
        self.recorder = MetricsRecorder() if metrics else None
        self.spans = SpanCollector() if spans else None
        self._kinds = kinds
        self._closed = False

    # ------------------------------------------------------------ wiring
    @property
    def registry(self) -> MetricsRegistry | None:
        return self.recorder.registry if self.recorder is not None else None

    def attach(self, session) -> "Telemetry":
        """Subscribe every configured exporter to ``session.events``.

        Called by ``Session.__init__`` when the session was opened with
        ``telemetry=``; safe to call for several sessions in turn (they
        share the journal/registry).  Registers :meth:`close` as a close
        callback so the journal flushes before the backend goes away.
        """
        self.subscribe_to(session.events)
        session.add_close_callback(self.close)
        return self

    def subscribe_to(self, bus: EventBus) -> None:
        if self.journal is not None:
            bus.subscribe(self.journal, kinds=self._kinds)
        if self.recorder is not None:
            self.recorder.attach(bus)
        if self.spans is not None:
            self.spans.attach(bus)

    # ------------------------------------------------------------ output
    def write_snapshot(self) -> None:
        """Write the Prometheus snapshot now (no-op without a path)."""
        if self.prometheus_path is not None and self.registry is not None:
            write_prometheus(self.registry, self.prometheus_path)

    def close(self) -> None:
        """Flush and close every exporter (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.write_snapshot()
        if self.journal is not None:
            self.journal.close()


def as_telemetry(value) -> Telemetry:
    """Coerce ``telemetry=`` arguments: a path is journal shorthand."""
    if isinstance(value, Telemetry):
        return value
    if isinstance(value, (str, os.PathLike)):
        return Telemetry(journal=value)
    raise TypeError(
        f"telemetry must be a Telemetry, a journal path, or None; got {value!r}"
    )
