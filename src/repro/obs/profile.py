"""Critical-path profiler: attribute each item's latency to named phases.

The adaptation policy decides *where* to add replicas from throughput
measurements; this module answers the complementary question — *where did
one item's wall-clock time actually go?* — in the causal-profiling spirit
of Coz: optimizing a phase only helps if that phase is on the item's
critical path.

Given a journal (or live spans), each completed item's submit→yield
latency is tiled into named phases:

``admit_wait``
    time blocked in ``submit()`` on the bounded-admission window — spent
    *before* the item's span opens, so it is reported separately and not
    part of the latency tiling;
``coord_queue``
    coordinator-side residence: feeder queue, back-pressure slot waits,
    and inter-stage routing gaps;
``encode``
    payload encoding, both coordinator-side (``frame.encode`` with
    ``seconds``) and worker-side (the ``encode`` term of ``span.phases``);
``wire_out`` / ``wire_back``
    task frame out to the worker / result frame back, from the per-hop
    decomposition (clock-fit mapped, error bounded by rtt/2);
``worker_queue``
    in the replica's task queue on the worker;
``service``
    the stage callable itself;
``reorder_hold``
    completed out of order, held for earlier sequence numbers.

Per-stage aggregates and a **bottleneck verdict** (the dominant phase,
located to a stage when it is service- or queue-shaped) come out
comparable against the adaptation policy's own decisions: the report says
whether the policy's last ``adapt.act`` targeted the stage the measured
critical path blames.

Offline report::

    python -m repro.obs.profile /tmp/pipeline.jsonl
    python -m repro.obs.profile /tmp/pipeline.jsonl --slowest 5 --json

Backends without the distributed hop decomposition (threads, processes,
asyncio) degrade gracefully: ``stage.service`` events still tile service
time per stage, and everything between services is attributed to
``coord_queue`` — coarser, but the service-vs-overhead split and the
verdict remain honest.

Micro-batched sessions emit one batch-covering record per hop
(``items=N``, durations = batch totals) which the span collector attaches
to all N member spans.  Per item, only ``seconds / N`` of the service was
*this* item's own work; the rest of the batch's service window — time the
item spent waiting on its batchmates — tiles into ``worker_queue``, so
per-item latency coverage stays complete without service time being
counted N times across the batch.  Stage aggregates divide every batch
duration by N (amortised per-item cost).
"""

from __future__ import annotations

import argparse
import json
import math
import os
from collections import defaultdict
from dataclasses import dataclass, field

from repro.obs.spans import Span

__all__ = [
    "PHASES",
    "ItemProfile",
    "StageAggregate",
    "ProfileReport",
    "profile_spans",
    "profile_journal",
    "render_report",
    "main",
]

#: Phase names in timeline order (``admit_wait`` excluded: it precedes the
#: span and is reported separately).
PHASES = (
    "coord_queue",
    "encode",
    "wire_out",
    "worker_queue",
    "service",
    "wire_back",
    "reorder_hold",
)

_VERDICT_LABEL = {
    "service": "service-bound",
    "worker_queue": "replica-starved (worker queue)",
    "coord_queue": "coordinator-bound",
    "encode": "encode-bound",
    "wire_out": "wire-bound (outbound)",
    "wire_back": "wire-bound (return)",
    "reorder_hold": "straggler-bound (reorder hold)",
}


@dataclass
class ItemProfile:
    """One completed item's latency, tiled into named phases."""

    stream: int
    seq: int
    latency: float
    admit_wait: float
    phases: dict[str, float]
    redispatched: bool = False

    @property
    def attributed(self) -> float:
        return sum(self.phases.values())

    @property
    def coverage(self) -> float:
        """Fraction of the latency the named phases account for (≤ 1)."""
        if self.latency <= 0:
            return 1.0
        return min(1.0, self.attributed / self.latency)


@dataclass
class StageAggregate:
    """Per-stage sums across all profiled items."""

    stage: int
    name: str = ""
    items: int = 0
    service: float = 0.0
    worker_queue: float = 0.0
    wire: float = 0.0
    encode: float = 0.0


@dataclass
class ProfileReport:
    """The profiler's output: per-item tilings, aggregates, and verdict."""

    items: list[ItemProfile] = field(default_factory=list)
    stages: dict[int, StageAggregate] = field(default_factory=dict)
    backend: str = "?"
    #: (t, before, after, reason) of every ``adapt.act`` in the journal.
    decisions: list[tuple[float, list, list, str]] = field(default_factory=list)
    #: worker id -> last ``clock.sync`` fields (offset, drift, err, n).
    clocks: dict[int, dict] = field(default_factory=dict)

    # ------------------------------------------------------------ aggregates
    @property
    def phase_totals(self) -> dict[str, float]:
        totals = {p: 0.0 for p in PHASES}
        for item in self.items:
            for p, v in item.phases.items():
                totals[p] = totals.get(p, 0.0) + v
        return totals

    @property
    def admit_wait_total(self) -> float:
        return sum(i.admit_wait for i in self.items)

    @property
    def mean_coverage(self) -> float:
        if not self.items:
            return math.nan
        return sum(i.coverage for i in self.items) / len(self.items)

    @property
    def min_coverage(self) -> float:
        if not self.items:
            return math.nan
        return min(i.coverage for i in self.items)

    # --------------------------------------------------------------- verdict
    @property
    def bottleneck_phase(self) -> str | None:
        totals = self.phase_totals
        if not self.items or not any(totals.values()):
            return None
        return max(totals, key=lambda p: totals[p])

    @property
    def bottleneck_stage(self) -> int | None:
        """The stage the dominant phase points at (None when stage-less)."""
        phase = self.bottleneck_phase
        if phase is None or not self.stages:
            return None
        if phase in ("service", "worker_queue"):
            key = phase
        elif phase == "encode":
            key = "encode"
        elif phase in ("wire_out", "wire_back"):
            key = "wire"
        else:
            return None  # coord_queue / reorder_hold are cross-stage
        return max(self.stages, key=lambda s: getattr(self.stages[s], key))

    @property
    def verdict(self) -> str:
        phase = self.bottleneck_phase
        if phase is None:
            return "no completed items profiled"
        label = _VERDICT_LABEL.get(phase, phase)
        totals = self.phase_totals
        share = totals[phase] / max(sum(totals.values()), 1e-12)
        stage = self.bottleneck_stage
        where = ""
        if stage is not None:
            agg = self.stages[stage]
            name = f" ({agg.name!r})" if agg.name else ""
            where = f" at stage {stage}{name}"
        return f"{label}{where} — {share:.0%} of attributed time"

    def agreement(self) -> str:
        """Does the adaptation policy's last action target the same stage?"""
        stage = self.bottleneck_stage
        phase = self.bottleneck_phase
        if not self.decisions:
            return "no adaptation decisions in journal"
        if stage is None or phase not in ("service", "worker_queue"):
            return "verdict is not replica-shaped; no comparison"
        _, before, after, reason = self.decisions[-1]
        try:
            grew = [i for i in range(len(after)) if after[i] > before[i]]
        except (TypeError, IndexError):
            return f"last adapt.act unparseable ({reason!r})"
        if stage in grew:
            return f"agrees: last adapt.act grew stage {stage} ({reason!r})"
        if grew:
            return (
                f"disagrees: critical path blames stage {stage}, "
                f"last adapt.act grew {grew} ({reason!r})"
            )
        return f"last adapt.act grew nothing ({reason!r})"

    def to_dict(self) -> dict:
        """JSON-ready summary (items collapsed to aggregates)."""
        totals = self.phase_totals
        return {
            "backend": self.backend,
            "items": len(self.items),
            "phase_totals_s": {p: round(v, 6) for p, v in totals.items()},
            "admit_wait_total_s": round(self.admit_wait_total, 6),
            "mean_coverage": round(self.mean_coverage, 4) if self.items else None,
            "min_coverage": round(self.min_coverage, 4) if self.items else None,
            "verdict": self.verdict,
            "bottleneck_phase": self.bottleneck_phase,
            "bottleneck_stage": self.bottleneck_stage,
            "agreement": self.agreement(),
            "stages": {
                s: {
                    "name": a.name,
                    "items": a.items,
                    "service_s": round(a.service, 6),
                    "worker_queue_s": round(a.worker_queue, 6),
                    "wire_s": round(a.wire, 6),
                    "encode_s": round(a.encode, 6),
                }
                for s, a in sorted(self.stages.items())
            },
            "clocks": {
                str(w): {k: info.get(k) for k in ("offset", "drift", "err", "n")}
                for w, info in sorted(self.clocks.items())
            },
        }


# --------------------------------------------------------------- per-item core
def _profile_span(span: Span) -> ItemProfile | None:
    """Tile one completed span's latency into phases (None if incomplete)."""
    sub = span.first("item.submit")
    done = span.first("item.complete")
    if sub is None or done is None:
        return None
    latency = max(0.0, done.time - sub.time)
    phases: dict[str, float] = defaultdict(float)
    enc_by_stage: dict[int, float] = defaultdict(float)
    for e in span.events:
        if e.kind == "frame.encode" and "seconds" in e.fields:
            enc_by_stage[e.fields.get("stage", 0)] += e.fields["seconds"]
    hops = sorted(
        (e for e in span.events if e.kind == "span.phases"), key=lambda e: e.time
    )
    cursor = sub.time
    if hops:
        # Distributed: each hop carries its own decomposition; the gaps
        # between submit, hop windows and completion are coordinator
        # residence (minus any measured encode inside the gap).
        for hop in hops:
            f = hop.fields
            known = (
                f.get("wire_out", 0.0)
                + f.get("worker_queue", 0.0)
                + f.get("service", 0.0)
                + f.get("encode", 0.0)
                + f.get("wire_back", 0.0)
            )
            start = hop.time - known  # ≈ when the hop's task left the feeder
            gap = max(0.0, start - cursor)
            enc = min(enc_by_stage.pop(f.get("stage", 0), 0.0), gap)
            phases["encode"] += enc + f.get("encode", 0.0)
            phases["coord_queue"] += gap - enc
            phases["wire_out"] += f.get("wire_out", 0.0)
            # A batched hop's service covers N items: only 1/N of it is
            # this item's own work; the rest is wall time the item spent
            # waiting on its batchmates, which is queue-shaped.
            n = max(int(f.get("items", 1)), 1)
            svc = f.get("service", 0.0)
            phases["service"] += svc / n
            phases["worker_queue"] += f.get("worker_queue", 0.0) + (svc - svc / n)
            phases["wire_back"] += f.get("wire_back", 0.0)
            cursor = max(cursor, hop.time)
    else:
        # In-process executors: stage.service events mark each service's
        # end; everything between them is (coarse) coordinator residence.
        for e in sorted(
            (e for e in span.events if e.kind == "stage.service"),
            key=lambda e: e.time,
        ):
            sec = e.fields.get("seconds", 0.0)
            start = e.time - sec
            phases["coord_queue"] += max(0.0, start - cursor)
            # Batch-covering records (items=N, seconds = batch total):
            # the item's own service is seconds/N, the remainder is
            # in-batch wait on batchmates (queue-shaped) — coverage stays
            # complete without N-counting service across the batch.
            n = max(int(e.fields.get("items", 1)), 1)
            phases["service"] += sec / n
            if n > 1:
                phases["worker_queue"] += sec - sec / n
            cursor = max(cursor, e.time)
        for sec in enc_by_stage.values():
            enc = min(sec, phases["coord_queue"])
            phases["encode"] += enc
            phases["coord_queue"] -= enc
    phases["reorder_hold"] = max(0.0, done.time - cursor)
    return ItemProfile(
        stream=span.stream,
        seq=span.seq,
        latency=latency,
        admit_wait=sub.fields.get("wait", 0.0),
        phases=dict(phases),
        redispatched=span.redispatched,
    )


def _fold_stage_aggregates(report: ProfileReport, span: Span) -> None:
    for e in span.events:
        f = e.fields
        stage = f.get("stage")
        if stage is None:
            continue
        agg = report.stages.setdefault(int(stage), StageAggregate(int(stage)))
        # Batch-covering events are attached to all N member spans with
        # batch-total durations: fold 1/N per span so the aggregate is the
        # amortised per-item cost and sums stay equal to wall time.
        n = max(int(f.get("items", 1)), 1)
        if e.kind == "span.phases":
            agg.items += 1
            agg.service += f.get("service", 0.0) / n
            agg.worker_queue += f.get("worker_queue", 0.0) / n
            agg.wire += (f.get("wire_out", 0.0) + f.get("wire_back", 0.0)) / n
            agg.encode += f.get("encode", 0.0) / n
        elif e.kind == "stage.service":
            # Only when no hop decomposition exists for this stage — the
            # distributed router emits both, and span.phases is richer.
            if span.first("span.phases") is None:
                agg.items += 1
                agg.service += f.get("seconds", 0.0) / n
        elif e.kind == "frame.encode" and "seconds" in f:
            agg.encode += f["seconds"] / n


# ------------------------------------------------------------------- frontends
def profile_spans(spans, *, backend: str = "?") -> ProfileReport:
    """Profile a list of :class:`~repro.obs.spans.Span` objects."""
    report = ProfileReport(backend=backend)
    for span in spans:
        item = _profile_span(span)
        if item is None:
            continue
        report.items.append(item)
        _fold_stage_aggregates(report, span)
    return report


def profile_journal(path: str | os.PathLike) -> ProfileReport:
    """Profile a JSONL journal written by :class:`~repro.obs.JsonlJournal`."""
    from repro.obs.events import Event
    from repro.obs.journal import read_journal
    from repro.obs.spans import SpanCollector

    collector = SpanCollector()
    report = ProfileReport()
    stage_names: list[str] = []
    for rec in read_journal(path):
        kind = rec.get("kind", "")
        if kind == "session.open":
            report.backend = rec.get("backend", report.backend)
            stage_names = list(rec.get("stages", []))
        elif kind == "adapt.act":
            report.decisions.append(
                (
                    rec.get("t", 0.0),
                    rec.get("before", []),
                    rec.get("after", []),
                    str(rec.get("reason", rec.get("msg", ""))),
                )
            )
        elif kind == "clock.sync":
            report.clocks[rec.get("worker", -1)] = {
                k: rec.get(k) for k in ("offset", "drift", "err", "n")
            }
        if kind in SpanCollector.KINDS:
            fields = {
                (k[2:] if k.startswith("f_") else k): v
                for k, v in rec.items()
                if k not in ("t", "wall", "kind", "msg")
            }
            collector(Event(time=rec.get("t", 0.0), kind=kind, fields=fields))
    for span in collector.spans():
        item = _profile_span(span)
        if item is None:
            continue
        report.items.append(item)
        _fold_stage_aggregates(report, span)
    for s, agg in report.stages.items():
        if s < len(stage_names):
            agg.name = stage_names[s]
    return report


# --------------------------------------------------------------------- report
def render_report(report: ProfileReport, *, slowest: int = 0) -> str:
    """The human-readable profile report (one string, no ANSI)."""
    out = [
        f"critical-path profile  backend={report.backend}  "
        f"items={len(report.items)}"
    ]
    if not report.items:
        out.append("(no completed items in the journal — nothing to attribute)")
        return "\n".join(out)
    totals = report.phase_totals
    grand = max(sum(totals.values()), 1e-12)
    n = len(report.items)
    out.append("")
    out.append(f"{'phase':<14} {'mean/item':>12} {'total':>12} {'share':>7}")
    for p in PHASES:
        v = totals.get(p, 0.0)
        out.append(
            f"{p:<14} {v / n * 1e3:>10.3f}ms {v * 1e3:>10.1f}ms {v / grand:>6.1%}"
        )
    if report.admit_wait_total:
        out.append(
            f"{'admit_wait':<14} {report.admit_wait_total / n * 1e3:>10.3f}ms "
            f"{report.admit_wait_total * 1e3:>10.1f}ms (before span; not tiled)"
        )
    out.append("")
    out.append(
        f"coverage: mean {report.mean_coverage:.1%}, "
        f"min {report.min_coverage:.1%} of per-item latency attributed"
    )
    if report.stages:
        out.append("")
        out.append(
            f"{'stage':<24} {'hops':>6} {'service':>10} {'wk queue':>10} "
            f"{'wire':>10} {'encode':>10}"
        )
        for s in sorted(report.stages):
            a = report.stages[s]
            label = f"{s}" + (f" ({a.name})" if a.name else "")
            out.append(
                f"{label[:24]:<24} {a.items:>6} {a.service * 1e3:>8.1f}ms "
                f"{a.worker_queue * 1e3:>8.1f}ms {a.wire * 1e3:>8.1f}ms "
                f"{a.encode * 1e3:>8.1f}ms"
            )
    out.append("")
    out.append(f"verdict: {report.verdict}")
    out.append(f"adaptation: {report.agreement()}")
    if report.clocks:
        out.append("")
        out.append("worker clock fits (offset ± err, drift, samples):")
        for w in sorted(report.clocks):
            c = report.clocks[w]
            off = c.get("offset")
            err = c.get("err")
            out.append(
                f"  worker {w}: "
                f"{(off or 0.0) * 1e3:+.3f}ms ± {(err or 0.0) * 1e3:.3f}ms, "
                f"drift {c.get('drift') or 0.0:+.2e}, n={c.get('n') or 0}"
            )
    redis = sum(1 for i in report.items if i.redispatched)
    if redis:
        out.append(f"note: {redis} item(s) were re-dispatched after a worker death")
    if slowest:
        out.append("")
        out.append(f"slowest {slowest} item(s):")
        for item in sorted(report.items, key=lambda i: -i.latency)[:slowest]:
            top = sorted(item.phases.items(), key=lambda kv: -kv[1])[:3]
            tops = ", ".join(f"{p}={v * 1e3:.2f}ms" for p, v in top if v > 0)
            out.append(
                f"  ({item.stream},{item.seq}) {item.latency * 1e3:.2f}ms "
                f"[{item.coverage:.0%} attributed] {tops}"
            )
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Attribute per-item pipeline latency to named phases.",
    )
    parser.add_argument("journal", help="JSONL journal path a session wrote")
    parser.add_argument(
        "--slowest", type=int, default=0, metavar="N",
        help="also list the N slowest items with their top phases",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable summary"
    )
    args = parser.parse_args(argv)
    report = profile_journal(args.journal)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(render_report(report, slowest=args.slowest))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
