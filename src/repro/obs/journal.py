"""JSONL event journal: the durable, grep-able form of the event stream.

One line per event: ``{"t": <session seconds>, "wall": <epoch seconds>,
"kind": ..., "msg": ..., <flattened fields>}``.  Values that are not JSON
types are ``repr``-ed rather than dropped, so a journal line never fails to
serialise.  Rotation is size-based (``journal.jsonl`` → ``journal.jsonl.1``
→ …), bounded by ``max_files``.

The journal is a plain bus subscriber, and it is safe to attach one
journal to several buses (the coordinator's backend bus and the session
bus share one file).  By default the emitting thread only builds the
record and enqueues it — a background writer thread does the JSON
serialisation, rotation and file I/O, so routers and submitters never pay
for disk inside the streaming hot path (with full distributed tracing a
session writes tens of lines per item; serialised inline they are the
single largest telemetry cost).  ``inline=True`` restores write-on-emit
for callers that need read-your-writes without a :meth:`flush`.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from threading import Condition, Lock, Thread
from typing import Any, Iterator

from repro.obs.events import Event

__all__ = ["JsonlJournal", "read_journal"]

#: Keys the journal itself owns; event fields with these names are prefixed.
_RESERVED = ("t", "wall", "kind", "msg")


class JsonlJournal:
    """Appends events to a JSONL file with size-based rotation."""

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        rotate_bytes: int = 32 * 1024 * 1024,
        max_files: int = 3,
        inline: bool = False,
    ) -> None:
        if rotate_bytes <= 0:
            raise ValueError(f"rotate_bytes must be > 0, got {rotate_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1, got {max_files}")
        self.path = Path(path)
        self.rotate_bytes = rotate_bytes
        self.max_files = max_files
        # Two locks: the queue condition is all emitters ever touch; the
        # io lock covers the file handle and rotation, held only by the
        # writer thread (or by inline writes / lifecycle calls), so file
        # I/O never blocks an emitting router or submitter.
        self._io = Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._nbytes = self._fh.tell()
        self._closed = False
        self._inline = inline
        self._writing = False
        self._queue: deque[tuple[float, Event]] = deque()
        self._cv = Condition(Lock())
        self._writer: Thread | None = None
        if not inline:
            self._writer = Thread(
                target=self._drain_loop, name="jsonl-journal", daemon=True
            )
            self._writer.start()

    # ------------------------------------------------------------------ write
    def __call__(self, ev: Event) -> None:
        if self._writer is not None:
            # Hot path: hand the event to the writer thread.  Emitters in
            # routers/submitters pay one lock, an append, and a wall-clock
            # stamp; the record build, JSON dump, rotation check and file
            # write all happen off-thread.  Events are immutable once
            # emitted, so serialising them later is safe.
            with self._cv:
                if not self._closed:
                    self._queue.append((time.time(), ev))
                    if len(self._queue) == 1:
                        self._cv.notify()  # writer only waits on empty
            return
        line = json.dumps(self._record(time.time(), ev), default=repr,
                          separators=(",", ":")) + "\n"
        with self._io:
            if self._closed:
                return
            self._write_line(line)

    @staticmethod
    def _record(wall: float, ev: Event) -> dict[str, Any]:
        record: dict[str, Any] = {"t": round(ev.time, 6), "wall": wall, "kind": ev.kind}
        if ev.message:
            record["msg"] = ev.message
        for k, v in ev.fields.items():
            record[f"f_{k}" if k in _RESERVED else k] = v
        return record

    def _write_line(self, line: str) -> None:
        """Append one serialised line (caller holds ``self._io``)."""
        if self._nbytes + len(line) > self.rotate_bytes and self._nbytes > 0:
            self._rotate()
        self._fh.write(line)
        self._nbytes += len(line)

    #: Lines serialised per GIL yield in the writer thread.  A deep queue
    #: must not turn into one long CPU burst: the interpreter's switch
    #: interval (5ms) would let the burst convoy the latency-critical
    #: router/submit threads that are trying to enqueue.
    _CHUNK = 32

    def _drain_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                batch = list(self._queue)
                self._queue.clear()
                if not batch:  # closed and drained: the final flush is done
                    self._writing = False
                    self._cv.notify_all()
                    return
                self._writing = True
            for start in range(0, len(batch), self._CHUNK):
                lines = [
                    json.dumps(self._record(wall, ev), default=repr,
                               separators=(",", ":")) + "\n"
                    for wall, ev in batch[start:start + self._CHUNK]
                ]
                with self._io:
                    for line in lines:
                        self._write_line(line)
                time.sleep(0)  # yield: emitters outrank the historian
            with self._cv:
                self._writing = False
                if not self._queue:
                    self._cv.notify_all()  # wake any flush() waiters

    def _rotate(self) -> None:
        self._fh.close()
        oldest = self.path.with_name(f"{self.path.name}.{self.max_files - 1}")
        oldest.unlink(missing_ok=True)
        for i in range(self.max_files - 2, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                src.rename(self.path.with_name(f"{self.path.name}.{i + 1}"))
        if self.max_files > 1:
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        else:
            self.path.unlink(missing_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._nbytes = 0

    # -------------------------------------------------------------- lifecycle
    def flush(self) -> None:
        """Block until every enqueued record is on disk (then flush the file)."""
        with self._cv:
            while (self._queue or self._writing) and not self._closed:
                self._cv.wait(timeout=0.1)
        with self._io:
            if not self._closed:
                self._fh.flush()

    def close(self) -> None:
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        if self._writer is not None:
            self._writer.join(timeout=10.0)
        with self._io:
            self._fh.close()

    @property
    def closed(self) -> bool:
        return self._closed


def read_journal(path: str | os.PathLike) -> Iterator[dict[str, Any]]:
    """Yield journal records oldest-first, including rotated siblings."""
    path = Path(path)
    candidates = sorted(
        (p for p in path.parent.glob(f"{path.name}.*") if p.suffix[1:].isdigit()),
        key=lambda p: int(p.suffix[1:]),
        reverse=True,
    )
    if path.exists():
        candidates.append(path)
    for p in candidates:
        with open(p, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)
