"""JSONL event journal: the durable, grep-able form of the event stream.

One line per event: ``{"t": <session seconds>, "wall": <epoch seconds>,
"kind": ..., "msg": ..., <flattened fields>}``.  Values that are not JSON
types are ``repr``-ed rather than dropped, so a journal line never fails to
serialise.  Rotation is size-based (``journal.jsonl`` → ``journal.jsonl.1``
→ …), bounded by ``max_files``.

The journal is a plain bus subscriber — writes happen on the emitting
thread, which is exactly why sessions emit outside their condition
variables — and it is safe to attach one journal to several buses (the
coordinator's backend bus and the session bus share one file).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from threading import Lock
from typing import Any, Iterator

from repro.obs.events import Event

__all__ = ["JsonlJournal", "read_journal"]

#: Keys the journal itself owns; event fields with these names are prefixed.
_RESERVED = ("t", "wall", "kind", "msg")


class JsonlJournal:
    """Appends events to a JSONL file with size-based rotation."""

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        rotate_bytes: int = 32 * 1024 * 1024,
        max_files: int = 3,
    ) -> None:
        if rotate_bytes <= 0:
            raise ValueError(f"rotate_bytes must be > 0, got {rotate_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1, got {max_files}")
        self.path = Path(path)
        self.rotate_bytes = rotate_bytes
        self.max_files = max_files
        self._lock = Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._nbytes = self._fh.tell()
        self._closed = False

    # ------------------------------------------------------------------ write
    def __call__(self, ev: Event) -> None:
        record: dict[str, Any] = {"t": round(ev.time, 6), "wall": time.time(), "kind": ev.kind}
        if ev.message:
            record["msg"] = ev.message
        for k, v in ev.fields.items():
            record[f"f_{k}" if k in _RESERVED else k] = v
        line = json.dumps(record, default=repr, separators=(",", ":")) + "\n"
        with self._lock:
            if self._closed:
                return
            if self._nbytes + len(line) > self.rotate_bytes and self._nbytes > 0:
                self._rotate()
            self._fh.write(line)
            self._nbytes += len(line)

    def _rotate(self) -> None:
        self._fh.close()
        oldest = self.path.with_name(f"{self.path.name}.{self.max_files - 1}")
        oldest.unlink(missing_ok=True)
        for i in range(self.max_files - 2, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                src.rename(self.path.with_name(f"{self.path.name}.{i + 1}"))
        if self.max_files > 1:
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        else:
            self.path.unlink(missing_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._nbytes = 0

    # -------------------------------------------------------------- lifecycle
    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._fh.close()

    @property
    def closed(self) -> bool:
        return self._closed


def read_journal(path: str | os.PathLike) -> Iterator[dict[str, Any]]:
    """Yield journal records oldest-first, including rotated siblings."""
    path = Path(path)
    candidates = sorted(
        (p for p in path.parent.glob(f"{path.name}.*") if p.suffix[1:].isdigit()),
        key=lambda p: int(p.suffix[1:]),
        reverse=True,
    )
    if path.exists():
        candidates.append(path)
    for p in candidates:
        with open(p, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)
