"""Cross-host clock mapping: fit a remote clock's offset and drift.

The distributed backend never compares clocks across hosts directly — the
wire protocol only ever echoes a timestamp back to the machine that
produced it.  But merging *worker-side* trace events onto the session
timeline needs exactly that comparison, so this module fits it from the
measurements the protocol already makes: every accepted result carries the
NTP-style quadruple

* ``t0`` — coordinator clock when the task was sent (``t_sent``, echoed),
* ``t1`` — worker clock when the task arrived,
* ``t2`` — worker clock when the result was handed to the socket,
* ``t3`` — coordinator clock when the result was received,

from which one sample gives ``offset = ((t1 - t0) + (t2 - t3)) / 2``
(remote minus local) with an error bounded by ``rtt / 2`` where
``rtt = (t3 - t0) - (t2 - t1)`` — the classic NTP bound: the true offset
lies within ±rtt/2 of the sample regardless of how the wire delay splits
between the directions.

:class:`ClockSync` keeps a sliding window of such samples and fits
``offset(t_remote) = a + b * t_remote`` — a constant offset plus a linear
drift term — by least squares weighted by ``1 / (err + eps)^2``, so
low-rtt samples (tight bounds) dominate.  The drift term only activates
once the window spans enough time to make the slope identifiable
(:data:`MIN_DRIFT_SPAN` seconds and :data:`MIN_DRIFT_SAMPLES` samples);
before that the best-bounded sample wins, which is exact for the common
same-host case where both clocks are one CLOCK_MONOTONIC.

``to_local(t_remote)`` maps a remote timestamp into the local clock;
:meth:`error_bound` reports the tightest rtt/2 seen in the window — the
honest "±" on every mapped timestamp.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from threading import Lock

__all__ = ["ClockSync", "ClockFit", "MIN_DRIFT_SAMPLES", "MIN_DRIFT_SPAN"]

#: Samples required before the drift (slope) term is fitted at all.
MIN_DRIFT_SAMPLES = 8
#: Remote-clock span (seconds) the window must cover before drift is fitted;
#: below this the slope is not identifiable against rtt noise.
MIN_DRIFT_SPAN = 1.0
#: Floor added to per-sample error bounds before weighting (a same-host
#: loopback rtt can be sub-microsecond; weights must stay finite).
_ERR_EPS = 1e-7


@dataclass(frozen=True)
class ClockFit:
    """One fitted remote-clock model: ``offset(t) = a + b * t``."""

    a: float  #: constant offset (remote minus local), seconds
    b: float  #: drift, seconds of offset per remote second
    err: float  #: tightest rtt/2 bound in the window (inf before data)
    n: int  #: samples behind the fit

    def offset_at(self, t_remote: float) -> float:
        return self.a + self.b * t_remote

    def to_local(self, t_remote: float) -> float:
        """Map a remote timestamp onto the local clock."""
        return t_remote - self.offset_at(t_remote)


_NO_FIT = ClockFit(0.0, 0.0, float("inf"), 0)


class ClockSync:
    """Sliding-window offset+drift estimator for one remote clock.

    Thread-safe: ``observe`` is called from router threads, ``to_local``
    from whoever maps timestamps.  The fit is recomputed lazily — at most
    once per new sample — and reads are lock-free on the last fit.
    """

    def __init__(self, window: int = 256) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        # (t_remote_mid, offset_sample, err_bound)
        self._samples: deque[tuple[float, float, float]] = deque(maxlen=window)
        self._lock = Lock()
        self._fit: ClockFit = _NO_FIT
        self._dirty = False

    # ------------------------------------------------------------- sampling
    def observe(self, t0: float, t1: float, t2: float, t3: float) -> float:
        """Fold one request/response quadruple in; returns the rtt.

        ``t0``/``t3`` are local (send/receive), ``t1``/``t2`` remote
        (receive/send).  Samples with a non-positive rtt (clock steps,
        reordered reads) are dropped rather than poisoning the fit.
        """
        rtt = (t3 - t0) - (t2 - t1)
        if rtt < 0 or t3 < t0 or t2 < t1:
            return rtt
        offset = ((t1 - t0) + (t2 - t3)) / 2.0
        with self._lock:
            self._samples.append(((t1 + t2) / 2.0, offset, rtt / 2.0))
            self._dirty = True
        return rtt

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    # ---------------------------------------------------------------- fitting
    def fit(self) -> ClockFit:
        """The current offset+drift model (identity fit before any sample)."""
        with self._lock:
            if not self._dirty:
                return self._fit
            samples = list(self._samples)
            self._dirty = False
            self._fit = self._refit(samples)
            return self._fit

    @staticmethod
    def _refit(samples: list[tuple[float, float, float]]) -> ClockFit:
        if not samples:
            return _NO_FIT
        best_err = min(err for _, _, err in samples)
        t_best, off_best, _ = min(samples, key=lambda s: s[2])
        span = max(t for t, _, _ in samples) - min(t for t, _, _ in samples)
        if len(samples) < MIN_DRIFT_SAMPLES or span < MIN_DRIFT_SPAN:
            return ClockFit(off_best, 0.0, best_err, len(samples))
        # Weighted least squares of offset against remote time.  Center the
        # time axis first: raw perf-counter values are huge, and b * t must
        # not lose the offset's microseconds to float cancellation.
        t_ref = samples[0][0]
        sw = swx = swy = swxx = swxy = 0.0
        for t, off, err in samples:
            w = 1.0 / (err + _ERR_EPS) ** 2
            x = t - t_ref
            sw += w
            swx += w * x
            swy += w * off
            swxx += w * x * x
            swxy += w * x * off
        denom = sw * swxx - swx * swx
        if denom <= 0:
            return ClockFit(off_best, 0.0, best_err, len(samples))
        b = (sw * swxy - swx * swy) / denom
        a_centered = (swy - b * swx) / sw
        # Un-center: offset(t) = a_centered + b * (t - t_ref)
        return ClockFit(a_centered - b * t_ref, b, best_err, len(samples))

    # ---------------------------------------------------------------- mapping
    def to_local(self, t_remote: float) -> float:
        """Map a remote timestamp onto the local clock (identity before data)."""
        return self.fit().to_local(t_remote)

    def offset(self, t_remote: float | None = None) -> float:
        """The fitted offset (remote minus local), at ``t_remote`` if given."""
        f = self.fit()
        if t_remote is None:
            # Evaluate at the newest sample so drift is reflected.
            t_remote = self._samples[-1][0] if self._samples else 0.0
        return f.offset_at(t_remote)

    def error_bound(self) -> float:
        """Tightest rtt/2 bound in the window (inf before any sample)."""
        return self.fit().err
