"""Metrics registry: counters, gauges and log2 histograms over labels.

A thin, dependency-free metrics layer in the Prometheus data model:
instruments are registered by name, each name owning one labelled family
(``("stage_items_total", {"stage": "1"})``).  Histograms reuse the repo's
log2 bucketing convention (``monitor/instrument.py`` payload histograms:
bucket ``b`` covers ``[2^(b-1), 2^b)`` of the scaled value) and carry an
:class:`~repro.util.stats.OnlineStats` for exact mean/std alongside.

:class:`MetricsRecorder` subscribes a registry to an
:class:`~repro.obs.events.EventBus` and folds the schema's events into
instrument updates — the same hooks :class:`PipelineInstrumentation` sits
on, but retained for export instead of windowed for the policy.
"""

from __future__ import annotations

import math
from threading import Lock
from typing import Iterator

from repro.obs.events import Event, EventBus
from repro.util.stats import OnlineStats

__all__ = [
    "Counter",
    "Gauge",
    "Log2Histogram",
    "MetricsRegistry",
    "MetricsRecorder",
]


class Counter:
    """Monotone counter (float increments allowed, e.g. byte totals)."""

    kind = "counter"

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value (replica counts, backlog, last elapsed)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Log2Histogram:
    """Log2-bucketed histogram with exact online moments.

    ``observe(x)`` buckets ``int(x * scale)`` by bit length — the exact
    convention of the payload histograms in ``monitor/instrument.py`` —
    so service times recorded with ``scale=1e6`` land in µs-resolution
    power-of-two buckets.  Bucket upper bounds are ``2**b / scale``.
    """

    kind = "histogram"

    def __init__(self, scale: float = 1e6) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.scale = scale
        self.buckets: dict[int, int] = {}
        self.stats = OnlineStats()
        self._lock = Lock()

    def observe(self, x: float) -> None:
        b = max(0, int(float(x) * self.scale)).bit_length()
        with self._lock:
            self.buckets[b] = self.buckets.get(b, 0) + 1
            self.stats.push(x)

    @property
    def count(self) -> int:
        return self.stats.n

    @property
    def sum(self) -> float:
        return self.stats.mean * self.stats.n if self.stats.n else 0.0

    def bounds(self) -> list[tuple[float, int]]:
        """Sorted ``(upper_bound, cumulative_count)`` pairs (Prometheus-style)."""
        out: list[tuple[float, int]] = []
        cum = 0
        with self._lock:
            for b in sorted(self.buckets):
                cum += self.buckets[b]
                out.append(((2.0**b) / self.scale, cum))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating within its bucket.

        Bucket ``b`` covers ``(2^(b-1), 2^b] / scale`` (``b == 0`` covers
        down to zero); the estimate walks the cumulative counts to the
        bucket holding the ``q``-th observation and interpolates linearly
        inside it, so the error is bounded by the bucket's width — at most
        a factor of 2, the price of log2 bucketing.  NaN before any
        observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            n = self.stats.n
            if n == 0:
                return math.nan
            target = q * n
            cum = 0
            last_b = 0
            for b in sorted(self.buckets):
                last_b = b
                count = self.buckets[b]
                if cum + count >= target:
                    lo = (2.0 ** (b - 1)) / self.scale if b > 0 else 0.0
                    hi = (2.0**b) / self.scale
                    frac = (target - cum) / count
                    return lo + frac * (hi - lo)
                cum += count
            return (2.0**last_b) / self.scale


Instrument = Counter | Gauge | Log2Histogram


class MetricsRegistry:
    """Get-or-create registry of labelled instruments.

    One family per name; requesting an existing ``(name, labels)`` pair
    returns the same instrument, so emit sites never hold references and
    exporters see everything through :meth:`collect`.
    """

    def __init__(self) -> None:
        self._families: dict[str, dict[tuple[tuple[str, str], ...], Instrument]] = {}
        self._kinds: dict[str, str] = {}
        self._lock = Lock()

    def _get(self, name: str, labels: dict[str, str] | None, factory) -> Instrument:
        key = tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))
        with self._lock:
            family = self._families.setdefault(name, {})
            inst = family.get(key)
            if inst is None:
                inst = factory()
                if name in self._kinds and self._kinds[name] != inst.kind:
                    raise ValueError(
                        f"metric {name!r} is a {self._kinds[name]}, not {inst.kind}"
                    )
                self._kinds[name] = inst.kind
                family[key] = inst
            return inst

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        inst = self._get(name, labels, Counter)
        assert isinstance(inst, Counter), f"{name} is {inst.kind}, not counter"
        return inst

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        inst = self._get(name, labels, Gauge)
        assert isinstance(inst, Gauge), f"{name} is {inst.kind}, not gauge"
        return inst

    def histogram(
        self, name: str, labels: dict[str, str] | None = None, *, scale: float = 1e6
    ) -> Log2Histogram:
        inst = self._get(name, labels, lambda: Log2Histogram(scale=scale))
        assert isinstance(inst, Log2Histogram), f"{name} is {inst.kind}, not histogram"
        return inst

    def collect(self) -> Iterator[tuple[str, dict[str, str], Instrument]]:
        """Yield every ``(name, labels, instrument)`` sorted by name/labels."""
        with self._lock:
            families = {n: dict(f) for n, f in self._families.items()}
        for name in sorted(families):
            for key in sorted(families[name]):
                yield name, dict(key), families[name][key]


class MetricsRecorder:
    """Folds bus events into a :class:`MetricsRegistry`.

    Label cardinality is deliberately bounded: per-stage and per-worker
    labels only — never per-item — so a long session cannot grow the
    registry without bound.
    """

    #: The schema kinds this recorder consumes (its bus subscription filter).
    KINDS = (
        "stream.begin",
        "stream.drain",
        "session.error",
        "item.submit",
        "item.complete",
        "stage.service",
        "replica.add",
        "replica.remove",
        "replica.move",
        "adapt.decide",
        "adapt.act",
        "adapt.rollback",
        "worker.join",
        "worker.death",
        "worker.redispatch",
        "frame.encode",
        "frame.release",
        "span.phases",
        "clock.sync",
    )

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        # (stream, seq) -> submit session-time, for end-to-end latency.
        # Bounded by the admission window (completes pop their entry); a
        # hard cap guards against journals with missing completions.
        self._pending: dict[tuple[int, int], float] = {}
        self._pending_lock = Lock()

    _MAX_PENDING = 100_000

    def attach(self, bus: EventBus) -> "MetricsRecorder":
        bus.subscribe(self, kinds=self.KINDS)
        return self

    def __call__(self, ev: Event) -> None:
        f = ev.fields
        kind = ev.kind
        reg = self.registry
        if kind == "stage.service":
            labels = {"stage": str(f.get("stage", "?"))}
            reg.counter("stage_items_total", labels).inc()
            reg.histogram("stage_service_seconds", labels).observe(f.get("seconds", 0.0))
            if "queue" in f:
                reg.gauge("stage_queue_length", labels).set(f["queue"])
            worker = f.get("worker")
            if worker is not None:
                reg.counter("worker_items_total", {"worker": str(worker)}).inc()
        elif kind == "item.submit":
            reg.counter("items_submitted_total").inc()
            if "wait" in f:
                reg.histogram("admit_wait_seconds").observe(f["wait"])
            if "stream" in f and "seq" in f:
                with self._pending_lock:
                    if len(self._pending) < self._MAX_PENDING:
                        self._pending[(f["stream"], f["seq"])] = ev.time
        elif kind == "item.complete":
            reg.counter("items_completed_total").inc()
            if "stream" in f and "seq" in f:
                with self._pending_lock:
                    t0 = self._pending.pop((f["stream"], f["seq"]), None)
                if t0 is not None and ev.time >= t0:
                    reg.histogram("item_latency_seconds").observe(ev.time - t0)
        elif kind == "stream.begin":
            reg.counter("streams_opened_total").inc()
        elif kind == "stream.drain":
            reg.counter("streams_drained_total").inc()
            reg.gauge("stream_last_items").set(f.get("items", 0))
            reg.gauge("stream_last_elapsed_seconds").set(f.get("elapsed", 0.0))
        elif kind in ("replica.add", "replica.remove", "replica.move"):
            stage = str(f.get("stage", "?"))
            if "n" in f:
                reg.gauge("stage_replicas", {"stage": stage}).set(f["n"])
            reg.counter("replica_events_total", {"kind": kind.split(".")[1]}).inc()
        elif kind.startswith("adapt."):
            reg.counter("adapt_events_total", {"kind": kind.split(".")[1]}).inc()
        elif kind.startswith("worker."):
            reg.counter("worker_events_total", {"kind": kind.split(".")[1]}).inc()
        elif kind == "frame.encode":
            reg.counter("frames_encoded_total").inc()
            reg.counter("frame_bytes_encoded_total").inc(f.get("nbytes", 0))
        elif kind == "frame.release":
            reg.counter("frames_released_total").inc()
            reg.counter("frame_bytes_released_total").inc(f.get("nbytes", 0))
        elif kind == "span.phases":
            stage = str(f.get("stage", "?"))
            for phase in ("wire_out", "worker_queue", "service", "encode", "wire_back"):
                if phase in f:
                    reg.histogram(
                        "span_phase_seconds", {"stage": stage, "phase": phase}
                    ).observe(f[phase])
        elif kind == "clock.sync":
            worker = str(f.get("worker", "?"))
            reg.gauge("worker_clock_offset_seconds", {"worker": worker}).set(
                f.get("offset", 0.0)
            )
            reg.gauge("worker_clock_error_seconds", {"worker": worker}).set(
                f.get("err", 0.0)
            )
        elif kind == "session.error":
            reg.counter("session_errors_total").inc()
