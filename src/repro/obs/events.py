"""Structured runtime events: one typed schema for every execution layer.

The adaptation pattern is observe→decide→act, but until this module the
*observe* half was internal — instrumentation snapshots fed the policy and
vanished.  :class:`EventBus` is the session-wide fan-out point: sessions,
executors, the runtime adaptation loop and the distributed coordinator all
emit :class:`Event` records with kinds drawn from :data:`SCHEMA`, and
exporters (:mod:`repro.obs.journal`, :mod:`repro.obs.metrics`) subscribe.

The bus is **lock-cheap by construction**: ``emit`` on a bus with no
subscribers is a single attribute test, and with subscribers it iterates an
immutable tuple snapshot — no lock is ever taken on the emit path.  Hot
loops that would pay to *build* an event's fields guard with
:meth:`EventBus.wants` first.

Event times are in the emitting session's clock (:meth:`Session.now`,
seconds since open) unless a different ``clock`` was supplied — the
simulator forwards simulated seconds through the same shape.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Callable, Iterable

__all__ = ["Event", "EventBus", "NULL_BUS", "SCHEMA"]


#: The typed event schema: every kind the runtime emits, with the fields a
#: subscriber can rely on (beyond the always-present ``time``/``kind``).
SCHEMA: dict[str, str] = {
    # -- session / stream lifecycle (backend/base.py) ---------------------
    "session.open": "session opened: backend, stages, max_inflight, session_id",
    "session.close": "session closed: streams, items_total",
    "session.error": "executor error poisoned the session: error",
    "stream.begin": "a stream opened lazily at first submit: stream",
    "stream.drain": "a stream drained: stream, items, elapsed",
    # -- per-item span points (base session + executors) ------------------
    "item.submit": "item admitted (span+trace minted): stream, seq, gseq, trace[, wait]",
    "item.dispatch": "item sent to a remote replica: stage, seq, worker",
    "item.complete": "item delivered in order: stream, seq",
    # -- micro-batch lifecycle (backend/base.py assembler/splitter; seq =
    #    the batch's own stream-scoped number, base = first item seq) ------
    "batch.assemble": "admitted items coalesced into a batch: stream, seq, base, items[, reason]",
    "batch.encode": "a whole batch encoded as one frame: stage, seq, base, items, nbytes[, seconds]",
    "batch.split": "batch split back into per-item results: stream, seq, base, items",
    # -- admission window retune (Little's-law auto max_inflight) ----------
    "session.window": "auto admission window retuned: window, arrival_rate, service_rate, wq",
    # -- stage service (monitor/instrument.py hook; a micro-batched record
    #    carries the batch-total seconds plus items=N, seq = first item) ---
    "stage.service": "items serviced: stage, seconds, speed[, items, seq, worker, queue]",
    # -- replica shape (executors + distributed placement) ----------------
    "replica.add": "replicas grew: stage, n[, worker, slot]",
    "replica.remove": "replicas shrank: stage, n[, worker, slot]",
    "replica.move": "replica migrated between workers: stage, src, dst",
    # -- adaptation loop (backend/runner.py, core controller) -------------
    "adapt.decide": "policy decided to act: reason, predicted_gain",
    "adapt.act": "mapping applied: before, after, reason",
    "adapt.rollback": "post-action validation regressed: reason",
    # -- distributed membership (coordinator) -----------------------------
    "worker.join": "worker registered: worker, name, cores",
    "worker.death": "worker died mid-run: worker, name, lost",
    "worker.redispatch": "lost in-flight item re-sent: stage, seq",
    # -- payload frames (transport boundary) ------------------------------
    "frame.encode": "payload encoded for the wire: stage, seq, nbytes[, seconds]",
    "frame.release": "payload frame decoded and released: stage, seq, nbytes",
    # -- worker-side trace points (distributed WorkerAgent; batched over
    #    the wire and re-emitted on the session bus at *mapped* session
    #    times via the per-worker clock fit in repro/obs/clock.py) --------
    "wk.dequeue": "item left the replica queue (service begins): stage, seq, worker, wait",
    "wk.service": "worker-side service completed: stage, seq, worker, seconds",
    "wk.encode": "result encoded on the worker: stage, seq, worker, seconds, nbytes",
    "wk.send": "result frame handed to the socket: stage, seq, worker",
    # -- cross-host clock mapping (coordinator-side fit per worker) --------
    "clock.sync": "per-worker clock fit updated: worker, offset, drift, err, n",
    # -- per-hop latency decomposition (coordinator router, one per
    #    accepted result; durations in seconds, at = receipt time; a
    #    batched hop carries items=N with seq = the first item's seq and
    #    durations covering the whole batch) -------------------------------
    "span.phases": (
        "one stage hop decomposed: stage, seq, worker, wire_out, "
        "worker_queue, service, encode, wire_back[, items]"
    ),
}


@dataclass(frozen=True)
class Event:
    """One structured record: timestamp, schema kind, message, payload.

    Field order is the historical ``TraceEvent`` order (``time, kind,
    message, fields``) so positional construction in older call sites and
    tests keeps working; ``category`` aliases ``kind`` for the same reason.
    """

    time: float
    kind: str
    message: str = ""
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def category(self) -> str:
        """Legacy alias for :attr:`kind` (the tracer's old field name)."""
        return self.kind

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:12.6f}] {self.kind:<12} {self.message}" + (
            f" ({extra})" if extra else ""
        )


class EventBus:
    """Fans structured events out to subscribers (see module docstring).

    ``subscribe(fn, kinds=...)`` filters delivery at the bus so exporters
    pay only for the kinds they asked for; ``emit`` with no subscribers is
    one branch.  Subscription changes swap an immutable tuple under a lock;
    emitters read it without locking (benign snapshot semantics).
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock
        self._subs: tuple[tuple[Callable[[Event], None], frozenset | None], ...] = ()
        self._sub_lock = Lock()
        self._warned_unclocked = False

    # ------------------------------------------------------------ subscribers
    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subs)

    def subscribe(
        self,
        fn: Callable[[Event], None],
        kinds: Iterable[str] | None = None,
    ) -> Callable[[Event], None]:
        """Deliver every subsequent event (or just ``kinds``) to ``fn``."""
        wanted = None if kinds is None else frozenset(kinds)
        if wanted is not None:
            unknown = wanted - SCHEMA.keys()
            if unknown:
                raise ValueError(f"unknown event kinds: {sorted(unknown)}")
        with self._sub_lock:
            self._subs = self._subs + ((fn, wanted),)
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        """Remove every subscription of ``fn`` (no-op when absent)."""
        with self._sub_lock:
            self._subs = tuple(s for s in self._subs if s[0] is not fn)

    def wants(self, kind: str) -> bool:
        """True when some subscriber would receive ``kind``.

        Hot paths that must *build* field payloads (per-item service
        records) guard on this before constructing kwargs.
        """
        for _, wanted in self._subs:
            if wanted is None or kind in wanted:
                return True
        return False

    # ----------------------------------------------------------------- emit
    def emit(self, kind: str, message: str = "", at: float | None = None, **fields: Any) -> None:
        """Publish one event (single branch when nobody subscribed).

        ``at`` overrides the bus clock (used when forwarding events stamped
        elsewhere, e.g. simulated time).  **Timestamp contract**: every
        delivered event carries a real timestamp — either ``at`` or the bus
        clock.  Forwarding an event without ``at`` on a clockless bus has no
        honest time to stamp; it falls back to 0.0 and warns once per bus,
        because a silent 0.0 corrupts every downstream timeline (spans,
        rates, the profiler's phase attribution).
        """
        subs = self._subs
        if not subs:
            return
        if at is None:
            if self._clock is not None:
                at = self._clock()
            else:
                if not self._warned_unclocked:
                    self._warned_unclocked = True
                    warnings.warn(
                        "EventBus has no clock and emit() got no at=; "
                        "stamping 0.0 — construct the bus with clock= or "
                        "pass at= when forwarding events",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                at = 0.0
        ev = Event(time=at, kind=kind, message=message, fields=fields)
        for fn, wanted in subs:
            if wanted is None or kind in wanted:
                fn(ev)


class _NullBus(EventBus):
    """The shared pre-session bus: emits vanish, subscriptions are refused.

    Backends expose ``.events`` from construction, but the per-session bus
    only exists once a session opens; handing out one inert module-level
    singleton before that keeps every emit site unconditional.  Subscribing
    here would silently observe nothing (and leak across backends), so it
    raises instead.
    """

    def subscribe(self, fn, kinds=None):
        raise RuntimeError(
            "cannot subscribe to the null event bus; open a session first "
            "and subscribe to session.events (or pass telemetry= at open)"
        )


NULL_BUS: EventBus = _NullBus()
