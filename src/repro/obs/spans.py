"""Per-item trace spans: one item's timeline across the whole stack.

A span is minted at ``submit()`` — its id is the item's
:class:`~repro.backend.base.Ticket` ``(stream, seq)`` — and every later
event that names the item (``item.dispatch``, ``stage.service``,
``frame.encode``/``frame.release``, ``item.complete``) is attached to it,
reconstructing the submit→queue→encode→wire→service→reorder→yield
timeline.  On the distributed backend the id already crosses the wire:
tasks and results carry ``(epoch, seq)`` (the epoch *is* the stream id)
plus echoed dispatch/service/wait timestamps, so no protocol change was
needed.

Sequence spaces differ per executor — the process and distributed
executors emit stream-scoped ``seq``, the thread and asyncio executors
emit the session-global ``gseq`` — so ``item.submit`` records *both* and
the collector resolves stage-level events through whichever space names a
live (submitted, not yet completed) item.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from threading import Lock

from repro.obs.events import Event, EventBus

__all__ = ["Span", "SpanCollector", "spans_from_journal"]


@dataclass
class Span:
    """One item's event timeline, keyed by its submit ticket."""

    stream: int
    seq: int
    events: list[Event] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return any(e.kind == "item.complete" for e in self.events)

    @property
    def trace_id(self) -> str | None:
        """The trace id minted at submit (``<session>:<stream>:<seq>``)."""
        sub = self.first("item.submit")
        if sub is None:
            return None
        return sub.fields.get("trace")

    @property
    def redispatched(self) -> bool:
        """True when a worker died holding this item and it was re-sent."""
        return any(e.kind == "worker.redispatch" for e in self.events)

    @property
    def status(self) -> str:
        """``complete`` | ``redispatched`` (re-sent, outcome pending) | ``open``.

        A span that never completes because its worker died is not left
        looking merely unfinished: the ``worker.redispatch`` event is part
        of the span, so its state is visibly "re-sent elsewhere" and the
        replacement attempt's ``item.dispatch``/``span.phases`` events land
        on this same span (see :meth:`dispatches`).
        """
        if self.complete:
            return "complete"
        if self.redispatched:
            return "redispatched"
        return "open"

    def dispatches(self, stage: int) -> list[Event]:
        """``item.dispatch`` events for ``stage``, oldest first.

        More than one entry means the item was re-dispatched (its first
        worker died); the last entry is the replacement attempt that the
        accepted result — if any — came from.
        """
        return sorted(
            (
                e
                for e in self.events
                if e.kind == "item.dispatch" and e.fields.get("stage") == stage
            ),
            key=lambda e: e.time,
        )

    def first(self, kind: str) -> Event | None:
        for e in self.events:
            if e.kind == kind:
                return e
        return None

    @property
    def latency(self) -> float | None:
        """submit→yield seconds (None until the item completes)."""
        sub = self.first("item.submit")
        done = self.first("item.complete")
        if sub is None or done is None:
            return None
        return done.time - sub.time

    @property
    def service_seconds(self) -> float:
        """Total measured stage service time attributed to this item.

        A batch-covering record (``items=N``, ``seconds`` = batch total)
        is shared by N spans, so each span claims ``seconds / items`` —
        summing ``service_seconds`` across spans stays equal to the wall
        time the stages actually spent.
        """
        return sum(
            e.fields.get("seconds", 0.0) / max(int(e.fields.get("items", 1)), 1)
            for e in self.events
            if e.kind == "stage.service"
        )

    def phases(self) -> list[tuple[float, str]]:
        """Chronological ``(time, kind)`` points of the timeline."""
        return sorted((e.time, e.kind) for e in self.events)


class SpanCollector:
    """Bus subscriber that groups per-item events into :class:`Span` objects."""

    KINDS = (
        "stream.begin",
        "item.submit",
        "item.dispatch",
        "item.complete",
        "stage.service",
        "frame.encode",
        "frame.release",
        # A worker death mid-item re-sends it: the redispatch event joins
        # the span so it reads "re-sent" instead of dangling open, and the
        # replacement attempt's dispatch lands on the same span.
        "worker.redispatch",
        # Worker-side trace points and the per-hop decomposition (clock-
        # mapped onto the session timeline by the coordinator).
        "wk.dequeue",
        "wk.service",
        "wk.encode",
        "wk.send",
        "span.phases",
    )

    def __init__(self) -> None:
        self._spans: dict[tuple[int, int], Span] = {}
        self._by_gseq: dict[int, tuple[int, int]] = {}
        self._stream = 0
        self._lock = Lock()

    def attach(self, bus: EventBus) -> "SpanCollector":
        bus.subscribe(self, kinds=self.KINDS)
        return self

    # -------------------------------------------------------------- resolve
    def _resolve(self, seq: int) -> Span | None:
        """Map an executor-scoped ``seq`` onto a live span (see module doc)."""
        key = self._by_gseq.get(seq)
        if key is not None:
            span = self._spans.get(key)
            if span is not None and not span.complete:
                return span
        return self._spans.get((self._stream, seq))

    def __call__(self, ev: Event) -> None:
        f = ev.fields
        with self._lock:
            if ev.kind == "stream.begin":
                self._stream = int(f.get("stream", self._stream))
                return
            if ev.kind in ("item.submit", "item.complete"):
                if "stream" not in f or "seq" not in f:
                    return
                key = (int(f["stream"]), int(f["seq"]))
                self._stream = key[0]
                span = self._spans.setdefault(key, Span(*key))
                if "gseq" in f:
                    self._by_gseq[int(f["gseq"])] = key
                span.events.append(ev)
                return
            seq = f.get("seq")
            if seq is None:
                return
            # A batch-covering event names its base seq and carries
            # ``items=N``: attach it to all N spans so every item in the
            # micro-batch keeps a full timeline (consumers divide any
            # ``seconds`` field by ``items`` for per-item attribution).
            for k in range(int(f.get("items", 1))):
                span = self._resolve(int(seq) + k)
                if span is not None:
                    span.events.append(ev)

    # --------------------------------------------------------------- access
    def spans(self) -> list[Span]:
        """Every span so far, ordered by ``(stream, seq)``."""
        with self._lock:
            return [self._spans[k] for k in sorted(self._spans)]

    def span(self, stream: int, seq: int) -> Span | None:
        with self._lock:
            return self._spans.get((stream, seq))


def spans_from_journal(path) -> list[Span]:
    """Rebuild spans from a JSONL journal written by :class:`JsonlJournal`."""
    from repro.obs.journal import read_journal

    collector = SpanCollector()
    for rec in read_journal(path):
        fields = {
            (k[2:] if k.startswith("f_") else k): v
            for k, v in rec.items()
            if k not in ("t", "wall", "kind", "msg")
        }
        collector(Event(time=rec.get("t", 0.0), kind=rec["kind"], fields=fields))
    return collector.spans()
