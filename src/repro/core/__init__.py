"""The adaptive parallel pipeline pattern — the paper's contribution.

Layering (mirrors the observe → decide → act loop):

* :mod:`repro.core.stage` / :mod:`repro.core.pipeline` — what the
  application programmer writes: ordered stage definitions with work models
  (simulation) and/or callables (local execution).
* :mod:`repro.core.executor_sim` — executes a pipeline on a simulated grid
  under a given :class:`~repro.model.mapping.Mapping`, with live
  reconfiguration (re-mapping and replication) that never loses or reorders
  delivered items.
* :mod:`repro.core.policy` — the *decide* step: turns instrumentation and
  resource forecasts into re-mapping/replication decisions, guarded by
  improvement thresholds, cooldowns and migration-cost amortisation.
* :mod:`repro.core.adaptive` — :class:`AdaptivePipeline`, the user-facing
  runner tying monitor + policy + executor together; also the static
  baseline (the same runner with adaptation disabled).
* :mod:`repro.core.events` — adaptation events and the :class:`RunResult`
  returned by every run.
"""

from repro.core.adaptive import AdaptivePipeline, run_static
from repro.core.events import AdaptationEvent, Decision, RunResult
from repro.core.executor_sim import SimPipelineEngine
from repro.core.pipeline import PipelineSpec
from repro.core.policies_alt import ReactivePolicy
from repro.core.policy import AdaptationConfig, AdaptationPolicy
from repro.core.stage import FixedWork, StageSpec, WorkModel

__all__ = [
    "AdaptationConfig",
    "AdaptationEvent",
    "AdaptationPolicy",
    "AdaptivePipeline",
    "Decision",
    "FixedWork",
    "PipelineSpec",
    "ReactivePolicy",
    "RunResult",
    "SimPipelineEngine",
    "StageSpec",
    "WorkModel",
    "run_static",
]
