"""Pipeline composition: an ordered sequence of stages.

This is the eSkel ``Pipeline1for1`` contract: every stage consumes exactly
one input and produces exactly one output, so the pipeline as a whole maps
its input sequence to an equal-length, order-preserved output sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stage import StageSpec
from repro.model.throughput import StageCost
from repro.util.validation import check_non_negative

__all__ = ["PipelineSpec"]


@dataclass(frozen=True)
class PipelineSpec:
    """An ordered, immutable pipeline definition.

    ``input_bytes`` is the size of one raw input item (charged on the
    transfer from the source location into the first stage).
    """

    stages: tuple[StageSpec, ...]
    input_bytes: float = 0.0
    name: str = "pipeline"

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a pipeline needs at least one stage")
        check_non_negative(self.input_bytes, "input_bytes")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    def stage(self, i: int) -> StageSpec:
        return self.stages[i]

    def stage_costs(
        self, measured_works: dict[int, float] | None = None
    ) -> tuple[StageCost, ...]:
        """Model-facing costs, optionally overridden by measured work."""
        measured_works = measured_works or {}
        return tuple(
            spec.cost(measured_works.get(i)) for i, spec in enumerate(self.stages)
        )

    def total_work(self) -> float:
        """Sum of mean per-item work over all stages."""
        return sum(s.work.mean for s in self.stages)

    def with_stage(self, i: int, spec: StageSpec) -> "PipelineSpec":
        stages = list(self.stages)
        stages[i] = spec
        return PipelineSpec(tuple(stages), input_bytes=self.input_bytes, name=self.name)

    def __str__(self) -> str:
        inner = " -> ".join(s.name for s in self.stages)
        return f"{self.name}[{inner}]"
