"""The *decide* step: when and how to adapt.

:class:`AdaptationPolicy` is a pure function of its inputs — instrumentation
snapshots, monitor forecasts, the current mapping — returning a
:class:`~repro.core.events.Decision`.  All the guards that keep adaptation
from thrashing live here:

* **cooldown** — no decision within ``cooldown`` seconds of the last action;
* **evidence** — every stage must have ``min_samples`` recent service
  observations before its measured work is trusted (the spec's prior is used
  until then, and no action is taken on priors alone unless allowed);
* **improvement threshold** — predicted throughput must improve by at least
  ``min_improvement`` (a ratio, e.g. 1.15 = +15 %), the hysteresis that
  absorbs forecast noise;
* **amortisation** — the migration cost must be recovered by the per-item
  saving over the items still to process.

The candidate generator composes :func:`~repro.model.optimizer.local_search`
(re-homing) with :func:`~repro.model.optimizer.propose_replication`
(farm-conversion of the bottleneck stage), both driven by *measured* work
estimates and *forecast* resource availability — never ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.events import Decision
from repro.core.pipeline import PipelineSpec
from repro.model.cost import MigrationCostModel
from repro.model.mapping import Mapping
from repro.model.optimizer import local_search, propose_replication
from repro.model.throughput import ModelContext, ResourceView, StageCost, predict
from repro.monitor.instrument import StageSnapshot
from repro.util.validation import check_non_negative, check_positive

__all__ = ["AdaptationConfig", "AdaptationPolicy"]


@dataclass(frozen=True)
class AdaptationConfig:
    """Tunables of the adaptation loop (defaults match the benchmarks)."""

    interval: float = 5.0  # seconds between policy evaluations
    min_improvement: float = 1.15  # predicted gain required to act
    cooldown: float = 10.0  # seconds after an action before the next
    min_samples: int = 3  # per-stage observations before acting
    max_replicas: int = 4  # replica cap per stage
    enable_remap: bool = True
    enable_replication: bool = True
    rollback_tolerance: float = 0.85  # post-action throughput floor (x before)
    settle_time: float = 5.0  # seconds before judging an action
    migration: MigrationCostModel = field(default_factory=MigrationCostModel)

    def __post_init__(self) -> None:
        check_positive(self.interval, "interval")
        check_positive(self.settle_time, "settle_time")
        check_non_negative(self.cooldown, "cooldown")
        if self.min_improvement < 1.0:
            raise ValueError(
                f"min_improvement is a ratio >= 1.0, got {self.min_improvement}"
            )
        if not 0.0 < self.rollback_tolerance <= 1.0:
            raise ValueError(
                f"rollback_tolerance must be in (0, 1], got {self.rollback_tolerance}"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.max_replicas < 1:
            raise ValueError(f"max_replicas must be >= 1, got {self.max_replicas}")


class AdaptationPolicy:
    """Stateless decision logic (state like cooldown lives in the caller)."""

    def __init__(self, pipeline: PipelineSpec, config: AdaptationConfig) -> None:
        self.pipeline = pipeline
        self.config = config

    # -- helpers --------------------------------------------------------------
    def measured_works(self, snapshots: list[StageSnapshot]) -> dict[int, float]:
        """Per-stage work estimates from instrumentation (where trusted)."""
        works = {}
        for snap in snapshots:
            if (
                snap.items_processed >= self.config.min_samples
                and not math.isnan(snap.work_estimate)
                and snap.work_estimate > 0
            ):
                works[snap.stage_index] = snap.work_estimate
        return works

    def build_context(
        self,
        snapshots: list[StageSnapshot],
        view: ResourceView,
        source_pid: int,
        sink_pid: int,
    ) -> ModelContext:
        """Model context from measured work + forecast resources.

        Payload sizes follow the same measured-over-declared rule as work:
        where a backend recorded real per-stage byte counts (the process
        and distributed transports do), they override the spec's
        ``out_bytes``/``input_bytes`` priors, so link pricing reflects the
        payloads actually crossing the wire.
        """
        costs = list(self.pipeline.stage_costs(self.measured_works(snapshots)))
        input_bytes = self.pipeline.input_bytes
        for snap in snapshots:
            i = snap.stage_index
            if i == 0 and snap.bytes_in > 0:
                input_bytes = snap.bytes_in
            if 0 <= i < len(costs) and snap.bytes_out > 0:
                cost = costs[i]
                costs[i] = StageCost(
                    work=cost.work,
                    out_bytes=snap.bytes_out,
                    replicable=cost.replicable,
                    state_bytes=cost.state_bytes,
                )
        return ModelContext(
            stage_costs=tuple(costs),
            view=view,
            source_pid=source_pid,
            sink_pid=sink_pid,
            input_bytes=input_bytes,
        )

    # -- the decision ---------------------------------------------------------
    def decide(
        self,
        *,
        now: float,
        current: Mapping,
        snapshots: list[StageSnapshot],
        view: ResourceView,
        source_pid: int,
        sink_pid: int,
        remaining_items: int,
        last_action_time: float = -math.inf,
    ) -> Decision:
        """Evaluate the situation and return a :class:`Decision`."""
        cfg = self.config
        if now - last_action_time < cfg.cooldown:
            return Decision(None, reason="cooldown")
        if remaining_items <= 0:
            return Decision(None, reason="no-remaining-work")
        observed = sum(
            1 for s in snapshots if s.items_processed >= cfg.min_samples
        )
        if observed < len(snapshots):
            return Decision(None, reason="insufficient-samples")

        ctx = self.build_context(snapshots, view, source_pid, sink_pid)
        current_pred = predict(current, ctx)

        candidate = current_pred
        if cfg.enable_remap:
            candidate = local_search(candidate.mapping, ctx)
        if cfg.enable_replication:
            candidate = propose_replication(
                candidate.mapping,
                ctx,
                max_replicas=cfg.max_replicas,
                min_gain=1.02,
            )
        if candidate.mapping == current:
            return Decision(None, reason="already-optimal")

        gain = (
            candidate.throughput / current_pred.throughput
            if current_pred.throughput > 0
            else math.inf
        )
        if gain < cfg.min_improvement:
            return Decision(
                None,
                reason=f"below-threshold (x{gain:.3f} < x{cfg.min_improvement:.3f})",
                predicted_gain=gain,
            )
        migration_s = cfg.migration.estimate(current, candidate.mapping, ctx)
        if not cfg.migration.worthwhile(
            current_pred.period, candidate.period, migration_s, remaining_items
        ):
            return Decision(
                None,
                reason=f"migration-not-amortised ({migration_s:.2f}s)",
                predicted_gain=gain,
                migration_cost=migration_s,
            )
        moved = current.moved_stages(candidate.mapping)
        return Decision(
            candidate.mapping,
            reason=f"move stages {moved}: {current} -> {candidate.mapping}",
            predicted_gain=gain,
            migration_cost=migration_s,
        )
