"""Stage definitions.

A :class:`StageSpec` describes one pipeline stage from the pattern's point of
view: how much *work* an item costs (a :class:`WorkModel`, sampled per item
in simulation), how many bytes it emits downstream, whether it is stateless
(and therefore replicable), how big its migratable state is, and — for the
local thread runtime — the actual Python callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.model.throughput import StageCost
from repro.util.validation import check_non_negative

__all__ = ["WorkModel", "FixedWork", "StageSpec"]


class WorkModel:
    """Per-item work distribution (work units; 1 unit = 1 s at speed 1).

    Implementations must be cheap to sample and expose their mean, which the
    analytic model and the initial mapping heuristics use.
    """

    @property
    def mean(self) -> float:
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> float:
        """Draw the work of one item."""
        raise NotImplementedError


class FixedWork(WorkModel):
    """Deterministic work: every item costs exactly ``work`` units."""

    def __init__(self, work: float) -> None:
        check_non_negative(work, "work")
        self._work = float(work)

    @property
    def mean(self) -> float:
        return self._work

    def sample(self, rng: np.random.Generator) -> float:
        return self._work

    def __repr__(self) -> str:
        return f"FixedWork({self._work})"


#: Shared default work prior (0.1 s) — a sentinel instance, so consumers
#: can tell "the caller declared this stage's cost" from "the sim prior
#: was silently assumed" (auto batch sizing must ignore the latter).
_DEFAULT_WORK = FixedWork(0.1)


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage.

    Parameters
    ----------
    name:
        Stage label used in traces and reports.
    work:
        A :class:`WorkModel`, or a plain float meaning :class:`FixedWork`.
    out_bytes:
        Bytes this stage sends downstream per item.
    state_bytes:
        Size of the stage's migratable state (0 for stateless stages).
    replicable:
        Stateless stages may be replicated into an embedded farm; stateful
        stages (``replicable=False``) are only ever re-homed whole.
    fn:
        Optional Python callable ``item -> item`` for the local thread
        runtime; ignored by the simulator.
    """

    name: str
    work: WorkModel = _DEFAULT_WORK
    out_bytes: float = 0.0
    state_bytes: float = 0.0
    replicable: bool = True
    fn: Callable[[Any], Any] | None = None

    def __post_init__(self) -> None:
        if isinstance(self.work, (int, float)):
            object.__setattr__(self, "work", FixedWork(float(self.work)))
        if not isinstance(self.work, WorkModel):
            raise TypeError(f"work must be a WorkModel or float, got {type(self.work)!r}")
        check_non_negative(self.out_bytes, "out_bytes")
        check_non_negative(self.state_bytes, "state_bytes")

    @property
    def work_declared(self) -> bool:
        """True when ``work`` was given explicitly, not the 0.1 s sim prior."""
        return self.work is not _DEFAULT_WORK

    def cost(self, measured_work: float | None = None) -> StageCost:
        """Model-facing cost record; ``measured_work`` overrides the prior."""
        work = self.work.mean if measured_work is None else measured_work
        return StageCost(
            work=work,
            out_bytes=self.out_bytes,
            replicable=self.replicable,
            state_bytes=self.state_bytes,
        )
