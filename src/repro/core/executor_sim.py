"""Simulated execution of a pipeline on a grid, with live reconfiguration.

Execution model (the analytic model in :mod:`repro.model.throughput` mirrors
it exactly — see E9):

* The **source** emits ``n_items`` sequence-numbered items into stage 0's
  input channel (closed-loop by default: as fast as back-pressure allows).
* Each **stage replica** is a simulated process pinned to a processor.  Its
  per-item cycle: receive transfer (latency + bytes/bandwidth from the
  producer's processor), then service (exclusive CPU hold of
  ``work / effective_speed``; co-located actors contend for the capacity-1
  CPU resource, which realises equitable sharing), then a put downstream.
* After every stage sits a **reorderer** that restores sequence order, so
  replicated stages never reorder what downstream stages observe — the
  eSkel ``Pipeline1for1`` contract.
* The **sink** pays the final transfer to its own processor and records
  completion.

Reconfiguration protocol (the *act* step) — designed so that **no item is
ever lost or duplicated**, even mid-flight:

1. New replicas are spawned first.  Each sleeps for the migration cost
   (state transfer + restart) before consuming, modelling drain-move-resume
   migration.
2. The stage runtime's **epoch counter** advances; every replica checks it
   between items and retires the moment it is superseded, leaving the
   channel backlog to the new generation (critical when the old processor
   is degraded — it must not drain the backlog at its degraded speed).
3. Replicas *blocked* on an empty channel cannot observe the epoch, so one
   :class:`_StopToken` wake-up marker per retiring replica is inserted at
   the **front** of the channel (``put_front``); any replica that dequeues
   a token discards it and re-checks its epoch.
4. Replicas are never interrupted while holding an item; an item caught
   mid-service on a degraded node finishes there (bounded by one degraded
   service time), which the adaptation controller's settle window accounts
   for.

End-of-run shutdown cascades: the source closes stage 0's channel; when the
last replica of a stage exits (channel closed and drained), it closes the
stage's raw output; the reorderer drains and closes the next stage's input;
the sink completes a run event once its channel closes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineSpec
from repro.gridsim.channels import Channel, ChannelClosed
from repro.gridsim.engine import Simulator
from repro.gridsim.grid import GridSystem
from repro.model.mapping import Mapping
from repro.monitor.instrument import PipelineInstrumentation
from repro.util.rng import derive_rng
from repro.util.trace import Tracer
from repro.util.validation import check_positive

__all__ = ["SimPipelineEngine", "Item"]


@dataclass
class Item:
    """One unit of data flowing through the simulated pipeline."""

    seq: int
    nbytes: float
    produced_by: int  # pid of the processor that produced this version
    created: float  # simulated time the source emitted it


class _StopToken:
    """In-band wake-up marker for retiring replicas.

    The *authoritative* stop signal is the stage runtime's epoch counter,
    which every replica checks between items.  Tokens exist only to wake
    replicas that are *blocked* on an empty input channel so they re-check
    the epoch; any replica (old or new) that dequeues one simply discards it
    and loops.  They are inserted with ``put_front`` so a retiring replica
    never drains backlogged data at a degraded processor's speed first.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "_StopToken()"


class _StageRuntime:
    """Mutable bookkeeping for one stage during a run."""

    def __init__(self, index: int, in_ch: Channel, raw_out: Channel) -> None:
        self.index = index
        self.in_ch = in_ch
        self.raw_out = raw_out
        self.epoch = 0
        self.live_replicas = 0  # all replica processes not yet exited
        self.replica_pids: tuple[int, ...] = ()

    def on_replica_exit(self) -> None:
        self.live_replicas -= 1
        if self.live_replicas == 0 and self.in_ch.closed and not self.raw_out.closed:
            self.raw_out.close()


class SimPipelineEngine:
    """Runs one pipeline on one grid inside one simulator.

    The engine is deliberately mapping-mutable: :meth:`reconfigure` can be
    called at any simulated time by an adaptation controller.  Construction
    wires channels and spawns source/sink/reorderers; replicas for the
    initial mapping deploy immediately.
    """

    def __init__(
        self,
        sim: Simulator,
        grid: GridSystem,
        pipeline: PipelineSpec,
        mapping: Mapping,
        *,
        n_items: int,
        source_pid: int | None = None,
        sink_pid: int | None = None,
        buffer_capacity: int = 4,
        seed: int = 0,
        arrival_period: float = 0.0,
        instrument_window: int = 32,
        link_contention: bool = False,
        tracer: Tracer | None = None,
    ) -> None:
        check_positive(n_items, "n_items")
        check_positive(buffer_capacity, "buffer_capacity")
        if mapping.n_stages != pipeline.n_stages:
            raise ValueError(
                f"mapping covers {mapping.n_stages} stages, pipeline has {pipeline.n_stages}"
            )
        for pid in mapping.processors_used():
            if pid not in grid:
                raise KeyError(f"mapping uses unknown processor {pid}")
        self.sim = sim
        self.grid = grid
        self.pipeline = pipeline
        self.n_items = int(n_items)
        self.source_pid = grid.pids[0] if source_pid is None else source_pid
        self.sink_pid = grid.pids[0] if sink_pid is None else sink_pid
        self.buffer_capacity = int(buffer_capacity)
        self.arrival_period = float(arrival_period)
        # With link contention on, concurrent transfers over one physical
        # link serialise on the grid's per-link resource (shared WAN pipes
        # saturate); off (default) links have infinite parallelism, matching
        # the analytic model's assumption.
        self.link_contention = bool(link_contention)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.instrumentation = PipelineInstrumentation(
            pipeline.n_stages, window=instrument_window
        )
        self.done = sim.event("pipeline-done")
        self.mapping = mapping
        self.mapping_history: list[tuple[float, Mapping]] = [(sim.now, mapping)]
        self.output_records: list[tuple[int, float, float]] = []  # (seq, t, latency)

        self._work_rngs = [
            derive_rng(seed, "work", str(i)) for i in range(pipeline.n_stages)
        ]
        n = pipeline.n_stages
        self._in_ch = [
            Channel(capacity=self.buffer_capacity, name=f"in[{i}]") for i in range(n)
        ]
        self._raw_out = [
            Channel(capacity=self.buffer_capacity, name=f"raw[{i}]") for i in range(n)
        ]
        self._sink_ch = Channel(capacity=self.buffer_capacity, name="sink")
        self._stages = [
            _StageRuntime(i, self._in_ch[i], self._raw_out[i]) for i in range(n)
        ]

        sim.process(self._source(), name="source")
        for i in range(n):
            nxt = self._in_ch[i + 1] if i + 1 < n else self._sink_ch
            sim.process(self._reorderer(i, nxt), name=f"reorder[{i}]")
        sim.process(self._sink(), name="sink")
        for i in range(n):
            self._deploy_stage(i, mapping.replicas(i), startup_delay=0.0)

    # ------------------------------------------------------------------ source
    def _source(self):
        for seq in range(self.n_items):
            item = Item(
                seq=seq,
                nbytes=self.pipeline.input_bytes,
                produced_by=self.source_pid,
                created=self.sim.now,
            )
            yield self._in_ch[0].put(item)
            self.tracer.emit(self.sim.now, "item.submit", f"emitted {seq}", seq=seq)
            if self.arrival_period > 0.0:
                yield self.sim.timeout(self.arrival_period)
        self._in_ch[0].close()

    # ------------------------------------------------------------------ replicas
    def _deploy_stage(
        self, stage: int, pids: tuple[int, ...], startup_delay: float
    ) -> None:
        rt = self._stages[stage]
        rt.epoch += 1
        rt.replica_pids = tuple(pids)
        for pid in pids:
            rt.live_replicas += 1
            self.sim.process(
                self._replica(stage, pid, rt.epoch, startup_delay),
                name=f"stage{stage}@{pid}#e{rt.epoch}",
            )

    def _replica(self, stage: int, pid: int, epoch: int, startup_delay: float):
        rt = self._stages[stage]
        spec = self.pipeline.stage(stage)
        proc = self.grid.processor(pid)
        metrics = self.instrumentation.stages[stage]
        out_ch = rt.raw_out
        try:
            if startup_delay > 0.0:
                yield self.sim.timeout(startup_delay)
            while True:
                if rt.epoch != epoch:
                    # Superseded by a reconfiguration: stop at this item
                    # boundary; the backlog belongs to the new generation.
                    self.tracer.emit(
                        self.sim.now,
                        "replica.remove",
                        f"stage{stage}@{pid} retired",
                        stage=stage,
                        pid=pid,
                    )
                    return
                try:
                    got = yield rt.in_ch.get()
                except ChannelClosed:
                    return
                if isinstance(got, _StopToken):
                    continue  # pure wake-up: discard and re-check the epoch
                item: Item = got
                metrics.record_queue_length(len(rt.in_ch))
                # Receive transfer, charged at the consumer (network, no CPU).
                xfer = yield from self._transfer(item, pid)
                metrics.record_transfer(xfer)
                # Service: exclusive CPU hold; effective speed frozen at start.
                yield proc.resource.acquire()
                eff = proc.effective_speed(self.sim.now)
                work = spec.work.sample(self._work_rngs[stage])
                duration = work / eff
                try:
                    yield self.sim.timeout(duration)
                finally:
                    proc.resource.release()
                metrics.record_service(duration, eff)
                item.nbytes = spec.out_bytes
                item.produced_by = pid
                yield out_ch.put(item)
        finally:
            rt.on_replica_exit()

    # ------------------------------------------------------------------ reorder
    def _reorderer(self, stage: int, next_ch: Channel):
        rt = self._stages[stage]
        pending: dict[int, Item] = {}
        next_seq = 0
        try:
            while True:
                if next_seq in pending:
                    item = pending.pop(next_seq)
                    yield next_ch.put(item)
                    next_seq += 1
                    continue
                try:
                    item = yield rt.raw_out.get()
                except ChannelClosed:
                    break
                pending[item.seq] = item
            # Channel closed: every item has passed, flush any tail (should
            # be in order by construction).
            while next_seq in pending:
                item = pending.pop(next_seq)
                yield next_ch.put(item)
                next_seq += 1
            if pending:  # pragma: no cover - invariant violation guard
                raise RuntimeError(
                    f"reorderer[{stage}] stranded seqs {sorted(pending)}"
                )
        finally:
            next_ch.close()

    # ------------------------------------------------------------------ transfers
    def _transfer(self, item: Item, dst_pid: int):
        """Pay the network cost of moving ``item`` to ``dst_pid``.

        A generator helper (``yield from``-able inside process bodies):
        computes the transfer time from the link, optionally serialising on
        the physical link's resource when contention modelling is on, and
        returns the transfer duration actually charged.
        """
        src = item.produced_by
        if src == dst_pid:
            return 0.0
        link = self.grid.link(src, dst_pid)
        if self.link_contention:
            res = self.grid.link_resource(src, dst_pid)
            yield res.acquire()
            try:
                xfer = link.transfer_time(item.nbytes, self.sim.now)
                if xfer > 0.0:
                    yield self.sim.timeout(xfer)
            finally:
                res.release()
            return xfer
        xfer = link.transfer_time(item.nbytes, self.sim.now)
        if xfer > 0.0:
            yield self.sim.timeout(xfer)
        return xfer

    # ------------------------------------------------------------------ sink
    def _sink(self):
        while True:
            try:
                item = yield self._sink_ch.get()
            except ChannelClosed:
                break
            yield from self._transfer(item, self.sink_pid)
            now = self.sim.now
            self.instrumentation.record_completion(now)
            self.output_records.append((item.seq, now, now - item.created))
            self.tracer.emit(
                now, "item.complete", f"completed {item.seq}", seq=item.seq
            )
        if not self.done.triggered:
            self.done.succeed(self.instrumentation.items_completed)

    # ------------------------------------------------------------------ control
    def reconfigure(self, new_mapping: Mapping, migration_seconds: float = 0.0) -> list[int]:
        """Apply ``new_mapping``; returns the stage indices that changed.

        ``migration_seconds`` is the total migration budget; it is charged as
        the startup delay of every newly deployed replica set (they all
        migrate concurrently, which is how the cost model prices it).
        """
        if new_mapping.n_stages != self.pipeline.n_stages:
            raise ValueError(
                f"mapping covers {new_mapping.n_stages} stages, "
                f"pipeline has {self.pipeline.n_stages}"
            )
        for pid in new_mapping.processors_used():
            if pid not in self.grid:
                raise KeyError(f"mapping uses unknown processor {pid}")
        changed = self.mapping.moved_stages(new_mapping)
        for stage in changed:
            rt = self._stages[stage]
            if rt.in_ch.closed:
                continue  # run already draining past this stage
            old_count = len(rt.replica_pids)
            self._deploy_stage(
                stage, new_mapping.replicas(stage), startup_delay=migration_seconds
            )
            self.sim.process(
                self._send_stop_token(rt, old_count),
                name=f"stop-token[{stage}]",
            )
            self.tracer.emit(
                self.sim.now,
                "adapt.act",
                f"stage {stage}: {self.mapping.replicas(stage)} -> "
                f"{new_mapping.replicas(stage)}",
                stage=stage,
            )
        self.mapping = new_mapping
        self.mapping_history.append((self.sim.now, new_mapping))
        return changed

    def _send_stop_token(self, rt: _StageRuntime, count: int):
        if count <= 0:
            return
            yield  # pragma: no cover
        try:
            # One wake-up per retiring replica.  Priority insertion: blocked
            # retirees must wake *before* any backlogged items, otherwise a
            # replica stranded on a degraded processor would drain the
            # backlog at its degraded speed first — exactly what the
            # re-mapping is trying to escape.
            for _ in range(count):
                yield rt.in_ch.put_front(_StopToken())
        except ChannelClosed:
            pass  # replicas are already terminating via channel close

    # ------------------------------------------------------------------ results
    @property
    def items_completed(self) -> int:
        return self.instrumentation.items_completed

    def output_seqs(self) -> list[int]:
        return [seq for seq, _, _ in self.output_records]

    def completion_times(self) -> list[float]:
        return [t for _, t, _ in self.output_records]

    def latencies(self) -> list[float]:
        return [lat for _, _, lat in self.output_records]
