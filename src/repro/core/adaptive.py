"""The user-facing adaptive pipeline runner (observe → decide → act).

:class:`AdaptivePipeline` assembles the whole pattern around one run:

* a fresh :class:`~repro.gridsim.engine.Simulator`,
* a :class:`~repro.monitor.resource_monitor.ResourceMonitor` (observe,
  resource side),
* a :class:`~repro.core.executor_sim.SimPipelineEngine` whose built-in
  instrumentation is the observe, application side,
* a controller process evaluating the :class:`~repro.core.policy.
  AdaptationPolicy` every ``interval`` seconds (decide) and calling
  :meth:`~repro.core.executor_sim.SimPipelineEngine.reconfigure` (act),
* post-action validation: if measured throughput after ``settle_time``
  regressed below ``rollback_tolerance`` × the pre-action value, the
  controller reverts the mapping and extends its cooldown.

``run_static`` executes the same machinery with the controller disabled —
the baseline every experiment compares against.
"""

from __future__ import annotations

import math

from repro.core.events import AdaptationEvent, RunResult
from repro.core.executor_sim import SimPipelineEngine
from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig, AdaptationPolicy
from repro.gridsim.engine import AnyOf, Interrupt, Simulator
from repro.gridsim.grid import GridSystem
from repro.model.mapping import Mapping
from repro.model.optimizer import greedy_mapping
from repro.model.throughput import ModelContext, estimates_view, snapshot_view
from repro.monitor.resource_monitor import ResourceMonitor
from repro.util.rng import derive_rng
from repro.util.trace import Tracer

__all__ = ["AdaptivePipeline", "run_static"]


class AdaptivePipeline:
    """Runs a :class:`PipelineSpec` adaptively on a :class:`GridSystem`.

    Parameters
    ----------
    pipeline, grid:
        What to run and where.
    config:
        Adaptation tunables; ``None`` disables adaptation entirely (static
        baseline).
    policy:
        Custom decision policy (anything with the ``decide(...)`` signature
        of :class:`AdaptationPolicy`, carrying a ``config`` attribute).
        Overrides ``config``; used for the policy ablation (e.g.
        :class:`~repro.core.policies_alt.ReactivePolicy`).
    view_source:
        Where the decide step gets its resource view: ``"monitor"`` (NWS
        forecasts — the real pattern) or ``"oracle"`` (ground-truth grid
        snapshots — the upper bound used in ablations).
    initial_mapping:
        Starting mapping; default is the model's greedy mapping computed
        from the grid's *nominal* speeds (availability unknown before the
        run starts — exactly the information a static scheduler has).
    source_pid, sink_pid:
        Where inputs originate and outputs must be delivered (default: the
        lowest pid, the "user's" machine).
    monitor_period, monitor_noise:
        Resource-monitor sampling interval and measurement noise.
    buffer_capacity:
        Inter-stage channel capacity (items).
    seed:
        Root seed for all stochastic streams of the run.
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        grid: GridSystem,
        *,
        config: AdaptationConfig | None = None,
        policy=None,
        view_source: str = "monitor",
        initial_mapping: Mapping | None = None,
        source_pid: int | None = None,
        sink_pid: int | None = None,
        monitor_period: float = 1.0,
        monitor_noise: float = 0.02,
        buffer_capacity: int = 4,
        link_contention: bool = False,
        seed: int = 0,
        trace: bool = False,
    ) -> None:
        if view_source not in ("monitor", "oracle"):
            raise ValueError(f"view_source must be 'monitor' or 'oracle', got {view_source!r}")
        self.pipeline = pipeline
        self.grid = grid
        if policy is not None:
            self.policy = policy
            self.config = policy.config
        elif config is not None:
            self.policy = AdaptationPolicy(pipeline, config)
            self.config = config
        else:
            self.policy = None
            self.config = None
        self.view_source = view_source
        self.source_pid = grid.pids[0] if source_pid is None else source_pid
        self.sink_pid = grid.pids[0] if sink_pid is None else sink_pid
        self.monitor_period = monitor_period
        self.monitor_noise = monitor_noise
        self.buffer_capacity = buffer_capacity
        self.link_contention = link_contention
        self.seed = seed
        self.tracer = Tracer(enabled=trace)
        if initial_mapping is None:
            initial_mapping = self.default_mapping()
        self.initial_mapping = initial_mapping

    def default_mapping(self) -> Mapping:
        """Greedy mapping from nominal speeds (availability assumed 1.0)."""
        snap = self.grid.snapshot(0.0)
        # Nominal view: a static scheduler plans with catalogue speeds, not
        # the (unknowable) availability at run time.
        nominal = snap.__class__(
            time=0.0,
            speed=snap.speed,
            availability={pid: 1.0 for pid in snap.speed},
            effective_speed=dict(snap.speed),
            links=snap.links,
        )
        ctx = ModelContext(
            stage_costs=self.pipeline.stage_costs(),
            view=snapshot_view(nominal),
            source_pid=self.source_pid,
            sink_pid=self.sink_pid,
            input_bytes=self.pipeline.input_bytes,
        )
        return greedy_mapping(ctx).mapping

    # ------------------------------------------------------------------ run
    def run(self, n_items: int, *, until: float | None = None) -> RunResult:
        """Process ``n_items`` to completion (or simulated time ``until``)."""
        sim = Simulator()
        engine = SimPipelineEngine(
            sim,
            self.grid,
            self.pipeline,
            self.initial_mapping,
            n_items=n_items,
            source_pid=self.source_pid,
            sink_pid=self.sink_pid,
            buffer_capacity=self.buffer_capacity,
            link_contention=self.link_contention,
            seed=self.seed,
            tracer=self.tracer,
        )
        events: list[AdaptationEvent] = []
        monitor: ResourceMonitor | None = None
        if self.policy is not None:
            if self.view_source == "monitor":
                monitor = ResourceMonitor(
                    sim,
                    self.grid,
                    period=self.monitor_period,
                    noise_std=self.monitor_noise,
                    rng=derive_rng(self.seed, "monitor-noise"),
                )

                # The monitor samples forever; without this the event heap
                # never drains and sim.run() would spin past the workload.
                def _stop_monitor(mon: ResourceMonitor):
                    yield engine.done
                    mon.stop()

                sim.process(_stop_monitor(monitor), name="monitor-stopper")
            sim.process(
                self._controller(sim, engine, monitor, n_items, events),
                name="adaptation-controller",
            )
        sim.run(until=until)
        return RunResult(
            n_items=n_items,
            completion_times=engine.completion_times(),
            latencies=engine.latencies(),
            adaptation_events=events,
            mapping_history=list(engine.mapping_history),
            end_time=sim.now,
            output_seqs=engine.output_seqs(),
        )

    # ------------------------------------------------------------------ controller
    def _controller(
        self,
        sim: Simulator,
        engine: SimPipelineEngine,
        monitor: ResourceMonitor | None,
        n_items: int,
        events: list[AdaptationEvent],
    ):
        assert self.policy is not None and self.config is not None
        cfg = self.config
        policy = self.policy
        nominal_speeds = {p.pid: p.speed for p in self.grid.processors}
        last_action = -math.inf
        try:
            while not engine.done.triggered:
                # Sleep one interval, but wake immediately when the run ends.
                which, _ = yield AnyOf([sim.timeout(cfg.interval), engine.done])
                if which == 1 or engine.done.triggered:
                    return
                remaining = n_items - engine.items_completed
                if monitor is not None:
                    view = estimates_view(monitor.estimates(), nominal_speeds)
                else:  # oracle: ground truth at decision time
                    view = snapshot_view(self.grid.snapshot(sim.now))
                decision = policy.decide(
                    now=sim.now,
                    current=engine.mapping,
                    snapshots=engine.instrumentation.snapshots(),
                    view=view,
                    source_pid=self.source_pid,
                    sink_pid=self.sink_pid,
                    remaining_items=remaining,
                    last_action_time=last_action,
                )
                self.tracer.emit(
                    sim.now,
                    "adapt.decide",
                    decision.reason,
                    acts=decision.acts,
                    reason=decision.reason,
                )
                if not decision.acts:
                    continue
                assert decision.new_mapping is not None
                before_tp = engine.instrumentation.recent_throughput(
                    sim.now, horizon=max(cfg.interval, 2.0)
                )
                old_mapping = engine.mapping
                engine.reconfigure(decision.new_mapping, decision.migration_cost)
                last_action = sim.now
                kind = (
                    "replicate" if decision.new_mapping.is_replicated() else "remap"
                )
                events.append(
                    AdaptationEvent(
                        time=sim.now,
                        kind=kind,
                        mapping_before=old_mapping,
                        mapping_after=decision.new_mapping,
                        reason=decision.reason,
                        predicted_gain=decision.predicted_gain,
                        throughput_before=before_tp,
                    )
                )
                # Post-action validation: wait one settle_time for in-flight
                # items started on the *old* replicas to drain (an item
                # caught mid-service on a degraded node can stall the
                # in-order output for a full degraded service time), then
                # measure over a second settle_time window that reflects the
                # new mapping only.  Regression beyond tolerance rolls back.
                which, _ = yield AnyOf([sim.timeout(2 * cfg.settle_time), engine.done])
                if which == 1 or engine.done.triggered:
                    return
                after_tp = engine.instrumentation.recent_throughput(
                    sim.now, horizon=cfg.settle_time
                )
                if (
                    not math.isnan(before_tp)
                    and not math.isnan(after_tp)
                    and after_tp < before_tp * cfg.rollback_tolerance
                ):
                    engine.reconfigure(old_mapping, decision.migration_cost)
                    self.tracer.emit(
                        sim.now,
                        "adapt.rollback",
                        f"measured {after_tp:.3f}/s < "
                        f"{cfg.rollback_tolerance:.2f} x {before_tp:.3f}/s",
                    )
                    events.append(
                        AdaptationEvent(
                            time=sim.now,
                            kind="rollback",
                            mapping_before=decision.new_mapping,
                            mapping_after=old_mapping,
                            reason=(
                                f"measured {after_tp:.3f}/s < "
                                f"{cfg.rollback_tolerance:.2f} x {before_tp:.3f}/s"
                            ),
                            predicted_gain=1.0,
                            throughput_before=after_tp,
                        )
                    )
                    # Double cooldown after a failed action: the model was
                    # wrong here; demand stronger evidence before retrying.
                    last_action = sim.now + cfg.cooldown
        except Interrupt:
            return


def run_static(
    pipeline: PipelineSpec,
    grid: GridSystem,
    n_items: int,
    *,
    mapping: Mapping | None = None,
    until: float | None = None,
    **kwargs,
) -> RunResult:
    """Run the pipeline with adaptation disabled (the baseline).

    Accepts the same keyword arguments as :class:`AdaptivePipeline` except
    ``config`` (forced to ``None``).
    """
    runner = AdaptivePipeline(
        pipeline, grid, config=None, initial_mapping=mapping, **kwargs
    )
    return runner.run(n_items, until=until)
