"""Alternative adaptation policies for the policy ablation (E11).

The model-driven :class:`~repro.core.policy.AdaptationPolicy` is the paper's
approach.  To quantify what the model buys, the ablation compares it
against:

* :class:`ReactivePolicy` — the model-free baseline a pragmatic grid user
  would write: watch the bottleneck stage's measured service time; when it
  exceeds its own historical baseline by a trigger factor, move that stage
  to the processor with the best forecast availability.  No throughput
  model, no replication, no amortisation reasoning.
* an **oracle** variant of the model-driven policy (ground-truth resource
  view instead of monitor forecasts), wired up through
  ``AdaptivePipeline(view_source="oracle")`` — the upper bound on what any
  monitor-fed policy could decide.

Both implement the same ``decide(...)`` signature as
:class:`AdaptationPolicy`, so the controller treats them uniformly.
"""

from __future__ import annotations

import math

from repro.core.events import Decision
from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig
from repro.model.mapping import Mapping
from repro.model.throughput import ResourceView
from repro.monitor.instrument import StageSnapshot

__all__ = ["ReactivePolicy"]


class ReactivePolicy:
    """Threshold-reactive re-mapping without a performance model.

    State: remembers the best (lowest) bottleneck service time seen so far
    as the baseline.  When the current bottleneck stage's windowed service
    time exceeds ``trigger × baseline``, the stage is moved to the processor
    with the highest forecast effective speed that is not already hosting
    it.  Cooldown and min-samples guards mirror the model-driven policy so
    the ablation isolates the *decision quality*, not the guard rails.
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        config: AdaptationConfig,
        *,
        trigger: float = 1.5,
    ) -> None:
        if trigger <= 1.0:
            raise ValueError(f"trigger must be > 1.0, got {trigger}")
        self.pipeline = pipeline
        self.config = config
        self.trigger = trigger
        self._baseline: dict[int, float] = {}

    def decide(
        self,
        *,
        now: float,
        current: Mapping,
        snapshots: list[StageSnapshot],
        view: ResourceView,
        source_pid: int,
        sink_pid: int,
        remaining_items: int,
        last_action_time: float = -math.inf,
    ) -> Decision:
        cfg = self.config
        if now - last_action_time < cfg.cooldown:
            return Decision(None, reason="cooldown")
        if remaining_items <= 0:
            return Decision(None, reason="no-remaining-work")
        usable = [
            s
            for s in snapshots
            if s.items_processed >= cfg.min_samples and not math.isnan(s.service_time)
        ]
        if len(usable) < len(snapshots):
            return Decision(None, reason="insufficient-samples")

        # Update baselines with the best service time ever observed.
        for s in usable:
            prev = self._baseline.get(s.stage_index, math.inf)
            if s.service_time < prev:
                self._baseline[s.stage_index] = s.service_time

        bottleneck = max(usable, key=lambda s: s.service_time)
        baseline = self._baseline.get(bottleneck.stage_index, math.inf)
        if not math.isfinite(baseline) or bottleneck.service_time < self.trigger * baseline:
            return Decision(None, reason="below-trigger")

        # Move the bottleneck stage to the fastest-looking idle processor.
        stage = bottleneck.stage_index
        hosts = set(current.replicas(stage))
        candidates = [p for p in view.pids() if p not in hosts]
        if not candidates:
            return Decision(None, reason="no-candidate-processor")
        share = current.share_counts()
        target = max(
            candidates, key=lambda p: view.eff_speed(p) / (share.get(p, 0) + 1)
        )
        new_mapping = current.with_stage(stage, [target])
        return Decision(
            new_mapping,
            reason=(
                f"reactive: stage {stage} service "
                f"{bottleneck.service_time:.3f}s > {self.trigger:.1f}x baseline "
                f"{baseline:.3f}s, move to proc {target}"
            ),
            predicted_gain=math.nan,  # reactive policies do not predict
        )
