"""Adaptation decisions, events and run results."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.model.mapping import Mapping

__all__ = ["Decision", "AdaptationEvent", "RunResult"]


@dataclass(frozen=True)
class Decision:
    """Outcome of one policy evaluation.

    ``new_mapping is None`` means "stay put"; ``reason`` explains either
    choice ("cooldown", "below-threshold", "remap stage 2 -> proc 5", ...).
    ``predicted_gain`` is the model's throughput ratio new/current (1.0 when
    staying).
    """

    new_mapping: Mapping | None
    reason: str
    predicted_gain: float = 1.0
    migration_cost: float = 0.0

    @property
    def acts(self) -> bool:
        return self.new_mapping is not None


@dataclass(frozen=True)
class AdaptationEvent:
    """One actuated (or rolled-back) adaptation, for timelines and reports."""

    time: float
    kind: str  # "remap" | "replicate" | "rollback"
    mapping_before: Mapping
    mapping_after: Mapping
    reason: str
    predicted_gain: float
    throughput_before: float  # measured, items/s (NaN if unknown)

    def __str__(self) -> str:
        return (
            f"t={self.time:.2f} {self.kind}: {self.mapping_before} -> "
            f"{self.mapping_after} ({self.reason}, predicted x{self.predicted_gain:.2f})"
        )


@dataclass
class RunResult:
    """Everything a pipeline run produced.

    ``completion_times`` are sink-side item completion instants (simulated
    seconds), in output order; ``latencies`` align with them.  The mapping
    history starts with the initial mapping at t=0.
    """

    n_items: int
    completion_times: list[float]
    latencies: list[float]
    adaptation_events: list[AdaptationEvent]
    mapping_history: list[tuple[float, Mapping]]
    end_time: float
    output_seqs: list[int] = field(default_factory=list)

    @property
    def items_completed(self) -> int:
        return len(self.completion_times)

    @property
    def completed_all(self) -> bool:
        return self.items_completed == self.n_items

    @property
    def makespan(self) -> float:
        """Time of the last completion (NaN when nothing completed)."""
        return self.completion_times[-1] if self.completion_times else math.nan

    @property
    def final_mapping(self) -> Mapping:
        return self.mapping_history[-1][1]

    def throughput(self) -> float:
        """Overall items/s from t=0 to the last completion."""
        if not self.completion_times or self.completion_times[-1] <= 0:
            return 0.0
        return len(self.completion_times) / self.completion_times[-1]

    def steady_throughput(self, skip_fraction: float = 0.25) -> float:
        """Items/s ignoring the pipeline-fill transient.

        Drops the first ``skip_fraction`` of completions and rates the rest
        over their time span — the number comparable to the analytic model's
        steady-state prediction.
        """
        if not 0.0 <= skip_fraction < 1.0:
            raise ValueError(f"skip_fraction must be in [0, 1), got {skip_fraction}")
        n = len(self.completion_times)
        k = int(n * skip_fraction)
        rest = self.completion_times[k:]
        if len(rest) < 2:
            return self.throughput()
        span = rest[-1] - rest[0]
        if span <= 0:
            return math.inf
        return (len(rest) - 1) / span

    def throughput_series(self, dt: float) -> tuple[list[float], list[float]]:
        """Windowed throughput: (window end times, items/s per window)."""
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        if not self.completion_times:
            return [], []
        end = self.end_time
        edges = np.arange(dt, end + dt, dt)
        counts, _ = np.histogram(self.completion_times, bins=np.concatenate([[0.0], edges]))
        return edges.tolist(), (counts / dt).tolist()

    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else math.nan

    def in_order(self) -> bool:
        """Did outputs leave in input order (the 1-for-1 contract)?"""
        return self.output_seqs == sorted(self.output_seqs)
