"""Local (real) execution of pipelines with threads.

This runtime executes the *same* :class:`~repro.core.pipeline.PipelineSpec`
API on the local machine using worker threads and bounded queues.  It exists
for API parity, correctness testing and I/O-bound or GIL-releasing (numpy)
stages.

**GIL honesty** (see DESIGN.md): pure-Python CPU-bound stages do not run in
parallel under CPython threads, so this runtime makes *no* performance
claims for them — all performance experiments use the simulator.  Stage
functions that release the GIL (numpy, I/O) do pipeline in parallel.
"""

from repro.runtime.threads import AdaptiveThreadPipeline, ThreadPipeline, ThreadRunStats

__all__ = ["AdaptiveThreadPipeline", "ThreadPipeline", "ThreadRunStats"]
