"""Thread-based pipeline executor with optional stage replication.

Architecture per stage (mirrors the simulator's wiring)::

    in_q --> dispatcher --> work_q --> worker x R --> next stage's in_q

* The **dispatcher** restores sequence order before dispatch, so a stage
  always *starts* items in input order even when an upstream stage is
  replicated (replicas may still *finish* out of order; the next dispatcher
  re-sorts).  The final dispatcher feeds the output collector, so pipeline
  output is in input order — the 1-for-1 contract.
* **Workers** apply the stage callable.  Replication is only allowed for
  stages marked ``replicable`` (stateless).
* Shutdown cascades with sentinels: each queue knows its producer count;
  when the last producer finishes, consumers receive one sentinel each.

Exceptions raised by stage functions abort the run and re-raise from
:meth:`ThreadPipeline.run` with the offending stage named.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.pipeline import PipelineSpec
from repro.util.stats import OnlineStats
from repro.util.validation import check_positive

__all__ = ["ThreadPipeline", "AdaptiveThreadPipeline", "ThreadRunStats"]

_SENTINEL = object()


class StageError(RuntimeError):
    """A stage function raised; carries the stage name and original error."""

    def __init__(self, stage_name: str, original: BaseException) -> None:
        super().__init__(f"stage {stage_name!r} failed: {original!r}")
        self.stage_name = stage_name
        self.original = original


@dataclass
class ThreadRunStats:
    """Wall-clock statistics of one threaded run."""

    elapsed: float
    items: int
    stage_service: list[OnlineStats] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.items / self.elapsed if self.elapsed > 0 else 0.0

    def service_means(self) -> list[float]:
        return [s.mean for s in self.stage_service]


class _CountedQueue:
    """Bounded queue that delivers sentinels when all producers finish."""

    def __init__(self, capacity: int, producers: int, consumers: int) -> None:
        self.q: queue.Queue = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._producers = producers
        self._consumers = consumers

    def put(self, item: Any) -> None:
        self.q.put(item)

    def get(self) -> Any:
        return self.q.get()

    def add_consumer(self) -> None:
        with self._lock:
            self._consumers += 1

    def producer_done(self) -> None:
        with self._lock:
            self._producers -= 1
            if self._producers == 0:
                for _ in range(self._consumers):
                    self.q.put(_SENTINEL)


class _Dispatcher(threading.Thread):
    """Reorders (seq, value) pairs and forwards them in sequence order."""

    def __init__(self, in_q: _CountedQueue, out_q: _CountedQueue, name: str) -> None:
        super().__init__(name=name, daemon=True)
        self.in_q = in_q
        self.out_q = out_q

    def run(self) -> None:
        pending: dict[int, Any] = {}
        next_seq = 0
        try:
            while True:
                got = self.in_q.get()
                if got is _SENTINEL:
                    break
                seq, value = got
                pending[seq] = value
                while next_seq in pending:
                    self.out_q.put((next_seq, pending.pop(next_seq)))
                    next_seq += 1
            while next_seq in pending:
                self.out_q.put((next_seq, pending.pop(next_seq)))
                next_seq += 1
        finally:
            self.out_q.producer_done()


class _Worker(threading.Thread):
    """Applies one stage function to dispatched items."""

    def __init__(
        self,
        stage_index: int,
        stage_name: str,
        fn,
        work_q: _CountedQueue,
        out_q: _CountedQueue,
        service: OnlineStats,
        service_lock: threading.Lock,
        errors: list[BaseException],
        name: str,
    ) -> None:
        super().__init__(name=name, daemon=True)
        self.stage_index = stage_index
        self.stage_name = stage_name
        self.fn = fn
        self.work_q = work_q
        self.out_q = out_q
        self.service = service
        self.service_lock = service_lock
        self.errors = errors

    def run(self) -> None:
        try:
            while True:
                got = self.work_q.get()
                if got is _SENTINEL:
                    break
                seq, value = got
                t0 = time.perf_counter()
                try:
                    result = self.fn(value)
                except BaseException as err:  # noqa: BLE001 - reported upward
                    self.errors.append(StageError(self.stage_name, err))
                    break
                dt = time.perf_counter() - t0
                with self.service_lock:
                    self.service.push(dt)
                self.out_q.put((seq, result))
        finally:
            self.out_q.producer_done()


class ThreadPipeline:
    """Executes a :class:`PipelineSpec` (with ``fn`` stages) using threads.

    Parameters
    ----------
    pipeline:
        Stage specs; every stage must define ``fn``.
    replicas:
        Worker count per stage (default 1 each).  ``replicas[i] > 1``
        requires ``pipeline.stage(i).replicable``.
    capacity:
        Bounded queue capacity between stages (back-pressure).
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        replicas: Sequence[int] | None = None,
        capacity: int = 8,
    ) -> None:
        check_positive(capacity, "capacity")
        self.pipeline = pipeline
        n = pipeline.n_stages
        if replicas is None:
            replicas = [1] * n
        if len(replicas) != n:
            raise ValueError(f"replicas must list {n} counts, got {len(replicas)}")
        for i, r in enumerate(replicas):
            if r < 1:
                raise ValueError(f"stage {i} replica count must be >= 1, got {r}")
            if r > 1 and not pipeline.stage(i).replicable:
                raise ValueError(
                    f"stage {i} ({pipeline.stage(i).name!r}) is stateful and "
                    "cannot be replicated"
                )
            if pipeline.stage(i).fn is None:
                raise ValueError(
                    f"stage {i} ({pipeline.stage(i).name!r}) has no fn; the "
                    "thread runtime executes real callables"
                )
        self.replicas = list(replicas)
        self.capacity = capacity
        self.last_stats: ThreadRunStats | None = None

    def run(self, inputs: Iterable[Any]) -> list[Any]:
        """Process ``inputs``; returns outputs in input order."""
        items = list(inputs)
        n = self.pipeline.n_stages
        errors: list[BaseException] = []
        service = [OnlineStats() for _ in range(n)]
        locks = [threading.Lock() for _ in range(n)]

        # Wiring: in_q[i] (from previous stage workers) -> dispatcher ->
        # work_q[i] -> workers -> in_q[i+1]; the last "in_q" is the collector
        # feed, reordered by a final dispatcher into out_q.
        in_q: list[_CountedQueue] = []
        work_q: list[_CountedQueue] = []
        producers_of_next = 1  # the feeder thread produces for in_q[0]
        for i in range(n):
            in_q.append(
                _CountedQueue(self.capacity, producers=producers_of_next, consumers=1)
            )
            work_q.append(
                _CountedQueue(self.capacity, producers=1, consumers=self.replicas[i])
            )
            producers_of_next = self.replicas[i]
        collect_q = _CountedQueue(self.capacity, producers=producers_of_next, consumers=1)
        final_q = _CountedQueue(self.capacity, producers=1, consumers=1)

        threads: list[threading.Thread] = []
        for i in range(n):
            threads.append(_Dispatcher(in_q[i], work_q[i], name=f"dispatch[{i}]"))
            nxt = in_q[i + 1] if i + 1 < n else collect_q
            for r in range(self.replicas[i]):
                threads.append(
                    _Worker(
                        i,
                        self.pipeline.stage(i).name,
                        self.pipeline.stage(i).fn,
                        work_q[i],
                        nxt,
                        service[i],
                        locks[i],
                        errors,
                        name=f"stage[{i}].{r}",
                    )
                )
        threads.append(_Dispatcher(collect_q, final_q, name="dispatch[out]"))

        t0 = time.perf_counter()
        for t in threads:
            t.start()

        def feed():
            try:
                for seq, value in enumerate(items):
                    in_q[0].put((seq, value))
            finally:
                in_q[0].producer_done()

        feeder = threading.Thread(target=feed, name="feeder", daemon=True)
        feeder.start()

        outputs: list[Any] = []
        while True:
            got = final_q.get()
            if got is _SENTINEL:
                break
            _seq, value = got
            outputs.append(value)
        feeder.join()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        self.last_stats = ThreadRunStats(
            elapsed=elapsed, items=len(outputs), stage_service=service
        )
        if errors:
            raise errors[0]
        return outputs


class AdaptiveThreadPipeline:
    """Thread pipeline that grows the bottleneck stage's worker pool.

    A lightweight local analogue of the grid pattern: between *batches*, the
    controller inspects measured mean service times, identifies the stage
    with the largest service-per-worker, and adds a worker there (up to
    ``max_workers``) when it dominates the next contender by
    ``imbalance_threshold``.  Rebuilding between batches keeps the threading
    model simple while exercising the same observe-decide-act loop.
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        max_workers: int = 4,
        imbalance_threshold: float = 1.5,
        capacity: int = 8,
    ) -> None:
        check_positive(max_workers, "max_workers")
        if imbalance_threshold < 1.0:
            raise ValueError(
                f"imbalance_threshold must be >= 1.0, got {imbalance_threshold}"
            )
        self.pipeline = pipeline
        self.max_workers = max_workers
        self.imbalance_threshold = imbalance_threshold
        self.capacity = capacity
        self.replicas = [1] * pipeline.n_stages
        self.adaptations: list[tuple[int, int]] = []  # (stage, new count)

    def run_batches(self, batches: Sequence[Iterable[Any]]) -> list[list[Any]]:
        """Run several batches, adapting worker counts between them."""
        results = []
        for batch in batches:
            tp = ThreadPipeline(
                self.pipeline, replicas=self.replicas, capacity=self.capacity
            )
            results.append(tp.run(batch))
            assert tp.last_stats is not None
            self._adapt(tp.last_stats)
        return results

    def _adapt(self, stats: ThreadRunStats) -> None:
        per_worker = []
        for i, s in enumerate(stats.stage_service):
            mean = s.mean if s.n else 0.0
            per_worker.append(mean / self.replicas[i])
        if not per_worker or max(per_worker) <= 0:
            return
        order = sorted(range(len(per_worker)), key=lambda i: per_worker[i], reverse=True)
        worst = order[0]
        runner_up = per_worker[order[1]] if len(order) > 1 else 0.0
        spec = self.pipeline.stage(worst)
        if (
            spec.replicable
            and self.replicas[worst] < self.max_workers
            and (runner_up == 0.0 or per_worker[worst] / max(runner_up, 1e-12) >= self.imbalance_threshold)
        ):
            self.replicas[worst] += 1
            self.adaptations.append((worst, self.replicas[worst]))
