"""Thread-based pipeline executor with optional stage replication.

Architecture per stage (mirrors the simulator's wiring)::

    in_q --> dispatcher --> work_q --> worker x R --> next stage's in_q

* The **dispatcher** restores sequence order before dispatch, so a stage
  always *starts* items in input order even when an upstream stage is
  replicated (replicas may still *finish* out of order; the next dispatcher
  re-sorts).  The final dispatcher feeds the output collector, so pipeline
  output is in input order — the 1-for-1 contract.
* **Workers** apply the stage callable.  Replication is only allowed for
  stages marked ``replicable`` (stateless).
* Shutdown cascades with sentinels: each queue knows its producer count;
  when the last producer finishes, consumers receive one sentinel each.

The executor implements the :mod:`repro.backend` port's runtime half:
``start``/``join`` split the run so a controller thread can observe it
mid-flight, ``snapshots()`` exposes per-stage service/queue measurements
through :class:`~repro.monitor.instrument.PipelineInstrumentation`, and
``add_replica``/``remove_replica`` grow or shrink a replicable stage's
worker pool *while the run is in progress* (the dispatcher wiring makes
this safe: order is restored downstream regardless of worker count).

Exceptions raised by stage functions abort the run and re-raise from
:meth:`ThreadPipeline.join` with the offending stage named; on abort every
thread keeps draining its queue (without applying stage functions) so
shutdown never deadlocks on a full buffer.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.pipeline import PipelineSpec
from repro.monitor.instrument import PipelineInstrumentation, StageMetrics, StageSnapshot
from repro.util.batching import Batch, map_batch
from repro.util.ordering import SequenceReorderer
from repro.util.stats import OnlineStats
from repro.util.validation import check_positive

__all__ = [
    "ThreadPipeline",
    "AdaptiveThreadPipeline",
    "ThreadRunStats",
    "StageError",
    "propose_growth",
]

_SENTINEL = object()
_RETIRE = object()  # consumed by exactly one worker, which then exits


class StageError(RuntimeError):
    """A stage function raised; carries the stage name and original error."""

    def __init__(self, stage_name: str, original: BaseException) -> None:
        super().__init__(f"stage {stage_name!r} failed: {original!r}")
        self.stage_name = stage_name
        self.original = original


@dataclass
class ThreadRunStats:
    """Wall-clock statistics of one threaded run."""

    elapsed: float
    items: int
    stage_service: list[OnlineStats] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.items / self.elapsed if self.elapsed > 0 else 0.0

    def service_means(self) -> list[float]:
        return [s.mean for s in self.stage_service]


class _CountedQueue:
    """Bounded queue that delivers sentinels when all producers finish."""

    def __init__(self, capacity: int, producers: int, consumers: int) -> None:
        self.q: queue.Queue = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._producers = producers
        self._consumers = consumers

    def put(self, item: Any, abort: threading.Event | None = None) -> bool:
        """Put ``item``; with ``abort`` set, give up instead of blocking."""
        if abort is None:
            self.q.put(item)
            return True
        while True:
            try:
                self.q.put(item, timeout=0.05)
                return True
            except queue.Full:
                if abort.is_set():
                    return False

    def get(self) -> Any:
        return self.q.get()

    def add_consumer(self) -> None:
        with self._lock:
            if self._producers == 0:
                # Producers already finished: their sentinels are out, so the
                # newcomer needs its own to terminate.
                self.q.put(_SENTINEL)
            else:
                self._consumers += 1

    def remove_consumer(self) -> None:
        with self._lock:
            self._consumers -= 1

    def add_producer(self) -> None:
        with self._lock:
            if self._producers == 0:
                raise RuntimeError("queue already drained; cannot add a producer")
            self._producers += 1

    def producer_done(self) -> None:
        with self._lock:
            self._producers -= 1
            if self._producers == 0:
                for _ in range(self._consumers):
                    self.q.put(_SENTINEL)

    @property
    def drained(self) -> bool:
        """True once every producer finished (sentinels are out)."""
        with self._lock:
            return self._producers == 0


class _Dispatcher(threading.Thread):
    """Reorders (seq, value) pairs and forwards them in sequence order."""

    def __init__(
        self,
        in_q: _CountedQueue,
        out_q: _CountedQueue,
        name: str,
        abort: threading.Event,
        metrics: StageMetrics | None = None,
        metrics_lock: threading.Lock | None = None,
    ) -> None:
        super().__init__(name=name, daemon=True)
        self.in_q = in_q
        self.out_q = out_q
        self.abort = abort
        self.metrics = metrics
        self.metrics_lock = metrics_lock

    def _forward(self, seq: int, value: Any) -> None:
        self.out_q.put((seq, value), abort=self.abort)
        if self.metrics is not None and self.metrics_lock is not None:
            with self.metrics_lock:
                self.metrics.record_queue_length(self.out_q.q.qsize())

    def run(self) -> None:
        reorder = SequenceReorderer()
        try:
            while True:
                got = self.in_q.get()
                if got is _SENTINEL:
                    break
                if self.abort.is_set():
                    continue  # drain without forwarding
                seq, value = got
                for ready_seq, ready in reorder.push(seq, value):
                    self._forward(ready_seq, ready)
            if not self.abort.is_set():
                for ready_seq, ready in reorder.drain():
                    self._forward(ready_seq, ready)
        finally:
            self.out_q.producer_done()


class _Worker(threading.Thread):
    """Applies one stage function to dispatched items."""

    def __init__(
        self,
        stage_index: int,
        stage_name: str,
        fn,
        work_q: _CountedQueue,
        out_q: _CountedQueue,
        metrics: StageMetrics,
        metrics_lock: threading.Lock,
        errors: list[BaseException],
        abort: threading.Event,
        name: str,
        speed_fn: Callable[[], float],
    ) -> None:
        super().__init__(name=name, daemon=True)
        self.stage_index = stage_index
        self.stage_name = stage_name
        self.fn = fn
        self.work_q = work_q
        self.out_q = out_q
        self.metrics = metrics
        self.metrics_lock = metrics_lock
        self.errors = errors
        self.abort = abort
        self.speed_fn = speed_fn

    def run(self) -> None:
        try:
            while True:
                got = self.work_q.get()
                if got is _SENTINEL:
                    break
                if got is _RETIRE:
                    self.work_q.remove_consumer()
                    break
                if self.abort.is_set():
                    continue  # drain without processing
                seq, value = got
                batched = isinstance(value, Batch)
                t0 = time.perf_counter()
                try:
                    # A micro-batch maps element-wise in one dequeue: the
                    # whole run of items pays a single queue hop, one
                    # metrics lock round and one event.
                    result = map_batch(self.fn, value) if batched else self.fn(value)
                except BaseException as err:  # noqa: BLE001 - reported upward
                    self.errors.append(StageError(self.stage_name, err))
                    self.abort.set()
                    continue
                dt = time.perf_counter() - t0
                with self.metrics_lock:
                    # Recording the effective speed the item actually saw
                    # keeps work_estimate load-normalised: on a contended
                    # host the inflated dt is divided back out, so the
                    # planner does not double-count the load it also sees
                    # in the resource view.  Default speed is 1.0 (the
                    # local host as the reference processor).  A batch
                    # records once with the batch-total dt and items=N
                    # (seq = the first item's gseq — this fabric's event
                    # sequence space).
                    self.metrics.record_service(
                        dt, self.speed_fn(),
                        seq=value.gbase if batched else seq,
                        worker=self.name,
                        queue=self.work_q.q.qsize(),
                        items=len(value) if batched else 1,
                    )
                self.out_q.put((seq, result), abort=self.abort)
        finally:
            self.out_q.producer_done()


class ThreadPipeline:
    """Executes a :class:`PipelineSpec` (with ``fn`` stages) using threads.

    Parameters
    ----------
    pipeline:
        Stage specs; every stage must define ``fn``.
    replicas:
        Worker count per stage (default 1 each).  ``replicas[i] > 1``
        requires ``pipeline.stage(i).replicable``.
    capacity:
        Bounded queue capacity between stages (back-pressure).

    ``run`` is ``start`` + ``join``; the split form lets a controller
    observe ``snapshots()`` and call ``add_replica``/``remove_replica``
    while items are flowing.  One instance can run repeatedly (adapted
    replica counts carry over between runs).
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        replicas: Sequence[int] | None = None,
        capacity: int = 8,
        speed_fn: Callable[[], float] | None = None,
    ) -> None:
        check_positive(capacity, "capacity")
        self.pipeline = pipeline
        # Effective speed items are serviced at (see _Worker.run); the
        # thread backend wires the host-load sampler in here.
        self.speed_fn = speed_fn if speed_fn is not None else (lambda: 1.0)
        n = pipeline.n_stages
        if replicas is None:
            replicas = [1] * n
        if len(replicas) != n:
            raise ValueError(f"replicas must list {n} counts, got {len(replicas)}")
        for i, r in enumerate(replicas):
            if r < 1:
                raise ValueError(f"stage {i} replica count must be >= 1, got {r}")
            if r > 1 and not pipeline.stage(i).replicable:
                raise ValueError(
                    f"stage {i} ({pipeline.stage(i).name!r}) is stateful and "
                    "cannot be replicated"
                )
            if pipeline.stage(i).fn is None:
                raise ValueError(
                    f"stage {i} ({pipeline.stage(i).name!r}) has no fn; the "
                    "thread runtime executes real callables"
                )
        self.replicas = list(replicas)
        self.capacity = capacity
        self.last_stats: ThreadRunStats | None = None
        self.instrumentation: PipelineInstrumentation | None = None
        self._mutate_lock = threading.Lock()
        self._running = False
        self._reset_run_state()

    # ------------------------------------------------------------- lifecycle
    def _reset_run_state(self) -> None:
        self._errors: list[BaseException] = []
        self._abort = threading.Event()
        self._locks: list[threading.Lock] = []
        self._in_q: list[_CountedQueue] = []
        self._work_q: list[_CountedQueue] = []
        self._collect_q: _CountedQueue | None = None
        self._threads: list[threading.Thread] = []
        self._feeder: threading.Thread | None = None
        self._collector: threading.Thread | None = None
        self._outputs: list[Any] = []
        self._t0 = 0.0

    def start(self, inputs: Iterable[Any]) -> int:
        """Begin processing ``inputs``; returns the item count."""
        if self._running:
            raise RuntimeError("pipeline already running; join() it first")
        self._reset_run_state()
        items = list(inputs)
        n = self.pipeline.n_stages
        self.instrumentation = PipelineInstrumentation(n)
        self._locks = [threading.Lock() for _ in range(n)]

        # Wiring: in_q[i] (from previous stage workers) -> dispatcher ->
        # work_q[i] -> workers -> in_q[i+1]; the last "in_q" is the collector
        # feed, reordered by a final dispatcher into final_q.
        producers_of_next = 1  # the feeder thread produces for in_q[0]
        for i in range(n):
            self._in_q.append(
                _CountedQueue(self.capacity, producers=producers_of_next, consumers=1)
            )
            self._work_q.append(
                _CountedQueue(self.capacity, producers=1, consumers=self.replicas[i])
            )
            producers_of_next = self.replicas[i]
        self._collect_q = _CountedQueue(
            self.capacity, producers=producers_of_next, consumers=1
        )
        final_q = _CountedQueue(self.capacity, producers=1, consumers=1)

        for i in range(n):
            self._threads.append(
                _Dispatcher(
                    self._in_q[i],
                    self._work_q[i],
                    name=f"dispatch[{i}]",
                    abort=self._abort,
                    metrics=self.instrumentation.stages[i],
                    metrics_lock=self._locks[i],
                )
            )
            for r in range(self.replicas[i]):
                self._threads.append(self._make_worker(i, r))
        self._threads.append(
            _Dispatcher(self._collect_q, final_q, name="dispatch[out]", abort=self._abort)
        )

        self._t0 = time.perf_counter()
        self._running = True
        for t in self._threads:
            t.start()

        def feed() -> None:
            try:
                for seq, value in enumerate(items):
                    if self._abort.is_set():
                        break
                    self._in_q[0].put((seq, value), abort=self._abort)
            finally:
                self._in_q[0].producer_done()

        def collect() -> None:
            assert self.instrumentation is not None
            while True:
                got = final_q.get()
                if got is _SENTINEL:
                    break
                _seq, value = got
                self._outputs.append(value)
                self.instrumentation.record_completion(self.now())

        self._feeder = threading.Thread(target=feed, name="feeder", daemon=True)
        self._collector = threading.Thread(target=collect, name="collector", daemon=True)
        self._feeder.start()
        self._collector.start()
        return len(items)

    def _worker_out_queue(self, stage: int) -> _CountedQueue:
        assert self._collect_q is not None
        return self._in_q[stage + 1] if stage + 1 < self.pipeline.n_stages else self._collect_q

    def _make_worker(self, stage: int, replica_idx: int) -> _Worker:
        assert self.instrumentation is not None
        return _Worker(
            stage,
            self.pipeline.stage(stage).name,
            self.pipeline.stage(stage).fn,
            self._work_q[stage],
            self._worker_out_queue(stage),
            self.instrumentation.stages[stage],
            self._locks[stage],
            self._errors,
            self._abort,
            name=f"stage[{stage}].{replica_idx}",
            speed_fn=self.speed_fn,
        )

    def join(self) -> list[Any]:
        """Wait for the run to finish; returns outputs in input order."""
        if self._feeder is None or self._collector is None:
            raise RuntimeError("pipeline not started")
        self._feeder.join()
        while True:
            with self._mutate_lock:
                alive = [t for t in self._threads if t.is_alive()]
            if not alive:
                break
            for t in alive:
                t.join(timeout=0.5)
        self._collector.join()
        elapsed = time.perf_counter() - self._t0
        self._running = False
        assert self.instrumentation is not None
        self.last_stats = ThreadRunStats(
            elapsed=elapsed,
            items=len(self._outputs),
            # StageMetrics.total is the whole-run accumulator; the windowed
            # views behind snapshots() share the same samples.
            stage_service=[m.total for m in self.instrumentation.stages],
        )
        if self._errors:
            raise self._errors[0]
        return self._outputs

    def run(self, inputs: Iterable[Any]) -> list[Any]:
        """Process ``inputs``; returns outputs in input order."""
        self.start(inputs)
        return self.join()

    def abort(self) -> None:
        """Ask a running pipeline to stop: threads drain and exit quickly.

        Follow with :meth:`join` to reap them (items not yet processed are
        dropped, so the output list will be short).
        """
        self._abort.set()

    # ----------------------------------------------------------- observation
    def now(self) -> float:
        """Wall-clock seconds since the current run started."""
        return time.perf_counter() - self._t0

    @property
    def running(self) -> bool:
        return self._running and self._collector is not None and self._collector.is_alive()

    def items_completed(self) -> int:
        return self.instrumentation.items_completed if self.instrumentation else 0

    def snapshots(self) -> list[StageSnapshot]:
        """Windowed per-stage service/queue measurements (thread-safe)."""
        if self.instrumentation is None:
            return []
        return self.instrumentation.snapshots(self._locks)

    # --------------------------------------------------------- reconfiguring
    def add_replica(self, stage: int) -> bool:
        """Grow ``stage`` by one worker mid-run; False if the stage drained."""
        spec = self.pipeline.stage(stage)
        if not spec.replicable:
            raise ValueError(f"stage {stage} ({spec.name!r}) is stateful and cannot grow")
        with self._mutate_lock:
            if not self._running:
                self.replicas[stage] += 1
                return True
            out_q = self._worker_out_queue(stage)
            try:
                out_q.add_producer()
            except RuntimeError:
                return False  # stage already finished; growth is pointless
            self._work_q[stage].add_consumer()
            worker = self._make_worker(stage, self.replicas[stage])
            self.replicas[stage] += 1
            self._threads.append(worker)
            worker.start()
            return True

    def remove_replica(self, stage: int) -> bool:
        """Shrink ``stage`` by one worker (lazily; the pool stays >= 1)."""
        with self._mutate_lock:
            if self.replicas[stage] <= 1:
                return False
            if self._running:
                if self._work_q[stage].drained:
                    # The stage's workers are exiting on sentinels; a retire
                    # pill would land unread and the "shrink" would be a
                    # phantom — mirror add_replica and report no-op.
                    return False
                self.replicas[stage] -= 1
                self._work_q[stage].put(_RETIRE, abort=self._abort)
            else:
                self.replicas[stage] -= 1
            return True

    def reconfigure(self, stage: int, n_replicas: int) -> None:
        """Set ``stage``'s worker count to ``n_replicas`` (grow or shrink)."""
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        while self.replicas[stage] < n_replicas:
            if not self.add_replica(stage):
                break
        while self.replicas[stage] > n_replicas:
            if not self.remove_replica(stage):
                break


def propose_growth(
    per_worker_service: Sequence[float],
    replicas: Sequence[int],
    replicable: Sequence[bool],
    *,
    max_workers: int,
    imbalance_threshold: float,
) -> int | None:
    """The batch-mode growth decision: which stage (if any) gets a worker.

    Picks the stage with the largest mean service time *per worker*; it
    grows only when it is replicable, under ``max_workers``, and dominates
    the runner-up by ``imbalance_threshold`` (ties below the threshold are
    left alone — growing a balanced pipeline just burns threads).  Returns
    the stage index or ``None``.
    """
    if not per_worker_service or max(per_worker_service) <= 0:
        return None
    order = sorted(
        range(len(per_worker_service)),
        key=lambda i: per_worker_service[i],
        reverse=True,
    )
    worst = order[0]
    runner_up = per_worker_service[order[1]] if len(order) > 1 else 0.0
    if (
        replicable[worst]
        and replicas[worst] < max_workers
        and (
            runner_up == 0.0
            or per_worker_service[worst] / max(runner_up, 1e-12) >= imbalance_threshold
        )
    ):
        return worst
    return None


class AdaptiveThreadPipeline:
    """Thread pipeline that grows the bottleneck stage's worker pool.

    A lightweight local analogue of the grid pattern: the controller
    inspects measured service times, identifies the stage with the largest
    service-per-worker, and adds a worker there (up to ``max_workers``)
    when it dominates the next contender by ``imbalance_threshold``.

    .. deprecated:: the bespoke rebuild-between-batches controller loop is
       gone.  This class is now a thin veneer over the session-driven
       :class:`repro.backend.runner.RuntimeAdaptiveRunner` running
       :class:`repro.backend.runner.BottleneckGrowthPolicy` (the same
       :func:`propose_growth` decision, live): batches stream back-to-back
       over one warm :class:`~repro.backend.thread_backend.ThreadBackend`
       session, workers grow *while items flow*, and the measurement
       window is continuous across batch boundaries.  New code should use
       ``RuntimeAdaptiveRunner`` directly.
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        max_workers: int = 4,
        imbalance_threshold: float = 1.5,
        capacity: int = 8,
    ) -> None:
        check_positive(max_workers, "max_workers")
        if imbalance_threshold < 1.0:
            raise ValueError(
                f"imbalance_threshold must be >= 1.0, got {imbalance_threshold}"
            )
        self.pipeline = pipeline
        self.max_workers = max_workers
        self.imbalance_threshold = imbalance_threshold
        self.capacity = capacity
        self.adaptations: list[tuple[int, int]] = []  # (stage, new count)
        self._runner = None

    @property
    def replicas(self) -> list[int]:
        """Current per-stage worker counts (live view of the warm session)."""
        if self._runner is None:
            return [1] * self.pipeline.n_stages
        return self._runner.backend.replica_counts()

    def _ensure_runner(self):
        if self._runner is not None:
            return self._runner
        # Imported lazily: repro.backend imports this module for the
        # executor building blocks, so a top-level import would cycle.
        from repro.backend.runner import (
            BottleneckGrowthPolicy,
            RuntimeAdaptiveRunner,
            local_config,
        )
        from repro.backend.thread_backend import ThreadBackend

        config = local_config(
            interval=0.05, cooldown=0.05, min_samples=2, settle_time=0.05
        )
        self._runner = RuntimeAdaptiveRunner(
            self.pipeline,
            ThreadBackend(
                self.pipeline, capacity=self.capacity, max_replicas=self.max_workers
            ),
            policy=BottleneckGrowthPolicy(
                self.pipeline,
                config,
                max_workers=self.max_workers,
                imbalance_threshold=self.imbalance_threshold,
            ),
            rollback=False,
        )
        return self._runner

    def run_batches(self, batches: Sequence[Iterable[Any]]) -> list[list[Any]]:
        """Stream several batches back-to-back, adapting worker counts live.

        The warm session (and the continuously-adapting controller) spans
        the batches of one call; on return every worker and controller
        thread is released — pre-dating callers never had to clean up
        after this class, and still don't.  Adapted replica counts persist
        on the backend, so a later call resumes from the adapted shape.
        """
        runner = self._ensure_runner()
        results = []
        try:
            for batch in batches:
                res = runner.run(batch)
                results.append(res.outputs)
                for event in res.adaptation_events:
                    for i in range(self.pipeline.n_stages):
                        before = len(event.mapping_before.replicas(i))
                        after = len(event.mapping_after.replicas(i))
                        if after != before:
                            self.adaptations.append((i, after))
        finally:
            runner.detach()
            session = runner.backend._session
            if session is not None and not session.closed:
                session.close()
        return results

    def close(self) -> None:
        """Release the backend entirely (run_batches already reaps threads)."""
        if self._runner is not None:
            self._runner.close()
            self._runner = None
