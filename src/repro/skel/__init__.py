"""eSkel-flavoured skeleton API.

Thin, friendly entry points over the core machinery, in the spirit of the
Edinburgh Skeleton Library's ``Pipeline1for1``:

* :func:`repro.skel.api.pipeline_1for1` — run callables through a local
  threaded pipeline, outputs in input order;
* :func:`repro.skel.api.open_pipeline` — the streaming form: a resident
  session accepting submits as work arrives and yielding ordered results
  as items complete;
* :func:`repro.skel.api.farm` — task-farm a single callable locally;
* :func:`repro.skel.api.simulate_pipeline` — run a pipeline on a simulated
  grid, statically or adaptively;
* :func:`repro.skel.api.simulate_farm` — a farm as a one-stage replicated
  pipeline on the simulated grid.
"""

from repro.skel.api import (
    farm,
    open_pipeline,
    pipeline_1for1,
    simulate_farm,
    simulate_pipeline,
)

__all__ = [
    "farm",
    "open_pipeline",
    "pipeline_1for1",
    "simulate_farm",
    "simulate_pipeline",
]
