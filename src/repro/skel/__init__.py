"""eSkel-flavoured skeleton API.

Thin, friendly entry points over the core machinery, in the spirit of the
Edinburgh Skeleton Library's ``Pipeline1for1``:

* :func:`repro.skel.api.pipeline_1for1` — run callables through a local
  threaded pipeline, outputs in input order;
* :func:`repro.skel.api.farm` — task-farm a single callable locally;
* :func:`repro.skel.api.simulate_pipeline` — run a pipeline on a simulated
  grid, statically or adaptively;
* :func:`repro.skel.api.simulate_farm` — a farm as a one-stage replicated
  pipeline on the simulated grid.
"""

from repro.skel.api import farm, pipeline_1for1, simulate_farm, simulate_pipeline

__all__ = ["farm", "pipeline_1for1", "simulate_farm", "simulate_pipeline"]
