"""Skeleton entry points (the public face a downstream user starts from)."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.backend import (
    Backend,
    RuntimeAdaptiveRunner,
    Session,
    local_config,
    make_backend,
)
from repro.core.adaptive import AdaptivePipeline
from repro.core.events import RunResult
from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig
from repro.core.stage import StageSpec
from repro.gridsim.grid import GridSystem
from repro.model.mapping import Mapping

__all__ = [
    "pipeline_1for1",
    "open_pipeline",
    "farm",
    "simulate_pipeline",
    "simulate_farm",
]


def _run_on_backend(
    pipe: PipelineSpec,
    inputs: Iterable[Any],
    backend: str | Backend,
    adaptive: bool | AdaptationConfig,
    replicas: list[int] | None,
    capacity: int | None,
    **backend_kwargs,
) -> list[Any]:
    """Execute ``pipe`` on the chosen backend, optionally under adaptation."""
    owns = isinstance(backend, str)
    if owns:
        # capacity=None lets every adapter keep its own documented default
        # (8 for the real executors, the simulator's 4 for "sim").
        kwargs = dict(replicas=replicas, capacity=capacity, **backend_kwargs)
        if adaptive and backend == "sim":
            # The simulator's adaptation loop runs inside simulated time —
            # hand the flag to its in-sim controller, not the wall-clock
            # runner (which has no purchase on a simulated backend).
            kwargs["adaptive"] = adaptive
        b = make_backend(backend, pipe, **kwargs)
    else:
        # A Backend instance arrives fully configured: shape kwargs would be
        # silently ignored — reject them loudly; make_backend validates that
        # the instance runs the same stage callables as ``stages``.
        if replicas is not None or capacity is not None or backend_kwargs:
            raise ValueError(
                "replicas/capacity/backend kwargs only apply when selecting "
                "a backend by name; a Backend instance is already configured"
            )
        b = make_backend(backend, pipe)
    use_runner = bool(adaptive) and b.supports_live_reconfigure
    if adaptive and not use_runner and not (owns and backend == "sim"):
        if owns:
            b.close()  # don't leak warm resources on a refused request
        raise ValueError(
            f"backend {b.name!r} cannot adapt live; for the simulator, "
            "configure adaptation on the SimBackend instance (adaptive=)"
        )
    try:
        if use_runner:
            config = adaptive if isinstance(adaptive, AdaptationConfig) else local_config()
            outputs = (
                RuntimeAdaptiveRunner(b.pipeline, b, config=config).run(inputs).outputs
            )
        else:
            outputs = b.run(inputs).outputs
    finally:
        if owns:
            b.close()
    if outputs is None:
        raise ValueError(
            f"backend {b.name!r} produced no outputs (stages without fn?)"
        )
    return outputs


def _as_pipeline(stages: Sequence[Callable[[Any], Any] | StageSpec]) -> PipelineSpec:
    specs: list[StageSpec] = []
    for i, s in enumerate(stages):
        if isinstance(s, StageSpec):
            specs.append(s)
        elif callable(s):
            name = getattr(s, "__name__", f"stage{i}")
            if name == "<lambda>":
                name = f"stage{i}"
            specs.append(StageSpec(name=f"{i}:{name}", fn=s))
        else:
            raise TypeError(f"stage {i} is neither callable nor StageSpec: {s!r}")
    return PipelineSpec(tuple(specs))


def pipeline_1for1(
    stages: Sequence[Callable[[Any], Any] | StageSpec],
    inputs: Iterable[Any],
    *,
    replicas: Sequence[int] | None = None,
    capacity: int | None = None,
    backend: str | Backend = "threads",
    adaptive: bool | AdaptationConfig = False,
    **backend_kwargs,
) -> list[Any]:
    """Run ``inputs`` through a local pipeline of ``stages``.

    Each stage consumes one item and produces one item (``Pipeline1for1``
    semantics); the result list is in input order regardless of backend.
    ``replicas[i] > 1`` farms out stage ``i`` over several workers
    (stateless stages only — pass :class:`StageSpec` with
    ``replicable=False`` to forbid it).

    ``backend`` selects the execution substrate: ``"threads"`` (default),
    ``"processes"`` (warm process pools — use for CPU-bound pure-Python
    stages), ``"asyncio"`` (coroutine pools on an event-loop thread — use
    for I/O-bound stages; stages may be ``async def``), ``"distributed"``
    (TCP-socket workers on this or other hosts — stage fns must be
    picklable module-level functions; pass ``spawn_workers=`` for local
    workers or start remote ones with ``python -m
    repro.backend.distributed.worker``), ``"sim"`` (the grid
    simulator; timing is simulated), or any
    :class:`~repro.backend.base.Backend` instance (which must already be
    configured — ``replicas``/``capacity`` then may not be given).
    ``adaptive=True`` (or an :class:`AdaptationConfig`) runs the
    observe→decide→act loop: live on backends with
    ``supports_live_reconfigure``, via the in-sim controller on
    ``backend="sim"``.  Backend-specific knobs pass through — e.g.
    ``transport="shm"`` selects the payload codec on the process and
    distributed backends (see ``docs/transport.md``).

    >>> pipeline_1for1([lambda x: x + 1, lambda x: x * 2], [1, 2, 3])
    [4, 6, 8]
    """
    pipe = _as_pipeline(stages)
    return _run_on_backend(
        pipe,
        inputs,
        backend,
        adaptive,
        list(replicas) if replicas is not None else None,
        capacity,
        **backend_kwargs,
    )


def open_pipeline(
    stages: Sequence[Callable[[Any], Any] | StageSpec],
    *,
    replicas: Sequence[int] | None = None,
    capacity: int | None = None,
    backend: str | Backend = "threads",
    adaptive: bool | AdaptationConfig = False,
    max_inflight: "int | str | None" = None,
    telemetry=None,
    batching=None,
    **backend_kwargs,
) -> Session:
    """Open a resident streaming pipeline of ``stages`` and return its session.

    The streaming entry point: where :func:`pipeline_1for1` runs one
    bounded batch, this keeps the pipeline warm and hands back a
    :class:`~repro.backend.base.Session` — ``submit(item)`` admits work as
    it arrives (backpressure via the bounded ``max_inflight`` admission
    window), ``results()`` yields ordered outputs *as items complete*,
    ``drain()`` bounds the current stream, and the next ``submit`` starts a
    fresh stream on the same warm executor.  ``backend`` and per-backend
    knobs are as in :func:`pipeline_1for1`.

    ``adaptive=True`` (or an :class:`AdaptationConfig`) attaches a
    :class:`~repro.backend.RuntimeAdaptiveRunner` control loop to the live
    session: it keeps observing and reconfiguring across stream boundaries
    for as long as the session lives.  The simulator backend cannot adapt a
    live session (its controller runs inside simulated time), so
    ``backend="sim"`` with ``adaptive`` is rejected here.

    ``telemetry=`` opts the session into the observability layer
    (:mod:`repro.obs`): pass a :class:`~repro.obs.Telemetry` bundle for
    full control (journal + metrics + Prometheus snapshot + spans), or a
    plain path for the common case of a JSONL event journal.  The session
    closes the telemetry (flushing the journal and writing any snapshot)
    when it closes.

    ``batching=`` turns on transparent micro-batching on the real
    executors: the session coalesces admitted items into size- and
    deadline-bounded batch frames on the hot path and splits them back
    into per-item results on egress — ``submit``/``results``/``Ticket``
    semantics and per-item ordering are unchanged.  Pass ``True`` or
    ``"auto"`` (batch size calibrated from this host's per-item hop
    cost), an int (explicit max items per batch), or a dict of
    :class:`~repro.util.batching.BatchingConfig` fields (``max_items``,
    ``max_bytes``, ``linger_s``).  The simulator ignores it.  With
    batching on, ``max_inflight="auto"`` sizes the admission window from
    the batch size and the measured bottleneck service rate (Little's
    law) instead of a static constant.

    Closing the session also detaches the controller and closes the
    backend when it was built here from a name; a :class:`Backend`
    instance passed in stays open for further sessions.

    >>> session = open_pipeline([lambda x: x + 1])
    >>> session.submit(1), session.submit(2)  # doctest: +ELLIPSIS
    (Ticket(...), Ticket(...))
    >>> session.drain()
    [2, 3]
    >>> session.close()
    """
    pipe = _as_pipeline(stages)
    owns = isinstance(backend, str)
    if owns:
        kwargs = dict(
            replicas=list(replicas) if replicas is not None else None,
            capacity=capacity,
            **backend_kwargs,
        )
        b = make_backend(backend, pipe, **kwargs)
    else:
        if replicas is not None or capacity is not None or backend_kwargs:
            raise ValueError(
                "replicas/capacity/backend kwargs only apply when selecting "
                "a backend by name; a Backend instance is already configured"
            )
        b = make_backend(backend, pipe)
    if adaptive and not b.supports_live_reconfigure:
        if owns:
            b.close()
        raise ValueError(
            f"backend {b.name!r} cannot adapt a live session; open it "
            "without adaptive=, or use pipeline_1for1 for in-sim adaptation"
        )
    try:
        session = b.open(
            max_inflight=max_inflight, telemetry=telemetry, batching=batching
        )
    except BaseException:
        if owns:
            b.close()
        raise
    if adaptive:
        config = adaptive if isinstance(adaptive, AdaptationConfig) else local_config()
        runner = RuntimeAdaptiveRunner(b.pipeline, b, config=config)
        runner.attach(session)
        session.add_close_callback(runner.detach)
    if owns:
        session.add_close_callback(b.close)
    return session


def farm(
    worker: Callable[[Any], Any],
    inputs: Iterable[Any],
    *,
    workers: int = 4,
    capacity: int | None = None,
    backend: str | Backend = "threads",
    adaptive: bool | AdaptationConfig = False,
    **backend_kwargs,
) -> list[Any]:
    """Task-farm ``worker`` over ``inputs`` with ``workers`` replicas.

    A farm is a one-stage replicated pipeline; outputs are in input order.
    ``backend`` picks the substrate by name and ``adaptive`` enables the
    live loop, both as in :func:`pipeline_1for1`; a pre-configured
    :class:`Backend` instance carries its own worker count, so combine
    instances with :func:`pipeline_1for1` instead.
    """
    if not isinstance(backend, str):
        raise ValueError(
            "farm() configures workers itself, so it takes a backend name; "
            "for a pre-configured Backend instance use pipeline_1for1()"
        )
    pipe = _as_pipeline([worker])
    return _run_on_backend(
        pipe, inputs, backend, adaptive, [workers], capacity, **backend_kwargs
    )


def simulate_pipeline(
    pipeline: PipelineSpec,
    grid: GridSystem,
    n_items: int,
    *,
    adaptive: bool | AdaptationConfig = True,
    mapping: Mapping | None = None,
    seed: int = 0,
    **runner_kwargs,
) -> RunResult:
    """Run ``pipeline`` on the simulated ``grid``.

    ``adaptive=True`` uses the default :class:`AdaptationConfig`; pass a
    config instance to tune it, or ``False`` for the static baseline.
    """
    if adaptive is True:
        config: AdaptationConfig | None = AdaptationConfig()
    elif adaptive is False:
        config = None
    else:
        config = adaptive
    runner = AdaptivePipeline(
        pipeline, grid, config=config, initial_mapping=mapping, seed=seed, **runner_kwargs
    )
    return runner.run(n_items)


def simulate_farm(
    work: float,
    grid: GridSystem,
    n_items: int,
    *,
    workers: int | None = None,
    out_bytes: float = 0.0,
    seed: int = 0,
    **runner_kwargs,
) -> RunResult:
    """Simulate a task farm: one replicable stage spread over ``workers``.

    ``workers=None`` uses every processor in the grid.
    """
    pids = grid.pids if workers is None else grid.pids[:workers]
    if not pids:
        raise ValueError("farm needs at least one processor")
    pipe = PipelineSpec(
        (StageSpec(name="farm-worker", work=work, out_bytes=out_bytes),)
    )
    mapping = Mapping((tuple(pids),))
    runner = AdaptivePipeline(
        pipe, grid, config=None, initial_mapping=mapping, seed=seed, **runner_kwargs
    )
    return runner.run(n_items)
