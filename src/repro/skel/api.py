"""Skeleton entry points (the public face a downstream user starts from)."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.core.adaptive import AdaptivePipeline
from repro.core.events import RunResult
from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig
from repro.core.stage import StageSpec
from repro.gridsim.grid import GridSystem
from repro.model.mapping import Mapping
from repro.runtime.threads import ThreadPipeline

__all__ = ["pipeline_1for1", "farm", "simulate_pipeline", "simulate_farm"]


def _as_pipeline(stages: Sequence[Callable[[Any], Any] | StageSpec]) -> PipelineSpec:
    specs: list[StageSpec] = []
    for i, s in enumerate(stages):
        if isinstance(s, StageSpec):
            specs.append(s)
        elif callable(s):
            name = getattr(s, "__name__", f"stage{i}")
            if name == "<lambda>":
                name = f"stage{i}"
            specs.append(StageSpec(name=f"{i}:{name}", fn=s))
        else:
            raise TypeError(f"stage {i} is neither callable nor StageSpec: {s!r}")
    return PipelineSpec(tuple(specs))


def pipeline_1for1(
    stages: Sequence[Callable[[Any], Any] | StageSpec],
    inputs: Iterable[Any],
    *,
    replicas: Sequence[int] | None = None,
    capacity: int = 8,
) -> list[Any]:
    """Run ``inputs`` through a local threaded pipeline of ``stages``.

    Each stage consumes one item and produces one item (``Pipeline1for1``
    semantics); the result list is in input order.  ``replicas[i] > 1``
    farms out stage ``i`` over several worker threads (stateless stages
    only — pass :class:`StageSpec` with ``replicable=False`` to forbid it).

    >>> pipeline_1for1([lambda x: x + 1, lambda x: x * 2], [1, 2, 3])
    [4, 6, 8]
    """
    pipe = _as_pipeline(stages)
    return ThreadPipeline(pipe, replicas=replicas, capacity=capacity).run(inputs)


def farm(
    worker: Callable[[Any], Any],
    inputs: Iterable[Any],
    *,
    workers: int = 4,
    capacity: int = 8,
) -> list[Any]:
    """Task-farm ``worker`` over ``inputs`` with ``workers`` threads.

    A farm is a one-stage replicated pipeline; outputs are in input order.
    """
    pipe = _as_pipeline([worker])
    return ThreadPipeline(pipe, replicas=[workers], capacity=capacity).run(inputs)


def simulate_pipeline(
    pipeline: PipelineSpec,
    grid: GridSystem,
    n_items: int,
    *,
    adaptive: bool | AdaptationConfig = True,
    mapping: Mapping | None = None,
    seed: int = 0,
    **runner_kwargs,
) -> RunResult:
    """Run ``pipeline`` on the simulated ``grid``.

    ``adaptive=True`` uses the default :class:`AdaptationConfig`; pass a
    config instance to tune it, or ``False`` for the static baseline.
    """
    if adaptive is True:
        config: AdaptationConfig | None = AdaptationConfig()
    elif adaptive is False:
        config = None
    else:
        config = adaptive
    runner = AdaptivePipeline(
        pipeline, grid, config=config, initial_mapping=mapping, seed=seed, **runner_kwargs
    )
    return runner.run(n_items)


def simulate_farm(
    work: float,
    grid: GridSystem,
    n_items: int,
    *,
    workers: int | None = None,
    out_bytes: float = 0.0,
    seed: int = 0,
    **runner_kwargs,
) -> RunResult:
    """Simulate a task farm: one replicable stage spread over ``workers``.

    ``workers=None`` uses every processor in the grid.
    """
    pids = grid.pids if workers is None else grid.pids[:workers]
    if not pids:
        raise ValueError("farm needs at least one processor")
    pipe = PipelineSpec(
        (StageSpec(name="farm-worker", work=work, out_bytes=out_bytes),)
    )
    mapping = Mapping((tuple(pids),))
    runner = AdaptivePipeline(
        pipe, grid, config=None, initial_mapping=mapping, seed=seed, **runner_kwargs
    )
    return runner.run(n_items)
