"""Mapping optimisers: exhaustive, greedy, dynamic programming, local search.

Which optimiser the adaptive pipeline uses depends on instance size:

* **exhaustive** — provably best single-assignment mapping; cost
  ``|P|^S`` model evaluations, fine for the small instances of the mapping
  tables (3 stages × 3 processors = 27) and used as the ground truth that
  the cheaper optimisers are tested against;
* **greedy** — heaviest-stage-first list scheduling, O(S·P) evaluations;
* **dp_contiguous** — optimal *contiguous* grouping of stages onto an
  ordered processor subset (the classical chains-on-chains partitioning
  shape), O(S²·P) per processor order;
* **local_search** — hill-climbing repair of any starting mapping, used at
  adaptation time because it naturally minimises movement from the current
  mapping (fewer migrations for the same predicted throughput).

``propose_replication`` implements the farm-conversion decision: grow the
replica set of the bottleneck stage while the model predicts a worthwhile
gain.
"""

from __future__ import annotations

from typing import Sequence

from repro.model.mapping import Mapping, enumerate_mappings
from repro.model.throughput import ModelContext, PipelinePrediction, predict

__all__ = [
    "exhaustive_best_mapping",
    "greedy_mapping",
    "dp_contiguous_mapping",
    "local_search",
    "propose_replication",
]


def exhaustive_best_mapping(
    ctx: ModelContext, pids: Sequence[int] | None = None, max_mappings: int = 2_000_000
) -> PipelinePrediction:
    """Best single-assignment mapping by brute force (small instances)."""
    pids = list(pids) if pids is not None else ctx.view.pids()
    best: PipelinePrediction | None = None
    for m in enumerate_mappings(ctx.n_stages, pids, max_mappings=max_mappings):
        pred = predict(m, ctx)
        if best is None or pred.throughput > best.throughput:
            best = pred
    assert best is not None
    return best


def greedy_mapping(ctx: ModelContext, pids: Sequence[int] | None = None) -> PipelinePrediction:
    """Bottleneck-aware heaviest-stage-first list scheduling.

    Stages are placed in decreasing work order; each candidate processor is
    scored by the *resulting bottleneck period over all stages placed so
    far* (service times only — co-locating a new stage slows every stage
    already on that processor, which a share-myopic greedy misses and pays
    up to a factor-of-|P| for).  Communication is not considered during
    placement (second-order for compute-bound pipelines); the returned
    prediction of course includes it.
    """
    pids = list(pids) if pids is not None else ctx.view.pids()
    order = sorted(
        range(ctx.n_stages), key=lambda i: ctx.stage_costs[i].work, reverse=True
    )
    assignment: dict[int, int] = {}
    share: dict[int, int] = {p: 0 for p in pids}

    def bottleneck_with(stage: int, p: int) -> float:
        share_after = dict(share)
        share_after[p] += 1
        placed = list(assignment.items()) + [(stage, p)]
        return max(
            ctx.stage_costs[s].work * share_after[proc] / ctx.view.eff_speed(proc)
            for s, proc in placed
        )

    for i in order:
        best_p = min(pids, key=lambda p: bottleneck_with(i, p))
        assignment[i] = best_p
        share[best_p] += 1
    mapping = Mapping.single([assignment[i] for i in range(ctx.n_stages)])
    return predict(mapping, ctx)


def _block_time(ctx: ModelContext, lo: int, hi: int, pid: int, prev_pid: int) -> float:
    """Approximate period contribution of stages [lo, hi) fused on ``pid``.

    The block behaves like one server: per-item service is the summed work at
    full effective speed (the block owns the processor in this mapping
    family) plus the boundary transfer from the previous block's processor.
    """
    work = sum(ctx.stage_costs[i].work for i in range(lo, hi))
    svc = work / ctx.view.eff_speed(pid)
    in_bytes = ctx.input_bytes if lo == 0 else ctx.stage_costs[lo - 1].out_bytes
    lat, bw = ctx.view.link(prev_pid, pid)
    xfer = lat + (in_bytes / bw if in_bytes > 0 else 0.0)
    return svc + xfer


def dp_contiguous_mapping(
    ctx: ModelContext, orders: Sequence[Sequence[int]] | None = None
) -> PipelinePrediction:
    """Optimal contiguous partition of stages onto an ordered processor list.

    For each candidate processor order, a DP computes the partition of the
    stage sequence into at most ``len(order)`` contiguous blocks (block *j*
    hosted on the *j*-th processor of the order) minimising the bottleneck
    block time.  By default two orders are tried: processors by descending
    effective speed, and ascending pid (stable/cheap).  Returns the best
    mapping found across orders, evaluated with the full model.
    """
    pids = ctx.view.pids()
    if orders is None:
        by_speed = sorted(pids, key=ctx.view.eff_speed, reverse=True)
        orders = [by_speed, sorted(pids)]
    n = ctx.n_stages
    best: PipelinePrediction | None = None
    for order in orders:
        order = list(order)[: max(1, min(len(order), n))]
        k = len(order)
        INF = float("inf")
        # dp[i][j] = best bottleneck for stages[:i] on the first j processors,
        # with stage i-1 ending block j-1.  choice[i][j] = block start.
        dp = [[INF] * (k + 1) for _ in range(n + 1)]
        choice = [[-1] * (k + 1) for _ in range(n + 1)]
        dp[0][0] = 0.0
        for j in range(1, k + 1):
            pid = order[j - 1]
            prev_pid = ctx.source_pid if j == 1 else order[j - 2]
            for i in range(1, n + 1):
                # Block may be empty only by skipping the processor entirely,
                # which the j-loop upper bound handles; here blocks are >= 1.
                for m in range(i):
                    if dp[m][j - 1] == INF:
                        continue
                    bt = _block_time(ctx, m, i, pid, prev_pid)
                    cand = max(dp[m][j - 1], bt)
                    if cand < dp[i][j]:
                        dp[i][j] = cand
                        choice[i][j] = m
                # Alternatively stage prefix i may already be complete with
                # fewer blocks (leave remaining processors unused).
                if dp[i][j - 1] < dp[i][j]:
                    dp[i][j] = dp[i][j - 1]
                    choice[i][j] = -2  # marker: block j unused
        # Reconstruct the partition from the best final cell.
        j = min(range(1, k + 1), key=lambda jj: dp[n][jj])
        bounds: list[tuple[int, int, int]] = []  # (lo, hi, pid)
        i = n
        while i > 0 and j > 0:
            m = choice[i][j]
            if m == -2:
                j -= 1
                continue
            bounds.append((m, i, order[j - 1]))
            i = m
            j -= 1
        bounds.reverse()
        assignment = [0] * n
        for lo, hi, pid in bounds:
            for s in range(lo, hi):
                assignment[s] = pid
        pred = predict(Mapping.single(assignment), ctx)
        if best is None or pred.throughput > best.throughput:
            best = pred
    assert best is not None
    return best


def local_search(
    start: Mapping,
    ctx: ModelContext,
    *,
    max_iters: int = 200,
    pids: Sequence[int] | None = None,
) -> PipelinePrediction:
    """Lexicographic hill-climb: move one stage's whole replica set per step.

    A move is accepted when it strictly improves the predicted period, or —
    on a **plateau** — keeps the period while strictly reducing the
    processor-load imbalance (sum of squared loads).  The tie-breaker is
    what lets the search drain multi-bottleneck plateaus: with several
    processors tied at the bottleneck period, pure period-improvement is
    stuck, but balance-improving moves spread the load until replication or
    a further move can actually lower the period.

    Deterministic (first-improvement over a fixed move order), so adaptation
    decisions are reproducible.  Replicated stages are moved as a unit by
    re-homing their primary; replica-set *growth* is handled separately by
    :func:`propose_replication`.
    """
    pids = list(pids) if pids is not None else ctx.view.pids()
    current = predict(start, ctx)

    def better(cand: PipelinePrediction, cur: PipelinePrediction) -> bool:
        if cand.period < cur.period * (1.0 - 1e-9):
            return True
        if cand.period <= cur.period * (1.0 + 1e-9):
            return cand.load_imbalance < cur.load_imbalance * (1.0 - 1e-9)
        return False

    for _ in range(max_iters):
        improved = False
        for stage in range(ctx.n_stages):
            reps = current.mapping.replicas(stage)
            for p in pids:
                if p in reps:
                    continue
                # Move: re-home the stage to processor p (dropping replicas —
                # the policy re-grows them if still worthwhile).
                cand_mapping = current.mapping.with_stage(stage, [p])
                cand = predict(cand_mapping, ctx)
                if better(cand, current):
                    current = cand
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return current


def propose_replication(
    mapping: Mapping,
    ctx: ModelContext,
    *,
    max_replicas: int = 4,
    min_gain: float = 1.10,
) -> PipelinePrediction:
    """Grow the bottleneck stage's replica set while the model predicts gain.

    Each iteration finds the current predicted bottleneck stage; if it is
    replicable and under the replica cap, the candidate processor giving the
    best predicted throughput is added.  Stops when the relative gain of the
    best single addition falls below ``min_gain``.
    """
    if min_gain < 1.0:
        raise ValueError(f"min_gain must be >= 1.0, got {min_gain}")
    current = predict(mapping, ctx)
    pids = ctx.view.pids()
    while True:
        stage = current.bottleneck_stage
        if stage < 0:  # sink transfer dominates; replication cannot help
            return current
        cost = ctx.stage_costs[stage]
        reps = current.mapping.replicas(stage)
        if not cost.replicable or len(reps) >= max_replicas:
            return current
        best_cand: PipelinePrediction | None = None
        for p in pids:
            if p in reps:
                continue
            cand = predict(current.mapping.with_stage(stage, list(reps) + [p]), ctx)
            if best_cand is None or cand.throughput > best_cand.throughput:
                best_cand = cand
        if best_cand is None or best_cand.throughput < current.throughput * min_gain:
            return current
        current = best_cand
