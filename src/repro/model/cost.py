"""Migration cost: what acting on a decision costs.

Re-mapping a stage is not free: the pipeline segment drains, stage state
moves over a real link, and the stage restarts elsewhere.  The policy adapts
only when the predicted steady-state gain amortises this cost over the
remaining work (see :meth:`MigrationCostModel.worthwhile`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.mapping import Mapping
from repro.model.throughput import ModelContext, _transfer_time
from repro.util.validation import check_non_negative

__all__ = ["MigrationCostModel"]


@dataclass(frozen=True)
class MigrationCostModel:
    """Per-stage restart overhead plus state-transfer time.

    ``restart_overhead`` — fixed seconds per moved/replicated stage
    (process launch, channel re-wiring).
    ``drain_slack`` — extra seconds allowed for in-flight items to clear the
    affected segment (a small constant works because channel capacities are
    small; the simulator pays actual drain time on top).
    """

    restart_overhead: float = 0.25
    drain_slack: float = 0.1

    def __post_init__(self) -> None:
        check_non_negative(self.restart_overhead, "restart_overhead")
        check_non_negative(self.drain_slack, "drain_slack")

    def estimate(self, old: Mapping, new: Mapping, ctx: ModelContext) -> float:
        """Seconds to transform ``old`` into ``new``.

        For every stage whose replica set changes, charge a restart plus the
        transfer of its state from the old primary to each *newly added*
        processor over the actual link.
        """
        total = 0.0
        for stage in old.moved_stages(new):
            cost = ctx.stage_costs[stage]
            old_reps = set(old.replicas(stage))
            new_reps = set(new.replicas(stage))
            added = new_reps - old_reps
            src = old.primary(stage)
            total += self.restart_overhead
            for dst in added:
                total += _transfer_time(ctx.view, src, dst, cost.state_bytes)
        if total > 0.0:
            total += self.drain_slack
        return total

    def worthwhile(
        self,
        old_period: float,
        new_period: float,
        migration_seconds: float,
        remaining_items: int,
    ) -> bool:
        """Does the saving over the remaining items exceed the cost?

        Saving per item is ``old_period - new_period``; with ``n`` items
        still to process the migration pays off iff
        ``n · (old_period − new_period) > migration_seconds``.
        """
        if remaining_items <= 0:
            return False
        saving = (old_period - new_period) * remaining_items
        return saving > migration_seconds
