"""Steady-state pipeline performance prediction.

The model mirrors the simulator's execution semantics (see
``repro.core.executor_sim``): each stage replica is a sequential server whose
per-item cycle is *receive transfer + service*; replicas of a stage serve in
parallel; stages co-located on one processor contend for its CPU; the sink
serialises final-output transfers.

Steady-state throughput is computed from two families of bounds on the
pipeline period (seconds per item), taking the largest:

* **processor bound** — every item visits every stage, so processor ``p``
  must spend ``Σ_i f_{i,p} · w_i / eff(p)`` CPU seconds per item, where
  ``f_{i,p}`` is the fraction of the stream stage ``i``'s replica on ``p``
  handles (1 for unreplicated stages);
* **replica serial bound** — a replica is a sequential server: its share of
  the stream costs ``f_{i,p} · (x̄_in(i,p) + w_i / eff(p))`` per item
  (receive transfer + uncontended service);
* **sink bound** — the sink pays the final transfer per item, serially.

Replica stream fractions ``f_{i,p}`` are set rate-proportionally (a faster
replica pulls more items off the shared FIFO channel), estimated from the
contention-inclusive cycle ``x̄_in + w_i · share(p) / eff(p)``.

Approximations (validated in experiment E9):

* *mean-value* — stochastic service-time distributions enter only through
  their means; queueing/blocking second-order effects are ignored;
* transfers into a replica are averaged over upstream replicas, weighted by
  the upstream stream fractions;
* the FIFO channel's self-balancing of replica loads is approximated by the
  rate-proportional fractions rather than solved exactly (an LP would give
  the true optimum; FIFO tracks the proportional split closely).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.gridsim.grid import GridSnapshot
from repro.monitor.resource_monitor import ResourceEstimates
from repro.model.mapping import Mapping
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "StageCost",
    "ModelContext",
    "PipelinePrediction",
    "ResourceView",
    "fn_view",
    "snapshot_view",
    "estimates_view",
    "predict",
]


@dataclass(frozen=True)
class StageCost:
    """What the model needs to know about one stage.

    ``work`` — mean work units per item (1 unit = 1 second on an unloaded
    reference processor of speed 1.0).
    ``out_bytes`` — bytes sent downstream per item.
    ``replicable`` — stateless stages may be replicated; stateful may not.
    ``state_bytes`` — size of migratable stage state (for migration cost).
    """

    work: float
    out_bytes: float = 0.0
    replicable: bool = True
    state_bytes: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.work, "work")
        check_non_negative(self.out_bytes, "out_bytes")
        check_non_negative(self.state_bytes, "state_bytes")


class ResourceView:
    """Uniform resource interface over ground truth or monitor estimates."""

    def eff_speed(self, pid: int) -> float:
        """Effective work-units/second of a processor."""
        raise NotImplementedError

    def link(self, a: int, b: int) -> tuple[float, float]:
        """(latency_s, bandwidth_Bps) for the ``a``→``b`` pair."""
        raise NotImplementedError

    def pids(self) -> list[int]:
        raise NotImplementedError


class _FnView(ResourceView):
    def __init__(
        self,
        eff: Callable[[int], float],
        link: Callable[[int, int], tuple[float, float]],
        pids: list[int],
    ) -> None:
        self._eff = eff
        self._link = link
        self._pids = pids

    def eff_speed(self, pid: int) -> float:
        return self._eff(pid)

    def link(self, a: int, b: int) -> tuple[float, float]:
        return self._link(a, b)

    def pids(self) -> list[int]:
        return list(self._pids)


def fn_view(
    eff: Callable[[int], float],
    link: Callable[[int, int], tuple[float, float]],
    pids: list[int],
) -> ResourceView:
    """A :class:`ResourceView` from plain callables.

    The seam real backends use to describe their measured world (host load,
    socket transfer times) to the planner without a simulated grid.
    """
    return _FnView(eff=eff, link=link, pids=pids)


def snapshot_view(snap: GridSnapshot) -> ResourceView:
    """Ground-truth view from a :class:`GridSnapshot` (oracle experiments)."""
    return _FnView(
        eff=lambda pid: snap.effective_speed[pid],
        link=lambda a, b: snap.links[(a, b)],
        pids=sorted(snap.speed),
    )


def estimates_view(
    est: ResourceEstimates, nominal_speeds: dict[int, float]
) -> ResourceView:
    """Monitor-forecast view — what the adaptive pipeline actually uses."""
    return _FnView(
        eff=lambda pid: nominal_speeds[pid] * est.availability[pid],
        link=lambda a, b: (est.latency[(a, b)], est.bandwidth[(a, b)]),
        pids=sorted(nominal_speeds),
    )


@dataclass(frozen=True)
class ModelContext:
    """Everything needed to evaluate a mapping: stages + resources + endpoints.

    ``source_pid``/``sink_pid`` locate the input producer and output consumer
    (the "user" in the grid-scheduling tables); ``input_bytes`` is the size
    of one raw input item.
    """

    stage_costs: tuple[StageCost, ...]
    view: ResourceView
    source_pid: int
    sink_pid: int
    input_bytes: float = 0.0

    def __post_init__(self) -> None:
        if not self.stage_costs:
            raise ValueError("model context needs at least one stage")
        check_non_negative(self.input_bytes, "input_bytes")

    @property
    def n_stages(self) -> int:
        return len(self.stage_costs)

    def with_view(self, view: ResourceView) -> "ModelContext":
        return ModelContext(
            stage_costs=self.stage_costs,
            view=view,
            source_pid=self.source_pid,
            sink_pid=self.sink_pid,
            input_bytes=self.input_bytes,
        )


@dataclass(frozen=True)
class PipelinePrediction:
    """Model output for one mapping."""

    mapping: Mapping
    period: float
    throughput: float
    latency: float
    bottleneck_stage: int  # -1 means the sink transfer dominates
    stage_periods: tuple[float, ...] = field(default=())
    sink_transfer: float = 0.0
    # (pid, CPU-seconds per item) per used processor, sorted by pid.
    proc_loads: tuple[tuple[int, float], ...] = field(default=())

    def makespan(self, n_items: int) -> float:
        """Predicted completion time for ``n_items`` (fill + steady drain)."""
        check_positive(n_items, "n_items")
        return self.latency + (n_items - 1) * self.period

    @property
    def load_imbalance(self) -> float:
        """Sum of squared processor loads — the plateau tie-breaker.

        Two mappings with equal bottleneck period can differ in how much
        slack they leave: spreading load lowers this metric and opens the
        door to subsequent replication (see ``local_search``).
        """
        return sum(load * load for _, load in self.proc_loads)


def _transfer_time(view: ResourceView, a: int, b: int, nbytes: float) -> float:
    lat, bw = view.link(a, b)
    return lat + (nbytes / bw if nbytes > 0 else 0.0)


def predict(mapping: Mapping, ctx: ModelContext) -> PipelinePrediction:
    """Predict steady-state performance of ``mapping`` under ``ctx``.

    Raises ``ValueError`` if the mapping's stage count disagrees with the
    context or a non-replicable stage is replicated.
    """
    if mapping.n_stages != ctx.n_stages:
        raise ValueError(
            f"mapping covers {mapping.n_stages} stages, context has {ctx.n_stages}"
        )
    view = ctx.view
    share = mapping.share_counts()
    latency = 0.0
    proc_cpu: dict[int, float] = {}  # CPU seconds per pipeline item
    # Per-stage serial bound (max over that stage's replicas) — also the
    # per-stage quantity reported in PipelinePrediction.stage_periods.
    stage_periods: list[float] = []
    # Contribution of each stage to each processor's CPU bound, used to
    # attribute a processor-bound bottleneck to a stage.
    contribution: dict[tuple[int, int], float] = {}

    # Upstream stream fractions: pid -> fraction of items produced there.
    upstream: dict[int, float] = {ctx.source_pid: 1.0}
    in_bytes = ctx.input_bytes
    for i, cost in enumerate(ctx.stage_costs):
        reps = mapping.replicas(i)
        if len(reps) > 1 and not cost.replicable:
            raise ValueError(f"stage {i} is stateful and cannot be replicated")
        # Receive transfer per replica, weighted by upstream fractions.
        xfer_in = {
            p: sum(
                fq * _transfer_time(view, q, p, in_bytes)
                for q, fq in upstream.items()
            )
            for p in reps
        }
        # Rate-proportional stream fractions from contention-inclusive cycles.
        cycle = {
            p: xfer_in[p] + cost.work * share[p] / view.eff_speed(p) for p in reps
        }
        inv = {p: (1.0 / c if c > 0 else math.inf) for p, c in cycle.items()}
        if any(math.isinf(v) for v in inv.values()):
            # Zero-cost stage: split uniformly, bounds below come out 0.
            f = {p: 1.0 / len(reps) for p in reps}
        else:
            total = sum(inv.values())
            f = {p: inv[p] / total for p in reps}
        serial = 0.0
        for p in reps:
            svc = cost.work / view.eff_speed(p)
            serial = max(serial, f[p] * (xfer_in[p] + svc))
            proc_cpu[p] = proc_cpu.get(p, 0.0) + f[p] * svc
            contribution[(i, p)] = f[p] * svc
        stage_periods.append(serial)
        latency += sum(f[p] * cycle[p] for p in reps)
        upstream = f
        in_bytes = cost.out_bytes

    sink_xfer = sum(
        fq * _transfer_time(view, q, ctx.sink_pid, in_bytes)
        for q, fq in upstream.items()
    )
    latency += sink_xfer

    period = max(stage_periods) if stage_periods else 0.0
    bottleneck = int(max(range(len(stage_periods)), key=lambda i: stage_periods[i]))
    if proc_cpu:
        worst_proc = max(proc_cpu, key=proc_cpu.get)
        if proc_cpu[worst_proc] > period:
            period = proc_cpu[worst_proc]
            # Attribute to the stage contributing most CPU on that processor.
            bottleneck = max(
                (i for i in range(ctx.n_stages) if (i, worst_proc) in contribution),
                key=lambda i: contribution[(i, worst_proc)],
            )
    if sink_xfer > period:
        period = sink_xfer
        bottleneck = -1
    throughput = 1.0 / period if period > 0 else float("inf")
    return PipelinePrediction(
        mapping=mapping,
        period=period,
        throughput=throughput,
        latency=latency,
        bottleneck_stage=bottleneck,
        stage_periods=tuple(stage_periods),
        sink_transfer=sink_xfer,
        proc_loads=tuple(sorted(proc_cpu.items())),
    )
