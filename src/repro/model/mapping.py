"""Stage-to-processor mappings.

A :class:`Mapping` assigns every pipeline stage a non-empty set of processor
ids.  One pid per stage is the classic pipeline mapping (the tuple notation
``(1, 1, 2)`` of the grid-scheduling literature: stages 1–2 on processor 1,
stage 3 on processor 2); multiple pids mean the stage is *replicated* —
executed as an embedded task farm across those processors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Mapping", "enumerate_mappings", "random_mapping"]


@dataclass(frozen=True)
class Mapping:
    """Immutable assignment of stages to processor replica-sets."""

    stages: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("mapping must cover at least one stage")
        for i, reps in enumerate(self.stages):
            if not reps:
                raise ValueError(f"stage {i} has no processors assigned")
            if len(set(reps)) != len(reps):
                raise ValueError(f"stage {i} lists a processor twice: {reps}")

    # -- constructors -------------------------------------------------------
    @staticmethod
    def single(pids: Sequence[int]) -> "Mapping":
        """One processor per stage: ``Mapping.single([0, 1, 1])``."""
        return Mapping(tuple((int(p),) for p in pids))

    # -- queries --------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        return len(self.stages)

    def replicas(self, stage: int) -> tuple[int, ...]:
        """Processor ids executing ``stage``."""
        return self.stages[stage]

    def primary(self, stage: int) -> int:
        """First (canonical) processor of a stage."""
        return self.stages[stage][0]

    def processors_used(self) -> set[int]:
        return {p for reps in self.stages for p in reps}

    def share_counts(self) -> dict[int, int]:
        """How many stage-replicas each processor hosts (CPU share divisor)."""
        counts: dict[int, int] = {}
        for reps in self.stages:
            for p in reps:
                counts[p] = counts.get(p, 0) + 1
        return counts

    def is_replicated(self) -> bool:
        return any(len(reps) > 1 for reps in self.stages)

    # -- derivation -----------------------------------------------------------
    def with_stage(self, stage: int, replicas: Sequence[int]) -> "Mapping":
        """Copy with one stage's replica set changed."""
        stages = list(self.stages)
        stages[stage] = tuple(int(p) for p in replicas)
        return Mapping(tuple(stages))

    def moved_stages(self, other: "Mapping") -> list[int]:
        """Stage indices whose replica sets differ between self and other."""
        if other.n_stages != self.n_stages:
            raise ValueError(
                f"mappings cover different stage counts: {self.n_stages} vs {other.n_stages}"
            )
        return [i for i in range(self.n_stages) if self.stages[i] != other.stages[i]]

    def __str__(self) -> str:
        parts = []
        for reps in self.stages:
            parts.append(str(reps[0]) if len(reps) == 1 else "{" + ",".join(map(str, reps)) + "}")
        return "(" + ",".join(parts) + ")"


def enumerate_mappings(
    n_stages: int, pids: Sequence[int], max_mappings: int | None = None
) -> Iterator[Mapping]:
    """All single-assignment mappings (|pids|^n_stages of them).

    ``max_mappings`` guards against accidental explosion; exceeding it raises
    instead of silently truncating.
    """
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    if not pids:
        raise ValueError("no processors to map onto")
    total = len(pids) ** n_stages
    if max_mappings is not None and total > max_mappings:
        raise ValueError(
            f"{total} mappings exceed the cap of {max_mappings}; "
            "use the greedy/DP optimisers for large instances"
        )
    for combo in itertools.product(pids, repeat=n_stages):
        yield Mapping.single(combo)


def random_mapping(
    n_stages: int, pids: Sequence[int], rng: np.random.Generator
) -> Mapping:
    """Uniformly random single-assignment mapping (for fidelity studies)."""
    if not pids:
        raise ValueError("no processors to map onto")
    choice = rng.choice(np.asarray(list(pids)), size=n_stages, replace=True)
    return Mapping.single([int(p) for p in choice])
