"""Queueing refinements: what the mean-value model deliberately ignores.

The throughput model in :mod:`repro.model.throughput` is mean-value — exact
for deterministic service (E9) but blind to *variability*.  This module adds
the standard GI/G/1 machinery the pattern uses for one decision the mean
model cannot make: **how large inter-stage buffers should be** when service
times are bursty (experiment E8 measures the phenomenon; these formulas
explain and predict it).

The two-moment approximations used (Allen–Cunneen / Marchal) are the
workhorses of capacity planning; they need only utilisation and the squared
coefficients of variation of inter-arrival and service times — quantities
the instrumentation layer already measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "QueueEstimate",
    "gg1_waiting_time",
    "gg1_queue_length",
    "mm1_waiting_time",
    "suggest_buffer_capacity",
]


@dataclass(frozen=True)
class QueueEstimate:
    """Steady-state estimates for one stage viewed as a GI/G/1 server."""

    utilisation: float
    waiting_time: float  # seconds an item waits before service
    queue_length: float  # mean items waiting (not in service)

    @property
    def stable(self) -> bool:
        return self.utilisation < 1.0


def mm1_waiting_time(arrival_rate: float, service_rate: float) -> float:
    """Mean waiting time of an M/M/1 queue (exponential/exponential).

    Returns ``inf`` for an unstable queue (utilisation >= 1).
    """
    check_positive(arrival_rate, "arrival_rate")
    check_positive(service_rate, "service_rate")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        return math.inf
    return rho / (service_rate - arrival_rate)


def gg1_waiting_time(
    arrival_rate: float,
    service_rate: float,
    ca2: float,
    cs2: float,
) -> float:
    """Allen–Cunneen approximation of GI/G/1 mean waiting time.

    ``Wq ≈ (ρ / (1 − ρ)) · ((ca² + cs²) / 2) · (1 / μ)``

    where ``ca²``/``cs²`` are the squared coefficients of variation of
    inter-arrival and service times.  Exact for M/M/1 (ca²=cs²=1); the
    standard engineering estimate elsewhere.  Returns ``inf`` when unstable.
    """
    check_positive(arrival_rate, "arrival_rate")
    check_positive(service_rate, "service_rate")
    check_non_negative(ca2, "ca2")
    check_non_negative(cs2, "cs2")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        return math.inf
    return (rho / (1.0 - rho)) * ((ca2 + cs2) / 2.0) / service_rate


def gg1_queue_length(
    arrival_rate: float,
    service_rate: float,
    ca2: float,
    cs2: float,
) -> QueueEstimate:
    """Full GI/G/1 estimate: utilisation, waiting time, queue length.

    Queue length follows from Little's law: ``Lq = λ · Wq``.
    """
    wq = gg1_waiting_time(arrival_rate, service_rate, ca2, cs2)
    rho = arrival_rate / service_rate
    lq = arrival_rate * wq if math.isfinite(wq) else math.inf
    return QueueEstimate(utilisation=rho, waiting_time=wq, queue_length=lq)


def suggest_buffer_capacity(
    utilisation: float,
    cs2: float,
    *,
    ca2: float = 1.0,
    slack: float = 2.0,
    min_capacity: int = 1,
    max_capacity: int = 64,
) -> int:
    """Recommend an inter-stage buffer capacity.

    Sizes the buffer to hold the predicted mean queue plus ``slack`` standard
    deviations' worth of burst (approximating the queue distribution's tail
    with its mean — conservative for the moderate utilisations pipelines run
    at).  Deterministic traffic (``cs2 ≈ 0``) yields the minimum; high-CV
    service grows the recommendation, saturating at ``max_capacity``.

    This reproduces the qualitative advice experiment E8 validates: buffers
    matter only under variability, with diminishing returns.
    """
    if not 0.0 < utilisation < 1.0:
        raise ValueError(f"utilisation must be in (0, 1), got {utilisation}")
    check_non_negative(cs2, "cs2")
    check_non_negative(ca2, "ca2")
    check_positive(slack, "slack")
    if min_capacity < 1 or max_capacity < min_capacity:
        raise ValueError(
            f"need 1 <= min_capacity <= max_capacity, got [{min_capacity}, {max_capacity}]"
        )
    # Lq for a unit-rate server at this utilisation (scale-free).
    lq = (utilisation * utilisation / (1.0 - utilisation)) * ((ca2 + cs2) / 2.0)
    recommended = int(math.ceil(min_capacity + slack * lq))
    return max(min_capacity, min(max_capacity, recommended))
