"""Analytic performance model of a pipeline on a grid.

The *decide* step of the adaptive pattern ranks candidate stage-to-processor
mappings without running them.  This package provides:

* :mod:`repro.model.mapping` — the :class:`Mapping` type (per-stage replica
  sets) and mapping enumeration;
* :mod:`repro.model.throughput` — steady-state throughput / latency /
  makespan prediction via bottleneck analysis with communication costs;
* :mod:`repro.model.optimizer` — exhaustive, greedy, dynamic-programming and
  local-search mapping optimisers, plus bottleneck-replication proposals;
* :mod:`repro.model.cost` — the migration-cost model used to decide whether
  a predicted improvement amortises the cost of acting on it.

The model is deliberately *mean-value*: it predicts steady-state behaviour
from per-stage mean work and link parameters.  Experiment E9 quantifies its
fidelity against the discrete-event simulator.
"""

from repro.model.cost import MigrationCostModel
from repro.model.mapping import Mapping, enumerate_mappings, random_mapping
from repro.model.optimizer import (
    dp_contiguous_mapping,
    exhaustive_best_mapping,
    greedy_mapping,
    local_search,
    propose_replication,
)
from repro.model.throughput import (
    ModelContext,
    PipelinePrediction,
    StageCost,
    estimates_view,
    predict,
    snapshot_view,
)

__all__ = [
    "Mapping",
    "MigrationCostModel",
    "ModelContext",
    "PipelinePrediction",
    "StageCost",
    "dp_contiguous_mapping",
    "enumerate_mappings",
    "estimates_view",
    "exhaustive_best_mapping",
    "greedy_mapping",
    "local_search",
    "predict",
    "propose_replication",
    "random_mapping",
    "snapshot_view",
]
