"""Parameter sweeps with repetitions and seed control.

``sweep`` runs ``fn(seed=..., **params)`` for every combination in a
parameter grid × repetition, collecting tidy row dicts (params + returned
metrics).  ``aggregate`` reduces repetitions to mean/std per metric.  The
benchmark harnesses are thin wrappers over these two calls.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.util.rng import derive_seed

__all__ = ["sweep", "aggregate"]


def sweep(
    fn: Callable[..., Mapping[str, float]],
    grid: Mapping[str, Sequence[Any]],
    *,
    repetitions: int = 1,
    base_seed: int = 0,
) -> list[dict[str, Any]]:
    """Run ``fn`` over the Cartesian product of ``grid`` × repetitions.

    ``fn`` receives each grid parameter as a keyword argument plus ``seed``
    (derived deterministically from ``base_seed``, the parameter values and
    the repetition index) and must return a mapping of metric name → value.
    Each result row contains the parameters, ``rep``, ``seed`` and the
    metrics.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    names = list(grid.keys())
    rows: list[dict[str, Any]] = []
    for combo in itertools.product(*(grid[n] for n in names)):
        params = dict(zip(names, combo))
        for rep in range(repetitions):
            seed = derive_seed(
                base_seed, *(f"{k}={v}" for k, v in params.items()), f"rep{rep}"
            )
            metrics = fn(seed=seed, **params)
            row: dict[str, Any] = dict(params)
            row["rep"] = rep
            row["seed"] = seed
            row.update(metrics)
            rows.append(row)
    return rows


def aggregate(
    rows: Sequence[Mapping[str, Any]],
    group_by: Sequence[str],
    metrics: Sequence[str],
) -> list[dict[str, Any]]:
    """Mean/std of ``metrics`` per distinct ``group_by`` combination.

    Output rows carry the group keys plus ``<metric>_mean`` and
    ``<metric>_std`` columns, in first-appearance order of the groups.
    """
    groups: dict[tuple, list[Mapping[str, Any]]] = {}
    order: list[tuple] = []
    for row in rows:
        key = tuple(row[g] for g in group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    out = []
    for key in order:
        bucket = groups[key]
        rec: dict[str, Any] = dict(zip(group_by, key))
        rec["n"] = len(bucket)
        for m in metrics:
            vals = np.asarray([float(r[m]) for r in bucket])
            rec[f"{m}_mean"] = float(vals.mean())
            rec[f"{m}_std"] = float(vals.std(ddof=1)) if vals.size > 1 else 0.0
        out.append(rec)
    return out
