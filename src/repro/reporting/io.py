"""Persistence for experiment results: tidy rows ↔ CSV.

Benchmark sweeps produce lists of flat dictionaries (see
:func:`repro.reporting.experiment.sweep`); these helpers round-trip them to
CSV so results can be archived, diffed between runs, and analysed outside
Python.  Values are restored with best-effort typing (int → float → str).
"""

from __future__ import annotations

import csv
import pathlib
from typing import Any, Mapping, Sequence

__all__ = ["write_rows_csv", "read_rows_csv"]


def write_rows_csv(
    path: str | pathlib.Path,
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
) -> None:
    """Write result rows to ``path`` as CSV.

    ``columns`` fixes the column order; by default the union of keys in
    first-appearance order is used.  Missing values are written empty.
    """
    path = pathlib.Path(path)
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c, "") for c in columns})


def _coerce(text: str) -> Any:
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def read_rows_csv(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Read rows written by :func:`write_rows_csv`, re-typing values."""
    path = pathlib.Path(path)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        return [{k: _coerce(v) for k, v in row.items()} for row in reader]
