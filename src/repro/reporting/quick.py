"""Quick-mode switch for the benchmark harnesses.

CI runs every experiment in a smoke configuration (``REPRO_BENCH_QUICK=1``)
so benchmark scripts cannot silently rot: imports, wiring and rendering are
exercised on every push at a fraction of the full item counts.  Quantitative
shape assertions are only meaningful at full size, so harnesses guard them
with :func:`quick_mode` and size their sweeps through :func:`scaled`.
"""

from __future__ import annotations

import os
from typing import TypeVar

__all__ = ["quick_mode", "scaled"]

T = TypeVar("T")


def quick_mode() -> bool:
    """True when ``REPRO_BENCH_QUICK`` asks for smoke-sized benchmark runs."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def scaled(full: T, quick: T) -> T:
    """``full`` normally; ``quick`` under ``REPRO_BENCH_QUICK=1``."""
    return quick if quick_mode() else full
