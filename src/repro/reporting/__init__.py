"""Experiment harness support: sweeps, shape assertions, rendering.

* :mod:`repro.reporting.experiment` — run parameter sweeps with repetitions
  and seed control, collect tidy row dictionaries, aggregate;
* :mod:`repro.reporting.shapes` — qualitative-shape assertions (monotonic,
  ratio bounds, crossover position) used by the benchmark harnesses to check
  that reproduced results have the *shape* the paper claims;
* :mod:`repro.reporting.render` — experiment headers and result tables for
  ``bench_output.txt`` / ``EXPERIMENTS.md``.
"""

from repro.reporting.experiment import aggregate, sweep
from repro.reporting.io import read_rows_csv, write_rows_csv
from repro.reporting.quick import quick_mode, scaled
from repro.reporting.render import experiment_header, rows_table
from repro.reporting.shapes import (
    assert_monotonic,
    assert_ratio_at_least,
    assert_within,
    find_crossover,
)

__all__ = [
    "aggregate",
    "assert_monotonic",
    "assert_ratio_at_least",
    "assert_within",
    "experiment_header",
    "find_crossover",
    "quick_mode",
    "read_rows_csv",
    "rows_table",
    "scaled",
    "sweep",
    "write_rows_csv",
]
