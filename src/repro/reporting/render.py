"""Rendering helpers for benchmark output files."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.util.tables import render_table

__all__ = ["experiment_header", "rows_table"]


def experiment_header(exp_id: str, title: str, claim: str) -> str:
    """Uniform banner for each experiment in ``bench_output.txt``."""
    bar = "=" * 78
    return (
        f"\n{bar}\n"
        f"{exp_id}: {title}\n"
        f"claim: {claim}\n"
        f"{bar}"
    )


def rows_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    *,
    digits: int = 4,
    title: str | None = None,
) -> str:
    """Render selected columns of tidy result rows as an aligned table."""
    body = [[row.get(c, "") for c in columns] for row in rows]
    return render_table(list(columns), body, digits=digits, title=title)
