"""Qualitative-shape assertions for reproduced results.

The reproduction contract is about *shape*, not absolute numbers: who wins,
by roughly what factor, where trends bend.  These helpers let benchmark
harnesses assert exactly that, with tolerances, and produce readable
failures when a shape breaks.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "assert_monotonic",
    "assert_ratio_at_least",
    "assert_within",
    "find_crossover",
]


def assert_monotonic(
    values: Sequence[float],
    *,
    increasing: bool = True,
    tolerance: float = 0.05,
    label: str = "series",
) -> None:
    """Assert a series trends monotonically, allowing ``tolerance`` dips.

    Each step may violate monotonicity by at most ``tolerance`` (relative to
    the previous value) — simulation noise should not fail a shape check.
    """
    for i, (a, b) in enumerate(zip(values, values[1:])):
        if increasing:
            ok = b >= a * (1.0 - tolerance)
        else:
            ok = b <= a * (1.0 + tolerance)
        if not ok:
            direction = "increasing" if increasing else "decreasing"
            raise AssertionError(
                f"{label} not {direction} at index {i}: {a:.6g} -> {b:.6g} "
                f"(tolerance {tolerance:.0%}); full series: "
                f"{[round(v, 4) for v in values]}"
            )


def assert_ratio_at_least(
    numerator: float, denominator: float, ratio: float, *, label: str = "ratio"
) -> None:
    """Assert ``numerator / denominator >= ratio`` with a readable failure."""
    if denominator <= 0:
        raise AssertionError(f"{label}: denominator must be > 0, got {denominator}")
    actual = numerator / denominator
    if actual < ratio:
        raise AssertionError(
            f"{label}: expected at least x{ratio:.2f}, measured x{actual:.2f} "
            f"({numerator:.6g} / {denominator:.6g})"
        )


def assert_within(
    value: float, expected: float, rel: float, *, label: str = "value"
) -> None:
    """Assert ``value`` is within ``rel`` relative error of ``expected``."""
    if math.isnan(value) or math.isnan(expected):
        raise AssertionError(f"{label}: NaN encountered ({value} vs {expected})")
    if expected == 0:
        ok = abs(value) <= rel
    else:
        ok = abs(value - expected) / abs(expected) <= rel
    if not ok:
        raise AssertionError(
            f"{label}: {value:.6g} not within {rel:.0%} of {expected:.6g}"
        )


def find_crossover(xs: Sequence[float], a: Sequence[float], b: Sequence[float]) -> float:
    """First x where series ``a`` overtakes series ``b`` (NaN if never).

    Uses linear interpolation between samples for a smoother estimate.
    """
    if not (len(xs) == len(a) == len(b)):
        raise ValueError("xs, a, b must have equal lengths")
    for i in range(len(xs)):
        if a[i] >= b[i]:
            if i == 0:
                return float(xs[0])
            # Interpolate between i-1 and i on the difference d = a - b.
            d0 = a[i - 1] - b[i - 1]
            d1 = a[i] - b[i]
            if d1 == d0:
                return float(xs[i])
            frac = -d0 / (d1 - d0)
            return float(xs[i - 1] + frac * (xs[i] - xs[i - 1]))
    return math.nan
