"""Pluggable execution backends for the adaptive pipeline pattern.

The :class:`~repro.backend.base.Backend` port decouples *what* a pipeline
computes (a :class:`~repro.core.pipeline.PipelineSpec`) from *where* it
executes — the same separation task-parallel frameworks like Pipeflow draw
between pipeline structure and scheduling substrate.  Since the streaming
refactor the port is **session-oriented**: ``backend.open()`` returns a
long-lived :class:`~repro.backend.base.Session` with ``submit`` /
``results`` / ``drain`` / ``close`` — pipelines stay warm, accept work as
it arrives, and emit results as an ordered stream; ``run()`` is the
bounded-stream convenience on top.  Five adapters ship:

* ``"sim"`` — :class:`SimBackend`, the discrete-event grid simulator
  (simulated time; sessions via a batch-emulation shim; adaptation via the
  in-sim controller);
* ``"threads"`` — :class:`ThreadBackend`, the local thread runtime (for
  GIL-releasing kernels and portable correctness runs; session-owned
  worker threads stay warm across streams);
* ``"processes"`` — :class:`ProcessPoolBackend`, warm pre-forked process
  pools per stage (true multi-core for CPU-bound Python stages; pools
  survive across streams, items travel through a :mod:`repro.transport`
  codec with a warm-up-calibrated shared-memory threshold);
* ``"asyncio"`` — :class:`AsyncioBackend`, coroutine pools on a dedicated
  event-loop thread (I/O-bound stages; semaphore-bounded admission on the
  resident loop);
* ``"distributed"`` — :class:`DistributedBackend`, TCP-socket workers on
  this or other hosts (the paper's actual setting: real link costs, node
  loss, load-derived speeds; worker links and replica placement stay warm
  between streams, epoch guards scope exactly-once delivery to a stream —
  see ``docs/distributed.md`` and ``docs/streaming.md``).

:class:`RuntimeAdaptiveRunner` runs the paper's observe→decide→act loop
against any live backend using wall-clock measurements — attached to a
session, so adaptation continues across stream boundaries — reusing the
exact policies (:class:`~repro.core.policy.AdaptationPolicy`,
:class:`~repro.core.policies_alt.ReactivePolicy`,
:class:`BottleneckGrowthPolicy`) the simulator exercises.

See ``docs/backends.md`` for the contract and selection guidance, and
``docs/streaming.md`` for the session lifecycle.
"""

from repro.backend.async_backend import AsyncioBackend
from repro.backend.base import (
    Backend,
    BackendCapabilityError,
    BackendResult,
    Session,
    SessionClosed,
    SessionStats,
    Ticket,
    available_backends,
    capability_error,
    make_backend,
    register_backend,
)
from repro.backend.distributed import DistributedBackend, WorkerAgent
from repro.backend.process_backend import ProcessPoolBackend
from repro.backend.runner import (
    BottleneckGrowthPolicy,
    RuntimeAdaptiveRunner,
    RuntimeRunResult,
    local_config,
)
from repro.backend.sim_backend import SimBackend
from repro.backend.thread_backend import ThreadBackend

__all__ = [
    "AsyncioBackend",
    "Backend",
    "BackendCapabilityError",
    "BackendResult",
    "BottleneckGrowthPolicy",
    "DistributedBackend",
    "ProcessPoolBackend",
    "RuntimeAdaptiveRunner",
    "RuntimeRunResult",
    "Session",
    "SessionClosed",
    "SessionStats",
    "SimBackend",
    "ThreadBackend",
    "Ticket",
    "WorkerAgent",
    "available_backends",
    "capability_error",
    "local_config",
    "make_backend",
    "register_backend",
]
