"""Pluggable execution backends for the adaptive pipeline pattern.

The :class:`~repro.backend.base.Backend` port decouples *what* a pipeline
computes (a :class:`~repro.core.pipeline.PipelineSpec`) from *where* it
executes — the same separation task-parallel frameworks like Pipeflow draw
between pipeline structure and scheduling substrate.  Four adapters ship:

* ``"sim"`` — :class:`SimBackend`, the discrete-event grid simulator
  (simulated time; adaptation via the in-sim controller);
* ``"threads"`` — :class:`ThreadBackend`, the local thread runtime (for
  GIL-releasing kernels and portable correctness runs);
* ``"processes"`` — :class:`ProcessPoolBackend`, warm pre-forked process
  pools per stage (true multi-core for CPU-bound Python stages; items
  travel through a :mod:`repro.transport` codec — shared-memory frames
  for large payloads);
* ``"asyncio"`` — :class:`AsyncioBackend`, coroutine pools on a dedicated
  event-loop thread (I/O-bound stages; the concurrency limit is the
  replica knob);
* ``"distributed"`` — :class:`DistributedBackend`, TCP-socket workers on
  this or other hosts (the paper's actual setting: real link costs, node
  loss, load-derived speeds — see ``docs/distributed.md``).

:class:`RuntimeAdaptiveRunner` runs the paper's observe→decide→act loop
against any live backend using wall-clock measurements, reusing the exact
policies (:class:`~repro.core.policy.AdaptationPolicy`,
:class:`~repro.core.policies_alt.ReactivePolicy`) the simulator exercises.

See ``docs/backends.md`` for the contract and selection guidance.
"""

from repro.backend.async_backend import AsyncioBackend
from repro.backend.base import (
    Backend,
    BackendCapabilityError,
    BackendResult,
    available_backends,
    capability_error,
    make_backend,
    register_backend,
)
from repro.backend.distributed import DistributedBackend, WorkerAgent
from repro.backend.process_backend import ProcessPoolBackend
from repro.backend.runner import RuntimeAdaptiveRunner, RuntimeRunResult, local_config
from repro.backend.sim_backend import SimBackend
from repro.backend.thread_backend import ThreadBackend

__all__ = [
    "AsyncioBackend",
    "Backend",
    "BackendCapabilityError",
    "BackendResult",
    "DistributedBackend",
    "ProcessPoolBackend",
    "RuntimeAdaptiveRunner",
    "RuntimeRunResult",
    "SimBackend",
    "ThreadBackend",
    "WorkerAgent",
    "available_backends",
    "capability_error",
    "local_config",
    "make_backend",
    "register_backend",
]
