"""The worker side of the distributed backend.

A :class:`WorkerAgent` connects to a coordinator, registers (advertising
its core count and current load average), and then hosts **stage replicas**
on demand: each ``place`` message starts one replica — a thread with its
own bounded task queue — and each ``retire`` message lets that replica
finish what it was dealt and exit.  Replicas decode item payloads through
the **negotiated transport codec** (see below), execute the stage callable,
timing the service, and ship results back tagged with the service time and
the in-queue wait so the coordinator can separate computation from link
cost.

**Transport negotiation.**  The ``welcome`` message carries the
coordinator's transport spec plus a shared-memory *probe*: the name and
expected contents of a small segment the coordinator created.  A worker
that can attach the probe and read the right token shares the
coordinator's shared-memory namespace (same host), replies ``shm_ok``
true, and encodes its results with the negotiated codec — large payloads
then cross the socket as segment descriptors instead of bytes.  A worker
that cannot (a remote host) replies false and falls back to inline
pickle; the coordinator materializes any descriptor frames it forwards
there.  Workers never unlink segments: the coordinator owns every frame's
release (a task may be re-dispatched after a worker death, so consuming a
frame must not destroy it).

A heartbeat thread reports the 1-minute load average every
``heartbeat_interval`` seconds; the coordinator derives the worker's
effective speed from it and treats missing heartbeats as node loss.

**Worker-side tracing.**  Every agent runs its own :class:`EventBus`
clocked by ``time.perf_counter`` (the worker's local clock).  When the
coordinator enables tracing (a flag on ``welcome`` or a live ``trace``
control message), replicas emit ``wk.*`` trace points — dequeue, service,
encode, send — into a bounded buffer that is drained
and **piggybacked on the frames the protocol already sends**: each result
carries the events accumulated since the last send, and heartbeats flush
whatever is left between results, so tracing adds no extra round trips.
Event timestamps are worker-clock; the coordinator maps them onto the
session timeline through its per-worker clock fit
(:mod:`repro.obs.clock`).  Independently of tracing, every result frame
stamps ``t_recv_w``/``t_send_w`` (worker clock at task arrival and result
send) — two floats that feed that clock fit and the per-hop phase
decomposition at near-zero cost.

Run a worker on a (possibly remote) host with::

    python -m repro.backend.distributed.worker --connect HOST:PORT

Stage callables arrive pickled, so they must be importable on the worker
(module-level functions).  Workers the coordinator auto-spawns locally are
forked from the coordinator process, which makes any module already loaded
there — including test modules — resolvable without an installed package.

``--link-delay`` injects an artificial per-frame receive delay, simulating
a slow link for experiments (E16): the delay is applied *before* the task's
arrival timestamp, so it shows up in the coordinator's measured transfer
time, not in service or wait time.  ``--link-bandwidth`` is its size-aware
sibling (E17): an extra ``payload_bytes / bandwidth`` seconds per task,
simulating a bandwidth-starved link whose cost grows with payload size —
exactly what the coordinator's size-stratified link fit must detect.
"""

from __future__ import annotations

import argparse
import os
import pickle
import queue as thread_queue
import socket
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable

from repro import transport as _transport
from repro.backend.distributed.protocol import ProtocolError, recv_frame, send_frame
from repro.monitor.resource_monitor import read_load1
from repro.obs.events import Event, EventBus
from repro.transport import Codec, Frame, untrack
from repro.util.batching import Batch, map_batch

__all__ = ["WorkerAgent", "main"]

_STOP = object()


class _TraceBuffer:
    """Collects worker-side events as compact tuples until a frame drains them.

    Subscribed to the agent's bus only while tracing is enabled, so the
    disabled path costs nothing beyond the bus's no-subscriber branch.
    Bounded: if the coordinator somehow never drains (it drains on every
    result and heartbeat), old events are dropped rather than growing the
    buffer without limit.
    """

    MAX_PENDING = 10_000

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: list[tuple[str, float, dict]] = []
        self.dropped = 0

    def __call__(self, ev: Event) -> None:
        with self._lock:
            if len(self._pending) >= self.MAX_PENDING:
                self.dropped += 1
                return
            self._pending.append((ev.kind, ev.time, ev.fields))

    def drain(self) -> list[tuple[str, float, dict]]:
        with self._lock:
            out, self._pending = self._pending, []
            return out


@dataclass
class _Task:
    epoch: int
    seq: int
    payload: Frame
    t_sent: float
    arrived: float  # worker clock, stamped after any injected link delay


class _ReplicaRunner:
    """One hosted stage replica: a thread draining a bounded task queue."""

    def __init__(
        self,
        agent: "WorkerAgent",
        stage: int,
        slot: int,
        fn: Callable[[Any], Any],
        stage_name: str,
        capacity: int,
    ) -> None:
        self.stage = stage
        self.slot = slot
        self.fn = fn
        self.queue: thread_queue.Queue = thread_queue.Queue(maxsize=max(capacity, 1))
        self._agent = agent
        self.thread = threading.Thread(
            target=self._serve, name=f"replica[{stage_name}.{slot}]", daemon=True
        )
        self.thread.start()

    def _serve(self) -> None:
        bus = self._agent.events
        while True:
            msg = self.queue.get()
            if msg is _STOP:
                return
            task: _Task = msg
            started = time.perf_counter()
            wait_s = started - task.arrived
            if bus.active:
                bus.emit(
                    "wk.dequeue",
                    at=started,
                    epoch=task.epoch,
                    stage=self.stage,
                    seq=task.seq,
                    wait=wait_s,
                )
            try:
                # Decode without releasing: the coordinator owns the task
                # frame (it may re-dispatch after this worker's death).
                value = self._agent.codec.decode(task.payload)
                # A micro-batch maps element-wise and travels back as one
                # frame; the coordinator re-dispatches the whole batch
                # frame on worker death, so per-item exactly-once holds by
                # construction.
                result = (
                    map_batch(self.fn, value)
                    if isinstance(value, Batch)
                    else self.fn(value)
                )
                serviced = time.perf_counter()
                service_s = serviced - started
                if bus.active:
                    bus.emit(
                        "wk.service",
                        at=serviced,
                        epoch=task.epoch,
                        stage=self.stage,
                        seq=task.seq,
                        seconds=service_s,
                    )
                out = self._agent.codec.encode(result)
                if bus.active:
                    encoded = time.perf_counter()
                    bus.emit(
                        "wk.encode",
                        at=encoded,
                        epoch=task.epoch,
                        stage=self.stage,
                        seq=task.seq,
                        seconds=encoded - serviced,
                        nbytes=out.nbytes,
                    )
            except BaseException as err:  # noqa: BLE001 - shipped to coordinator
                self._agent._send_result(
                    task, self.stage, self.slot, False, None, 0.0, wait_s, repr(err)
                )
                continue  # stay warm; the coordinator aborts the run
            self._agent._send_result(
                task, self.stage, self.slot, True, out, service_s, wait_s, None
            )


class WorkerAgent:
    """Connects to a coordinator and hosts stage replicas until shut down.

    Parameters
    ----------
    host, port:
        Coordinator address.
    cores:
        Advertised core count (capacity signal for placement); defaults to
        ``os.cpu_count()``.
    name:
        Advertised worker name (defaults to ``host:pid``).
    link_delay:
        Artificial receive delay in seconds per task frame (0 disables) —
        an experiment knob simulating a slow link.
    link_bandwidth:
        Artificial bandwidth in bytes/s (0 disables): each task pays an
        extra ``payload_bytes / link_bandwidth`` seconds on receive — the
        experiment knob for a bandwidth-starved link (E17).
    capacity:
        Per-replica task-queue bound (matches the coordinator's in-flight
        cap, so puts never block in the receive loop).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        cores: int | None = None,
        name: str | None = None,
        link_delay: float = 0.0,
        link_bandwidth: float = 0.0,
        capacity: int = 64,
    ) -> None:
        if link_delay < 0:
            raise ValueError(f"link_delay must be >= 0, got {link_delay}")
        if link_bandwidth < 0:
            raise ValueError(f"link_bandwidth must be >= 0, got {link_bandwidth}")
        self.host = host
        self.port = port
        self.cores = cores if cores is not None else (os.cpu_count() or 1)
        self.name = name if name is not None else f"{socket.gethostname()}:{os.getpid()}"
        self.link_delay = float(link_delay)
        self.link_bandwidth = float(link_bandwidth)
        self.capacity = capacity
        self.worker_id: int | None = None
        self.codec: Codec = _transport.get("pickle")  # until negotiation
        self.shm_ok = False
        #: Worker-local bus in the worker's own clock (``time.perf_counter``);
        #: traced events are buffered and piggybacked back to the coordinator.
        self.events = EventBus(clock=time.perf_counter)
        self._trace = _TraceBuffer()
        self._tracing = False
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._replicas: dict[tuple[int, int], _ReplicaRunner] = {}
        self._stop = threading.Event()

    def _set_trace(self, on: bool) -> None:
        """Attach/detach the trace buffer (idempotent; live-toggleable)."""
        if on and not self._tracing:
            self.events.subscribe(self._trace)
            self._tracing = True
        elif not on and self._tracing:
            self.events.unsubscribe(self._trace)
            self._tracing = False
            self._trace.drain()  # discard events nobody will collect

    def _negotiate_transport(self, spec: dict) -> None:
        """Adopt the coordinator's codec iff its shm probe checks out here."""
        probe = spec.get("probe")
        token = spec.get("token")
        ok = False
        if probe is not None:
            try:
                seg = shared_memory.SharedMemory(name=probe)
                untrack(seg)  # the coordinator owns the probe's lifecycle
                try:
                    ok = bytes(seg.buf[: len(token)]) == token
                finally:
                    seg.close()
            except (OSError, ValueError):
                ok = False
        self.shm_ok = ok
        codec_spec = {k: v for k, v in spec.items() if k in ("name", "session", "threshold")}
        if ok:
            self.codec = _transport.from_spec(codec_spec)
        else:
            # Results must stay self-contained across host boundaries.
            self.codec = _transport.get("pickle", session=spec.get("session"))
        self._send(("shm_ok", ok))

    # -------------------------------------------------------------- plumbing
    def _send(self, message: tuple) -> None:
        sock = self._sock
        if sock is None:
            return
        try:
            send_frame(sock, message, self._send_lock)
        except OSError:
            # The coordinator is gone; the receive loop will notice and exit.
            self._stop.set()

    def _send_result(
        self,
        task: _Task,
        stage: int,
        slot: int,
        ok: bool,
        payload: Frame | None,
        service_s: float,
        wait_s: float,
        err_repr: str | None,
    ) -> None:
        """Ship one result, stamped with the worker-clock receive/send pair.

        ``t_recv_w``/``t_send_w`` always ride along (two floats — they feed
        the coordinator's per-worker clock fit and the phase decomposition
        even with tracing off); buffered trace events drain onto the same
        frame so an item's own ``wk.*`` points arrive with its result.
        """
        t_send_w = time.perf_counter()
        if self.events.active:
            self.events.emit(
                "wk.send", at=t_send_w, epoch=task.epoch, stage=stage, seq=task.seq
            )
        events = self._trace.drain() if self._tracing else ()
        self._send(
            (
                "result",
                task.epoch,
                stage,
                slot,
                task.seq,
                ok,
                payload,
                service_s,
                wait_s,
                task.t_sent,
                err_repr,
                task.arrived,
                t_send_w,
                events,
            )
        )

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            events = self._trace.drain() if self._tracing else ()
            self._send(("heartbeat", read_load1(), events))

    # ------------------------------------------------------------------- run
    def run(self) -> None:
        """Connect, register, and serve until shutdown or coordinator EOF."""
        sock = socket.create_connection((self.host, self.port), timeout=10.0)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        try:
            send_frame(sock, ("hello", self.name, self.cores, read_load1()), self._send_lock)
            welcome = recv_frame(sock)
            if not welcome or welcome[0] != "welcome":
                raise ProtocolError(f"expected welcome, got {welcome!r}")
            # Tolerant unpacking: older coordinators (and protocol tests)
            # send 5 fields; newer ones append a trace-enable flag.
            _, self.worker_id, heartbeat_interval, coord_capacity, transport_spec, *rest = welcome
            if rest and rest[0]:
                self._set_trace(True)
            # Replica queues must cover the coordinator's per-replica
            # in-flight cap so puts never block the receive loop.
            self.capacity = max(self.capacity, coord_capacity)
            self._negotiate_transport(transport_spec)
            beat = threading.Thread(
                target=self._heartbeat_loop,
                args=(heartbeat_interval,),
                name="worker-heartbeat",
                daemon=True,
            )
            beat.start()
            self._serve_loop(sock)
        finally:
            self._stop.set()
            for runner in self._replicas.values():
                runner.queue.put(_STOP)
            self._sock = None
            sock.close()

    def _serve_loop(self, sock: socket.socket) -> None:
        while not self._stop.is_set():
            try:
                frame = recv_frame(sock)
            except (OSError, ProtocolError):
                return
            if frame is None:
                return
            kind = frame[0]
            if kind == "task":
                _, epoch, stage, slot, seq, payload, t_sent = frame
                delay = self.link_delay
                if self.link_bandwidth:
                    delay += payload.nbytes / self.link_bandwidth
                if delay:
                    time.sleep(delay)
                arrived = time.perf_counter()
                runner = self._replicas.get((stage, slot))
                if runner is not None:
                    runner.queue.put(_Task(epoch, seq, payload, t_sent, arrived))
                else:
                    # A task can legitimately race a retire (the coordinator
                    # assigned the slot just before retiring it): bounce it
                    # back so the item is re-dispatched, never dropped.
                    self._send(("reject", epoch, stage, slot, seq))
            elif kind == "place":
                _, stage, slot, fn_payload, stage_name = frame
                try:
                    fn = pickle.loads(fn_payload)
                except Exception as err:
                    self._send(("place_failed", stage, slot, repr(err)))
                    continue
                self._replicas[(stage, slot)] = _ReplicaRunner(
                    self, stage, slot, fn, stage_name, self.capacity
                )
            elif kind == "retire":
                _, stage, slot = frame
                runner = self._replicas.pop((stage, slot), None)
                if runner is not None:
                    # The sentinel queues behind already-dealt tasks, so the
                    # replica finishes its in-flight work before exiting.
                    runner.queue.put(_STOP)
            elif kind == "trace":
                self._set_trace(bool(frame[1]))
            elif kind == "shutdown":
                return


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.backend.distributed.worker",
        description="Join a distributed pipeline coordinator as a worker.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to register with",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        help="advertised core count (default: os.cpu_count())",
    )
    parser.add_argument("--name", default=None, help="advertised worker name")
    parser.add_argument(
        "--link-delay",
        type=float,
        default=0.0,
        help="inject an artificial per-task receive delay in seconds",
    )
    parser.add_argument(
        "--link-bandwidth",
        type=float,
        default=0.0,
        help="inject an artificial bandwidth limit in bytes/s (0 = unlimited)",
    )
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect must be HOST:PORT, got {args.connect!r}")
    WorkerAgent(
        host,
        int(port),
        cores=args.cores,
        name=args.name,
        link_delay=args.link_delay,
        link_bandwidth=args.link_bandwidth,
    ).run()


if __name__ == "__main__":
    main()
