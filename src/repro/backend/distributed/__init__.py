"""Distributed socket backend: multi-host workers behind the Backend port.

This package brings the pattern back to *actual* grids: pipeline stage
replicas hosted by :class:`~repro.backend.distributed.worker.WorkerAgent`
processes on (potentially remote) machines, coordinated over TCP by
:class:`~repro.backend.distributed.coordinator.DistributedBackend` — a full
implementation of the :class:`~repro.backend.base.Backend` port, so
``skel.api`` pipelines and :class:`~repro.backend.runner.RuntimeAdaptiveRunner`
drive it exactly like the local executors.

* Workers register with the coordinator, advertising their core count and a
  load-average-derived effective speed (refreshed by every heartbeat).
* The coordinator shards items over per-stage replica sets, measures real
  per-item service times *and* per-link transfer times, and restores input
  order through the shared :class:`~repro.util.ordering.SequenceReorderer`.
* ``reconfigure(stage, n)`` places or retires replicas across workers live,
  without draining in-flight items; placement is link- and load-aware.
* Failure handling is first-class: heartbeats (and connection EOF) detect
  dead workers, their in-flight items are re-dispatched to survivors, and
  the local view shrinks so the adaptation loop reacts to node loss the way
  the paper's pattern reacts to grid dynamism.

Start a remote worker with::

    python -m repro.backend.distributed.worker --connect HOST:PORT

or let the coordinator auto-spawn local workers (``spawn_workers=``, the
tests/CI path).  See ``docs/distributed.md`` for the wire protocol, failure
semantics and a deployment recipe.
"""

from repro.backend.distributed.coordinator import DistributedBackend
from repro.backend.distributed.worker import WorkerAgent

__all__ = ["DistributedBackend", "WorkerAgent"]
