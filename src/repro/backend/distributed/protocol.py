"""Wire protocol of the distributed backend.

Frames are length-prefixed pickles over a TCP stream: a 4-byte big-endian
payload length followed by ``pickle.dumps(message)``.  A message is a plain
tuple whose first element is the kind (see the table in
``docs/distributed.md``):

========================  =========  ====================================
kind                      direction  fields after the kind
========================  =========  ====================================
``hello``                 w → c      name, cores, load1
``welcome``               c → w      worker_id, heartbeat_interval,
                                     capacity, transport_spec[, trace]
``shm_ok``                w → c      bool (the worker verified the
                                     transport spec's shared-memory probe)
``place``                 c → w      stage, slot, fn_payload, stage_name
``place_failed``          w → c      stage, slot, error_repr
``retire``                c → w      stage, slot
``task``                  c → w      epoch, stage, slot, seq, payload, t_sent
``result``                w → c      epoch, stage, slot, seq, ok, payload,
                                     service_s, wait_s, t_sent, error_repr
                                     [, t_recv_w, t_send_w, events]
``reject``                w → c      epoch, stage, slot, seq (task arrived
                                     for a slot the worker no longer hosts)
``heartbeat``             w → c      load1[, events]
``trace``                 c → w      bool (enable/disable worker-side
                                     event tracing live)
``shutdown``              c → w      (none)
========================  =========  ====================================

Bracketed trailing fields are **trace extensions** — both sides unpack
tolerantly, so a peer from before the extension interoperates.
``t_recv_w``/``t_send_w`` are the worker's clock at task arrival and
result send: together with the echoed ``t_sent`` and the coordinator's
receive time they form the NTP-style quadruple that
:class:`repro.obs.clock.ClockSync` fits a per-worker clock offset from.
``events`` is a list of compact ``(kind, t_worker, fields)`` tuples —
worker-side trace points batched since the last frame, piggybacked here
so tracing never adds a round trip; the coordinator maps their
timestamps through the clock fit and re-emits them on the session bus.

``payload`` fields are :class:`~repro.transport.Frame` objects — a pickle
stream plus out-of-band buffers, each inline or a shared-memory segment
descriptor under the **negotiated frame format**: ``welcome`` carries the
coordinator's transport spec (codec name, session, placement threshold)
plus a shared-memory probe, and the worker's ``shm_ok`` reply fixes
whether descriptors may cross this connection (same host) or every frame
must be materialized inline (remote).  The coordinator forwards a stage's
output frame to the next stage untouched, so each item crosses the
coordinator without a decode/encode round trip — and, with descriptors,
without its bulk bytes crossing any socket at all.  ``t_sent`` is the
*sender's* clock and is only ever echoed back to be differenced on the
machine that produced it — the protocol itself never compares clocks
across hosts; cross-host timestamp *mapping* happens only downstream, in
the coordinator's per-worker :class:`repro.obs.clock.ClockSync` fit, with
an explicit rtt/2 error bound.

TCP ordering is load-bearing: a ``place`` is always written before any
``task`` for that slot, so workers never see a task for an unknown replica.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any

__all__ = [
    "MAX_FRAME",
    "ProtocolError",
    "recv_frame",
    "send_frame",
]

#: Upper bound on one frame's payload: guards both sides against a corrupt
#: or hostile length header committing them to a multi-GB allocation.
MAX_FRAME = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a valid frame."""


def send_frame(
    sock: socket.socket, message: Any, lock: threading.Lock | None = None
) -> None:
    """Pickle ``message`` and write it as one frame (atomically if locked).

    ``lock`` serialises concurrent senders on a shared socket — interleaved
    ``sendall`` calls from two threads would corrupt the stream.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    data = _HEADER.pack(len(payload)) + payload
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if chunks:
                raise ProtocolError(
                    f"connection closed mid-frame ({n - remaining}/{n} bytes)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"peer announced a {length}-byte frame (> {MAX_FRAME})")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        return pickle.loads(payload)
    except Exception as err:
        raise ProtocolError(f"undecodable frame: {err!r}") from err
