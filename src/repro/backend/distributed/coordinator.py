"""Coordinator side of the distributed backend: the full Backend port.

Topology (a star — every transfer crosses the coordinator)::

                         TCP                            TCP
    feeder ──> replica set[0] ──> router[0] ──> replica set[1] ──> ...
    (session)  (on workers)       (session)     (on workers)

* The coordinator listens on a TCP socket; :class:`WorkerAgent` processes
  connect and register, advertising cores and load average.  Workers can be
  auto-spawned locally (``spawn_workers=``, the tests/CI path) or started
  on remote hosts with ``python -m repro.backend.distributed.worker``.
* **Sessions over streams**: worker links, negotiated transports and
  replica placement belong to the *backend* and stay warm for as long as
  it lives; the feeder and router threads belong to a *session*
  (``backend.open()``) and serve back-to-back streams without tearing any
  of that down.  Each stream gets its own **epoch**: tasks and results
  carry the stream's epoch, a result is only accepted while its (epoch,
  seq) assignment is still live, and sequence numbers are stream-scoped
  (the routers' :class:`~repro.util.ordering.SequenceReorderer` instances
  rebase via ``begin_stream`` at each boundary) — so crash re-dispatch
  stays exactly-once within a stream and a stale duplicate from any
  earlier stream is dropped on arrival.
* Each stage owns a **replica set** spread across workers.  Dispatch picks
  the least-loaded active replica (in-flight count normalised by the
  worker's effective speed), bounded by ``capacity`` in-flight items per
  replica for end-to-end back-pressure.
* One **router thread per stage** collects that stage's results, records
  service/transfer/queue/payload-size measurements, restores sequence
  order, and forwards each item's encoded :class:`~repro.transport.Frame`
  to the next stage untouched.  Items travel through the **negotiated
  transport** (``transport=``): the session's feeder **encodes after
  worker selection**, so an item routed to a worker that verified the
  session's shm probe gets descriptor frames while one routed to a
  non-shm (remote) worker is pickled inline from the start — mixed pools
  no longer pay segment-write + materialize-copy + unlink for items that
  never needed a segment.  ``"auto"``'s placement threshold is calibrated
  at warm-up from a quick encode/decode probe.  The coordinator owns every
  frame's lifecycle — a task frame is released only when its result is
  accepted (so a worker death can always re-dispatch), and ``close()``
  sweeps the session's surviving segments.
* **Link cost is measured, not assumed**: a result echoes the dispatch
  timestamp plus the worker-side service and queue-wait durations, so
  ``rtt - service - wait`` is pure wire time.  Each observation is paired
  with the bytes that crossed (task frame out + result frame back) and fed
  to a per-worker :class:`~repro.transport.SizeStratifiedLinkEstimator`,
  whose fitted ``latency + bytes/bandwidth`` model prices placement and
  the planner's :meth:`~DistributedBackend.resource_view` per link.
* **Failure handling**: connection EOF or a missed-heartbeat timeout marks
  a worker dead; its replicas leave every stage's set (a stage left empty
  is re-placed on a survivor), its in-flight items are re-dispatched, and
  the shrunken local view is what the adaptation loop sees next.
* ``reconfigure(stage, n)`` places or retires replicas across workers live.
  Retired replicas finish what they were dealt (nothing is drained); growth
  targets the worker with the best speed/link score.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as thread_queue
import socket
import threading
import time
from multiprocessing import shared_memory
from typing import Any

from repro import transport as _transport
from repro.backend.base import Backend, Session, register_backend
from repro.backend.distributed.protocol import ProtocolError, recv_frame, send_frame
from repro.backend.distributed.worker import WorkerAgent
from repro.core.pipeline import PipelineSpec
from repro.model.throughput import ResourceView, fn_view
from repro.monitor.instrument import PipelineInstrumentation
from repro.monitor.resource_monitor import load_to_speed
from repro.obs.clock import ClockSync
from repro.runtime.threads import StageError
from repro.transport import (
    Codec,
    Frame,
    LinkModel,
    SizeStratifiedLinkEstimator,
    materialize,
    untrack,
)
from repro.util.batching import Batch
from repro.util.ordering import SequenceReorderer
from repro.util.validation import check_positive

__all__ = ["DistributedBackend"]

#: Modelled cost of the in-process hop between two replicas on one worker.
_LOCAL_LINK = (1e-7, 1e9)
#: Prior socket bandwidth (bytes/s) for a link before its size-stratified
#: samples pin down a fitted value.
_WIRE_BANDWIDTH = 1e8
#: Default one-way link estimate before any measurement exists.
_DEFAULT_LINK_S = 1e-4

_CLOSE = object()  # session-side feeder shutdown marker


def _spawn_agent(
    host: str, port: int, cores: int, name: str, link_delay: float,
    link_bandwidth: float,
) -> None:
    """Entry point of auto-spawned local worker processes."""
    WorkerAgent(
        host, port, cores=cores, name=name, link_delay=link_delay,
        link_bandwidth=link_bandwidth,
    ).run()


class _WorkerConn:
    """Coordinator-side view of one registered worker."""

    def __init__(
        self, wid: int, sock: socket.socket, name: str, cores: int
    ) -> None:
        self.id = wid
        self.sock = sock
        self.name = name
        self.cores = max(1, cores)
        self.alive = True
        self.shm_ok = False  # verified the session's shared-memory probe
        self.shm_replied = False  # negotiation answer received
        self.last_seen = time.monotonic()
        self.load = 0.0
        self.speed = 1.0  # EWMA of load_to_speed(load, cores)
        self.link_est = SizeStratifiedLinkEstimator(
            default_bandwidth=_WIRE_BANDWIDTH, round_trips=2
        )
        # Per-worker clock fit (offset + drift, rtt/2-bounded): maps the
        # worker's timestamps onto the coordinator clock so worker-side
        # trace events merge into the session timeline.
        self.clock = ClockSync()
        self.clock_emit_t = 0.0  # rate limiter for clock.sync events
        self.proc: mp.process.BaseProcess | None = None  # auto-spawned only
        self._send_lock = threading.Lock()
        self._next_slot = 0

    def new_slot(self) -> int:
        with self._send_lock:
            self._next_slot += 1
            return self._next_slot

    def send(self, message: tuple) -> bool:
        try:
            send_frame(self.sock, message, self._send_lock)
            return True
        except (OSError, ProtocolError):
            return False

    def observe_load(self, load: float) -> None:
        self.last_seen = time.monotonic()
        self.load = load
        self.speed += 0.5 * (load_to_speed(load, self.cores) - self.speed)

    def observe_transfer(self, nbytes: float, overhead_s: float) -> None:
        """One round trip: ``nbytes`` crossed (both ways) in ``overhead_s``."""
        self.link_est.observe(nbytes, overhead_s)

    def link_fit(self) -> LinkModel:
        """Fitted one-way (latency, bandwidth) for this worker's link."""
        model = self.link_est.fit()
        if model.n_samples == 0:
            return LinkModel(_DEFAULT_LINK_S, _WIRE_BANDWIDTH, 0, fitted=False)
        return model


class _Replica:
    """One placed stage replica: (worker, slot) plus dispatch accounting."""

    def __init__(self, worker: _WorkerConn, slot: int) -> None:
        self.worker = worker
        self.slot = slot
        self.inflight = 0
        self.active = True
        self.retired = False


class _DistributedSession(Session):
    """Session-owned feeder/router threads over the warm worker pool."""

    supports_batching = True

    def __init__(
        self,
        backend: "DistributedBackend",
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> None:
        super().__init__(
            backend,
            max_inflight=max_inflight,
            telemetry=telemetry,
            batching=batching,
        )
        backend.warm()
        backend._ensure_placements()
        if backend._config_errors:
            raise backend._config_errors[0]
        n = backend.pipeline.n_stages
        self.instrumentation = PipelineInstrumentation(n, events=self.events)
        self._metrics_locks = [threading.Lock() for _ in range(n)]
        self._snapshot_locks = self._metrics_locks
        self._abort = threading.Event()
        self._stopping = threading.Event()
        self._reorder = [SequenceReorderer() for _ in range(n)]
        self._resq = [thread_queue.Queue() for _ in range(n)]
        self._feedq: thread_queue.Queue = thread_queue.Queue()
        # Adopt this session as the backend's live plumbing: the recv loops
        # and death handlers feed these very queues/flags.
        backend._errors = []
        backend._abort = self._abort
        backend._resq = self._resq
        backend._running = True
        backend._t0 = time.perf_counter()
        # Worker-side tracing follows the session's subscriptions: a bus
        # that wants wk.* kinds turns the pool's trace points on (full
        # journal/telemetry); otherwise workers stay silent and only the
        # two always-on result stamps feed the clock fit and span.phases.
        backend._set_trace(self.events.wants("wk.service"))
        self._threads = [
            threading.Thread(target=self._feed, name="dist-feeder", daemon=True)
        ]
        for i in range(n):
            self._threads.append(
                threading.Thread(
                    target=self._route, args=(i,), name=f"dist-router[{i}]", daemon=True
                )
            )
        for t in self._threads:
            t.start()

    # ----------------------------------------------------------- port hooks
    def _begin_stream(self, stream: int) -> None:
        backend: DistributedBackend = self.backend  # type: ignore[assignment]
        # The epoch *is* the stream id: results are only accepted while
        # their (epoch, seq) assignment is live, so a late duplicate from
        # any earlier stream (or an aborted one) is dropped on arrival.
        backend._epoch += 1
        for i, cond in enumerate(backend._conds):
            with cond:
                # Frames stranded in flight by an aborted earlier stream
                # will never be decoded: reclaim their segments first.
                for _replica, stale_frame in backend._inflight[i].values():
                    backend._codec.release(stale_frame)
                backend._inflight[i].clear()
        # drain() emptied the pipeline, so the routers' reorderers are
        # idle: rebase them onto the new stream's sequence space.
        for reorder in self._reorder:
            reorder.begin_stream(0)

    def _submit_one(self, stream: int, seq: int, gseq: int, item: Any) -> None:
        self._feedq.put((seq, item))

    def _shutdown(self) -> None:
        backend: DistributedBackend = self.backend  # type: ignore[assignment]
        broken = self.broken or self._submitted > self._delivered
        if broken:
            self._abort.set()
            for cond in backend._conds:
                with cond:
                    cond.notify_all()
        self._stopping.set()
        self._feedq.put(_CLOSE)
        for t in self._threads:
            t.join(timeout=5.0)
        backend._running = False
        backend._set_trace(False)  # quiet the pool between sessions
        # Reclaim whatever an aborted stream stranded in flight (a clean
        # close finds nothing — drain() is the boundary).
        for i, cond in enumerate(backend._conds):
            with cond:
                for _replica, stale_frame in backend._inflight[i].values():
                    backend._codec.release(stale_frame)
                backend._inflight[i].clear()

    # ---------------------------------------------------------------- tracing
    def _trace_hop(
        self,
        stage: int,
        seq: int,
        w: _WorkerConn,
        t_sent: float,
        recv_t: float,
        service_s: float,
        wait_s: float,
        t_recv_w: float,
        t_send_w: float,
        wk_events,
    ) -> None:
        """Fold one accepted result into the worker's clock fit and, when
        anyone listens, decompose the hop into its latency phases.

        The quadruple ``(t_sent, t_recv_w, t_send_w, recv_t)`` is exactly
        the NTP sample :class:`~repro.obs.clock.ClockSync` wants; it is fed
        unconditionally (two comparisons and a deque append) so the fit is
        warm the moment tracing turns on.  The ``span.phases`` breakdown
        tiles the hop: wire_out + worker_queue + service + encode +
        wire_back ≈ recv_t - t_sent, each term clamped non-negative
        (clock-fit error can push a boundary past its neighbour by up to
        rtt/2).
        """
        w.clock.observe(t_sent, t_recv_w, t_send_w, recv_t)
        if wk_events:
            backend: DistributedBackend = self.backend  # type: ignore[assignment]
            backend._emit_worker_trace(w, wk_events)
        bus = self.events
        if bus.wants("clock.sync") and recv_t - w.clock_emit_t >= 1.0:
            w.clock_emit_t = recv_t
            fit = w.clock.fit()
            bus.emit(
                "clock.sync",
                at=self.perf_to_session(recv_t),
                worker=w.id,
                offset=fit.offset_at(t_send_w),
                drift=fit.b,
                err=fit.err,
                n=fit.n,
            )
        if bus.wants("span.phases"):
            to_local = w.clock.fit().to_local
            # Executor seqs are batch seqs when batching: report the hop in
            # item space (seq = first item, items = N) with durations
            # covering the whole batch, so the profiler can fan it out
            # per item without double-counting.
            ev_seq, ev_items = self._event_seq(seq)
            fields = dict(
                stage=stage,
                seq=ev_seq,
                worker=w.id,
                wire_out=max(0.0, to_local(t_recv_w) - t_sent),
                worker_queue=wait_s,
                service=service_s,
                encode=max(0.0, (t_send_w - t_recv_w) - wait_s - service_s),
                wire_back=max(0.0, recv_t - to_local(t_send_w)),
            )
            if ev_items > 1:
                fields["items"] = ev_items
            bus.emit("span.phases", at=self.perf_to_session(recv_t), **fields)

    # --------------------------------------------------------------- plumbing
    def _feed(self) -> None:
        backend: DistributedBackend = self.backend  # type: ignore[assignment]
        try:
            while True:
                msg = self._feedq.get()
                if msg is _CLOSE:
                    return
                if self._abort.is_set():
                    continue  # drain the feed queue without dispatching
                seq, value = msg
                if not backend._dispatch_value(seq, value):
                    continue
        except BaseException as err:  # noqa: BLE001 - e.g. unencodable input
            backend._fail(0, err)

    def _route(self, stage: int) -> None:
        backend: DistributedBackend = self.backend  # type: ignore[assignment]
        try:
            self._route_inner(stage)
        except BaseException as err:  # noqa: BLE001 - reported via the session
            backend._fail(stage, err)

    def _route_inner(self, stage: int) -> None:
        backend: DistributedBackend = self.backend  # type: ignore[assignment]
        metrics = self.instrumentation.stages[stage]
        cond = backend._conds[stage]
        last = stage + 1 >= backend.pipeline.n_stages
        reorder = self._reorder[stage]
        resq = self._resq[stage]
        while True:
            if self._abort.is_set():
                return
            try:
                msg = resq.get(timeout=0.1)
            except thread_queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            (w, slot, seq, ok, payload, service_s, wait_s, t_sent,
             err_repr, recv_t, t_recv_w, t_send_w, wk_events) = msg
            with cond:
                entry = backend._inflight[stage].get(seq)
                if (
                    entry is None
                    or entry[0].worker is not w
                    or entry[0].slot != slot
                ):
                    # Stale: this item was re-dispatched after its worker was
                    # declared dead; exactly one assignment may deliver it.
                    # The duplicate's result frame will never be read.
                    if isinstance(payload, Frame):
                        backend._codec.release(payload)
                    continue
                replica, entry_payload = entry
                del backend._inflight[stage][seq]
                replica.inflight -= 1
                if (
                    replica.retired
                    and replica.inflight == 0
                    and replica in backend._replicas[stage]
                ):
                    backend._replicas[stage].remove(replica)
                queued = sum(r.inflight for r in backend._replicas[stage])
                cond.notify_all()
            if ok == "reject":
                # Task raced a retire on the worker: send it elsewhere.
                if not backend._dispatch(stage, seq, entry_payload):
                    return
                continue
            if not ok:
                backend._codec.release(entry_payload)
                backend._fail(stage, RuntimeError(err_repr))
                return
            # The task frame was consumed on the worker; nothing can
            # re-dispatch it now, so its segments can go.
            backend._codec.release(entry_payload)
            # rtt minus worker-side service and queue wait is wire time both
            # ways; halve it for the one-way transfer estimate, and pair the
            # full overhead with the bytes that crossed (task out + result
            # back) to feed the size-stratified latency/bandwidth fit.
            overhead = max(0.0, (recv_t - t_sent) - service_s - wait_s)
            crossed = entry_payload.nbytes + payload.nbytes
            w.observe_transfer(crossed, overhead)
            if t_recv_w is not None and t_send_w is not None:
                self._trace_hop(
                    stage, seq, w, t_sent, recv_t, service_s, wait_s,
                    t_recv_w, t_send_w, wk_events,
                )
            backend._ref_bytes += 0.1 * (entry_payload.nbytes - backend._ref_bytes)
            ev_seq, ev_items = self._event_seq(seq)
            with self._metrics_locks[stage]:
                # work_estimate = service x effective speed, so a loaded
                # worker's slow service still yields the true per-item work.
                # Batched hops translate back to item space (seq = first
                # item, items = N) so attribution stays per-item.
                metrics.record_service(
                    service_s, w.speed, seq=ev_seq, worker=w.id, queue=queued,
                    items=ev_items,
                )
                metrics.record_transfer(overhead / 2.0)
                metrics.record_queue_length(queued)
                metrics.record_bytes_in(entry_payload.nbytes)
                metrics.record_bytes_out(payload.nbytes)
            for ready_seq, ready_payload in reorder.push(seq, payload):
                if last:
                    value = backend._codec.decode(ready_payload)
                    backend._codec.release(ready_payload)
                    if self.events.wants("frame.release"):
                        rel_seq, rel_items = self._event_seq(ready_seq)
                        rel = dict(
                            stage=stage, seq=rel_seq, nbytes=ready_payload.nbytes
                        )
                        if rel_items > 1:
                            rel["items"] = rel_items
                        self.events.emit("frame.release", **rel)
                    with self._metrics_locks[stage]:
                        self.instrumentation.record_completion(
                            self.now(),
                            items=len(value) if isinstance(value, Batch) else 1,
                        )
                    self._deliver(value)
                else:
                    if not backend._dispatch(stage + 1, ready_seq, ready_payload):
                        return


class DistributedBackend(Backend):
    """Executes pipelines on socket-connected workers (multi-host capable).

    Parameters
    ----------
    pipeline:
        Stage specs; every stage must define a picklable ``fn`` (stage
        callables travel to workers over the wire).
    replicas:
        Initially placed replicas per stage (default 1 each).
    max_replicas:
        Ceiling on a replicable stage's replica count across all workers.
    capacity:
        In-flight items allowed per replica (back-pressure granularity).
    spawn_workers:
        Number of local worker processes to auto-spawn at warm-up; 0 means
        workers are started externally (``python -m
        repro.backend.distributed.worker --connect host:port``) and the
        caller should :meth:`wait_for_workers`.
    worker_cores:
        Advertised core count of each auto-spawned worker (they share the
        local host, so 1 is the honest default).
    worker_link_delays:
        Per-spawned-worker artificial receive delay in seconds (experiment
        knob: heterogeneous link costs on one host); padded with 0.0.
    worker_link_bandwidths:
        Per-spawned-worker artificial bandwidth limit in bytes/s (0 = no
        limit; experiment knob: a bandwidth-starved link whose cost grows
        with payload size); padded with 0.0.
    transport:
        Payload codec (``"auto"``/``"pickle"``/``"shm"`` or a configured
        :class:`~repro.transport.Codec`).  ``"auto"`` (default) ships
        large payloads as shared-memory descriptors to workers that share
        this host, negotiated per worker at registration; its placement
        threshold is calibrated at warm-up.
    calibrate_transport:
        Probe the host's inline-vs-segment crossover at warm-up and use it
        as ``"auto"``'s threshold (default True; only affects ``"auto"``).
    host, port:
        Bind address of the coordinator socket (port 0 = ephemeral).
    heartbeat_interval, heartbeat_timeout:
        Worker heartbeat cadence and the silence span after which a worker
        is declared dead (default 6x the interval).
    register_timeout:
        How long warm-up waits for ``spawn_workers`` registrations.
    """

    name = "distributed"
    supports_live_reconfigure = True

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        replicas: list[int] | None = None,
        max_replicas: int = 4,
        capacity: int | None = None,
        spawn_workers: int = 3,
        worker_cores: int = 1,
        worker_link_delays: list[float] | None = None,
        worker_link_bandwidths: list[float] | None = None,
        transport: str | Codec = "auto",
        calibrate_transport: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float | None = None,
        register_timeout: float = 20.0,
    ) -> None:
        super().__init__(pipeline)
        capacity = 8 if capacity is None else capacity
        check_positive(capacity, "capacity")
        check_positive(max_replicas, "max_replicas")
        check_positive(heartbeat_interval, "heartbeat_interval")
        if spawn_workers < 0:
            raise ValueError(f"spawn_workers must be >= 0, got {spawn_workers}")
        n = pipeline.n_stages
        if replicas is None:
            replicas = [1] * n
        if len(replicas) != n:
            raise ValueError(f"replicas must list {n} counts, got {len(replicas)}")
        self._fn_payloads: list[bytes] = []
        for i, r in enumerate(replicas):
            spec = pipeline.stage(i)
            if r < 1:
                raise ValueError(f"stage {i} replica count must be >= 1, got {r}")
            if r > 1 and not spec.replicable:
                raise ValueError(
                    f"stage {i} ({spec.name!r}) is stateful and cannot be replicated"
                )
            if spec.fn is None:
                raise ValueError(
                    f"stage {i} ({spec.name!r}) has no fn; the distributed "
                    "runtime executes real callables"
                )
            try:
                self._fn_payloads.append(
                    pickle.dumps(spec.fn, protocol=pickle.HIGHEST_PROTOCOL)
                )
            except Exception as err:
                raise ValueError(
                    f"stage {i} ({spec.name!r}) fn is not picklable and cannot "
                    f"be shipped to workers (use a module-level function): {err!r}"
                ) from err
        self.capacity = capacity
        self.max_replicas = max(max_replicas, *replicas)
        self.spawn_workers = spawn_workers
        self.worker_cores = worker_cores
        self.worker_link_delays = list(worker_link_delays or [])
        self.worker_link_bandwidths = list(worker_link_bandwidths or [])
        self._codec = _transport.get(transport)
        self._calibrate_transport = calibrate_transport
        # Items entering the pipeline are encoded *after* worker selection:
        # descriptor frames for shm-verified workers, self-contained pickle
        # for the rest (same session token, one sweep covers both).
        self._pickle_codec = (
            self._codec
            if self._codec.name == "pickle"
            else _transport.get("pickle", session=self._codec.session)
        )
        self._probe_name: str | None = None
        self._probe_token = b""
        # Mean payload size seen recently (EWMA): the reference point at
        # which placement scores price a worker's link.
        self._ref_bytes = 0.0
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else 6.0 * heartbeat_interval
        )
        self.register_timeout = register_timeout
        self._bind_host = host
        self._bind_port = port
        self._target = [min(r, self.replica_limit(i)) for i, r in enumerate(replicas)]

        # Worker registry (guarded by _registry; _registry_changed notifies).
        self._registry = threading.Lock()
        self._registry_changed = threading.Condition(self._registry)
        self._workers: dict[int, _WorkerConn] = {}
        self._next_worker_id = 0
        self._spawned: dict[str, mp.process.BaseProcess] = {}
        # Placement failures are configuration errors (e.g. a stage fn that
        # does not resolve on a worker): they outlive per-stream error state.
        self._config_errors: list[BaseException] = []

        # Per-stage replica sets + in-flight assignments (guarded by _conds[i]).
        self._conds = [threading.Condition() for _ in range(n)]
        self._replicas: list[list[_Replica]] = [[] for _ in range(n)]
        self._inflight: list[dict[int, tuple[_Replica, Frame]]] = [{} for _ in range(n)]

        # Infrastructure threads and sockets.
        self._close_lock = threading.Lock()
        self._server: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._monitor_thread: threading.Thread | None = None
        self._recv_threads: list[threading.Thread] = []
        self._warm = False
        self._closed = False
        self._closing = False

        # Worker-side tracing: enabled per session when its bus subscribes
        # to wk.* kinds; the flag rides on welcome for late joiners.
        self._trace_on = False

        # Live-session plumbing (adopted by each session; the epoch is the
        # stream id and survives sessions so stale results never collide).
        self._epoch = 0
        self._running = False
        self._resq: list[thread_queue.Queue] = []
        self._errors: list[BaseException] = []
        self._abort = threading.Event()
        self._t0 = 0.0

    # ------------------------------------------------------------------ props
    @property
    def listen_address(self) -> tuple[str, int]:
        """(host, port) the coordinator accepts workers on (after warm)."""
        if self._server is None:
            raise RuntimeError("coordinator socket not open; call warm() first")
        return self._server.getsockname()[:2]

    @property
    def worker_processes(self) -> list[mp.process.BaseProcess]:
        """Process handles of auto-spawned local workers (crash-test hook)."""
        with self._registry:
            return [w.proc for w in self._workers.values() if w.proc is not None]

    def alive_workers(self) -> list[dict[str, Any]]:
        """Snapshot of the live worker pool (id, name, cores, speed, link).

        ``link_s`` is the fitted one-way latency; ``bandwidth_Bps`` and
        ``link_fitted`` expose the rest of the per-worker link model.
        """
        with self._registry:
            rows = []
            for w in self._workers.values():
                if not w.alive:
                    continue
                fit = w.link_fit()
                rows.append(
                    {
                        "id": w.id,
                        "name": w.name,
                        "cores": w.cores,
                        "load": w.load,
                        "speed": w.speed,
                        "shm_ok": w.shm_ok,
                        "link_s": fit.latency_s,
                        "bandwidth_Bps": fit.bandwidth_Bps,
                        "link_fitted": fit.fitted,
                    }
                )
            return rows

    def replica_placement(self) -> list[dict[int, int]]:
        """Per stage: worker id -> active replica count (placement map)."""
        placement: list[dict[int, int]] = []
        for i, cond in enumerate(self._conds):
            with cond:
                counts: dict[int, int] = {}
                for r in self._replicas[i]:
                    if r.active:
                        counts[r.worker.id] = counts.get(r.worker.id, 0) + 1
            placement.append(counts)
        return placement

    # --------------------------------------------------------------- warm-up
    def warm(self) -> None:
        """Open the coordinator socket, spawn/await workers, place replicas."""
        if self._closed:
            raise RuntimeError("backend is closed")
        if self._warm:
            return
        if self._calibrate_transport and self._codec.name == "auto":
            fitted = _transport.calibrated_auto_threshold()
            if fitted is not None:
                self._codec.threshold = fitted
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self._bind_host, self._bind_port))
        server.listen(64)
        server.settimeout(0.2)
        self._server = server
        host, port = server.getsockname()[:2]
        self._create_probe()
        # Fork the local workers *before* starting coordinator threads: a
        # fork in a multi-threaded process risks inheriting held locks.
        # Their connects sit in the listen backlog until the accept loop runs.
        if self.spawn_workers:
            methods = mp.get_all_start_methods()
            ctx = mp.get_context("fork" if "fork" in methods else methods[0])
            delays = self.worker_link_delays + [0.0] * self.spawn_workers
            bandwidths = self.worker_link_bandwidths + [0.0] * self.spawn_workers
            for k in range(self.spawn_workers):
                proc = ctx.Process(
                    target=_spawn_agent,
                    args=(host, port, self.worker_cores, f"local-{k}", delays[k],
                          bandwidths[k]),
                    name=f"dist-worker-{k}",
                    daemon=True,
                )
                proc.start()
                # Registration pairs the handle with the _WorkerConn by name.
                self._spawned[f"local-{k}"] = proc
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="dist-heartbeat-monitor", daemon=True
        )
        self._monitor_thread.start()
        self._warm = True
        # With external workers (spawn_workers=0) none may have connected
        # yet: placement waits until a session opens, after wait_for_workers().
        if self.spawn_workers:
            self.wait_for_workers(self.spawn_workers, timeout=self.register_timeout)
            self._ensure_placements()

    def _create_probe(self) -> None:
        """Create the session's shm probe workers verify at registration.

        A worker that can attach this segment and read back the token
        shares the coordinator's shared-memory namespace, so frames may
        carry descriptors instead of payload bytes.  A ``"pickle"``
        transport never probes — every frame is self-contained anyway.
        """
        if self._probe_name is not None or self._codec.name == "pickle":
            return
        import os as _os
        import uuid as _uuid

        self._probe_token = _uuid.uuid4().bytes
        name = f"{_transport.SHM_PREFIX}{self._codec.session}-probe{_os.getpid()}"
        try:
            seg = shared_memory.SharedMemory(
                name=name, create=True, size=len(self._probe_token)
            )
        except OSError:
            return  # no shared memory here: every worker negotiates pickle
        untrack(seg)
        seg.buf[: len(self._probe_token)] = self._probe_token
        seg.close()
        self._codec.track(name)  # close()'s sweep reclaims the probe too
        self._probe_name = name

    def _transport_spec(self) -> dict:
        spec = _transport.spec_of(self._codec)
        spec["probe"] = self._probe_name
        spec["token"] = self._probe_token
        return spec

    def link_models(self) -> dict[int, LinkModel]:
        """Fitted per-worker link models (worker id -> latency/bandwidth)."""
        with self._registry:
            return {w.id: w.link_fit() for w in self._workers.values() if w.alive}

    def wait_for_workers(self, n: int, timeout: float = 30.0) -> None:
        """Block until ``n`` live workers are registered (or raise)."""
        deadline = time.monotonic() + timeout
        with self._registry:
            while True:
                alive = sum(1 for w in self._workers.values() if w.alive)
                if alive >= n:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"timed out waiting for {n} workers ({alive} registered)"
                    )
                self._registry_changed.wait(timeout=min(remaining, 0.5))

    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._closing:
            try:
                sock, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                sock.settimeout(10.0)
                hello = recv_frame(sock)
                if not hello or hello[0] != "hello":
                    sock.close()
                    continue
                _, wname, cores, load = hello
                sock.settimeout(None)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except (OSError, ProtocolError):
                sock.close()
                continue
            with self._registry:
                wid = self._next_worker_id
                self._next_worker_id += 1
                worker = _WorkerConn(wid, sock, wname, cores)
                worker.proc = self._spawned.get(wname)
                worker.observe_load(load)
                self._workers[wid] = worker
                self._registry_changed.notify_all()
            if not worker.send(
                ("welcome", wid, self.heartbeat_interval, self.capacity,
                 self._transport_spec(), self._trace_on)
            ):
                self._on_worker_death(worker)
                continue
            self.events.emit(
                "worker.join",
                f"worker {wname!r} registered",
                worker=wid,
                name=wname,
                cores=cores,
            )
            t = threading.Thread(
                target=self._recv_loop,
                args=(worker,),
                name=f"dist-recv[{wid}]",
                daemon=True,
            )
            self._recv_threads.append(t)
            t.start()

    def _monitor_loop(self) -> None:
        while not self._closing:
            time.sleep(self.heartbeat_interval)
            now = time.monotonic()
            with self._registry:
                stale = [
                    w
                    for w in self._workers.values()
                    if w.alive and now - w.last_seen > self.heartbeat_timeout
                ]
            for w in stale:
                self._on_worker_death(w)

    # --------------------------------------------------------------- receive
    def _recv_loop(self, w: _WorkerConn) -> None:
        try:
            while True:
                frame = recv_frame(w.sock)
                if frame is None:
                    break
                w.last_seen = time.monotonic()
                kind = frame[0]
                if kind == "result":
                    (_, epoch, stage, slot, seq, ok, payload, service_s,
                     wait_s, t_sent, err_repr) = frame[:11]
                    # Trace extensions (tolerant: absent from pre-extension
                    # workers): worker-clock receive/send stamps plus any
                    # batched worker-side trace events.
                    t_recv_w = frame[11] if len(frame) > 11 else None
                    t_send_w = frame[12] if len(frame) > 12 else None
                    wk_events = frame[13] if len(frame) > 13 else ()
                    if epoch != self._epoch:
                        continue  # stale result from an earlier/aborted stream
                    self._resq[stage].put(
                        (w, slot, seq, ok, payload, service_s, wait_s,
                         t_sent, err_repr, time.perf_counter(),
                         t_recv_w, t_send_w, wk_events)
                    )
                elif kind == "reject":
                    # The worker no longer hosts that slot (task raced a
                    # retire): route it back through the router, which
                    # re-dispatches rather than counting it delivered.
                    _, epoch, stage, slot, seq = frame
                    if epoch != self._epoch:
                        continue
                    self._resq[stage].put(
                        (w, slot, seq, "reject", None, 0.0, 0.0, 0.0, None,
                         time.perf_counter(), None, None, ())
                    )
                elif kind == "heartbeat":
                    w.observe_load(frame[1])
                    if len(frame) > 2 and frame[2]:
                        self._emit_worker_trace(w, frame[2])
                elif kind == "shm_ok":
                    w.shm_ok = bool(frame[1])
                    w.shm_replied = True
                elif kind == "place_failed":
                    _, stage, slot, err_repr = frame
                    err = RuntimeError(
                        f"worker {w.name!r} could not host stage {stage}: "
                        f"{err_repr} (stage fns must be importable on workers)"
                    )
                    self._config_errors.append(err)
                    with self._conds[stage]:
                        self._replicas[stage] = [
                            r
                            for r in self._replicas[stage]
                            if not (r.worker is w and r.slot == slot)
                        ]
                        self._conds[stage].notify_all()
                    self._fail(stage, err)
        except (OSError, ProtocolError):
            pass
        finally:
            self._on_worker_death(w)

    # --------------------------------------------------------------- tracing
    def _set_trace(self, on: bool) -> None:
        """Toggle worker-side event tracing across the live pool."""
        if on == self._trace_on:
            return
        self._trace_on = on
        with self._registry:
            workers = [w for w in self._workers.values() if w.alive]
        for w in workers:
            w.send(("trace", on))

    def _item_seq(self, seq: int) -> "tuple[int, int]":
        """Session's executor-seq → (first item seq, items) translation."""
        session = self._session
        if session is None:
            return seq, 1
        return session._event_seq(seq)

    def _emit_worker_trace(self, w: _WorkerConn, events) -> None:
        """Re-emit batched worker events on the session bus, clock-mapped.

        Each tuple is ``(kind, t_worker, fields)``; the timestamp crosses
        the worker's fitted clock onto the coordinator clock and then onto
        the session clock, so ``wk.*`` records interleave correctly with
        coordinator-side events in the journal.  Events from a different
        epoch (an earlier/aborted stream) are dropped, mirroring the
        result path's exactly-once rule.
        """
        session = self._session
        if session is None or session.closed:
            return
        bus = session.events
        if not bus.active:
            return
        epoch = self._epoch
        # One fit per batch: ClockSync.fit() takes a lock, and a result
        # frame carries several events mapped through the same model.
        to_local = w.clock.fit().to_local
        # Worker events name executor seqs, which are micro-batch seqs
        # when batching is on: translate to item space (seq = first item,
        # items = N) so span/profile consumers attribute them per item.
        batch_map = getattr(session, "_batch_map", None)
        for kind, t_w, fields in events:
            if fields.get("epoch") != epoch:
                continue
            mapped = session.perf_to_session(to_local(t_w))
            out = {k: v for k, v in fields.items() if k != "epoch"}
            if batch_map and "seq" in out:
                m = batch_map.get(out["seq"])
                if m is not None:
                    out["seq"] = m[0]
                    if m[1] > 1:
                        out["items"] = m[1]
            bus.emit(kind, at=mapped, worker=w.id, **out)

    # --------------------------------------------------------------- failure
    def _fail(self, stage: int, err: BaseException) -> None:
        failure = (
            err
            if isinstance(err, StageError)
            else StageError(self.pipeline.stage(stage).name, err)
        )
        self._errors.append(failure)
        self._abort.set()
        for cond in self._conds:
            with cond:
                cond.notify_all()
        session = self._session
        if session is not None and not session.closed:
            session._deliver_error(failure)

    def _on_worker_death(self, w: _WorkerConn) -> None:
        """Remove a dead worker; re-home its replicas and in-flight items."""
        with self._registry:
            if not w.alive:
                return
            w.alive = False
            self._registry_changed.notify_all()
        try:
            w.sock.close()
        except OSError:
            pass
        lost_by_stage: list[list[tuple[int, Frame]]] = []
        for i, cond in enumerate(self._conds):
            with cond:
                self._replicas[i] = [
                    r for r in self._replicas[i] if r.worker is not w
                ]
                lost = sorted(
                    (seq, payload)
                    for seq, (replica, payload) in self._inflight[i].items()
                    if replica.worker is w
                )
                for seq, _payload in lost:
                    del self._inflight[i][seq]
                cond.notify_all()
            lost_by_stage.append(lost)
        self.events.emit(
            "worker.death",
            f"worker {w.name!r} died",
            worker=w.id,
            name=w.name,
            lost_items=sum(len(lost) for lost in lost_by_stage),
        )
        if self._closing:
            return
        # A stage stripped of every replica gets one on a survivor; if no
        # workers remain the run cannot finish — fail rather than hang.
        for i, cond in enumerate(self._conds):
            with cond:
                has_active = any(r.active for r in self._replicas[i])
            if not has_active and (self._running or self._warm):
                self.events.emit(
                    "adapt.decide",
                    f"re-home stage {i} after worker {w.name!r} death",
                    reason=f"re-home stage {i}: worker {w.id} died",
                    stage=i,
                    worker=w.id,
                )
                if not self._place_replica(i):
                    if self._running:
                        self._fail(
                            i,
                            RuntimeError(
                                f"worker {w.name!r} died and no live workers "
                                f"remain to host stage {i}"
                            ),
                        )
                    return
        if not self._running or not any(lost_by_stage):
            return
        # Re-dispatch can block on back-pressure; doing it inline would stall
        # the calling thread (the heartbeat monitor, or a recv loop), which
        # must stay free to detect *further* failures.
        threading.Thread(
            target=self._redispatch_lost,
            args=(lost_by_stage,),
            name=f"dist-redispatch[{w.id}]",
            daemon=True,
        ).start()

    def _redispatch_lost(self, lost_by_stage: list[list[tuple[int, Frame]]]) -> None:
        try:
            for i, lost in enumerate(lost_by_stage):
                for seq, payload in lost:
                    ev_seq, ev_items = self._item_seq(seq)
                    red = dict(stage=i, seq=ev_seq)
                    if ev_items > 1:
                        red["items"] = ev_items
                    self.events.emit("worker.redispatch", **red)
                    if not self._dispatch(i, seq, payload):
                        return
        except BaseException as err:  # noqa: BLE001 - reported via the session
            self._fail(0, err)

    # ------------------------------------------------------------- placement
    def _worker_score(self, w: _WorkerConn, hosted: dict[int, int]) -> float:
        """Lower is better: busy-ness over speed, inflated by link cost.

        ``hosted`` maps worker id -> replicas currently hosted (all stages);
        the +1 prices the replica about to be placed.  Link cost is the
        fitted model evaluated at the payload size the pipeline currently
        moves (``_ref_bytes``) — a bandwidth-starved worker is cheap for
        tiny items but expensive for large ones — priced relative to a
        10 ms reference service so a slow link only dominates once it is
        comparable to real per-item work.
        """
        busy = (hosted.get(w.id, 0) + 1) / (w.cores * max(w.speed, 1e-3))
        link_cost = w.link_fit().seconds(self._ref_bytes)
        return busy * (1.0 + link_cost / 0.010)

    def _hosted_counts(self) -> dict[int, int]:
        hosted: dict[int, int] = {}
        for i, cond in enumerate(self._conds):
            with cond:
                for r in self._replicas[i]:
                    if r.active:
                        hosted[r.worker.id] = hosted.get(r.worker.id, 0) + 1
        return hosted

    def _place_replica(
        self, stage: int, worker: _WorkerConn | None = None
    ) -> _Replica | None:
        """Place one replica of ``stage`` (on ``worker``, or the best one)."""
        while True:
            if worker is not None:
                if not worker.alive:
                    return None
                target = worker
            else:
                with self._registry:
                    cands = [w for w in self._workers.values() if w.alive]
                if not cands:
                    return None
                hosted = self._hosted_counts()
                target = min(cands, key=lambda w: self._worker_score(w, hosted))
            slot = target.new_slot()
            ok = target.send(
                (
                    "place",
                    stage,
                    slot,
                    self._fn_payloads[stage],
                    self.pipeline.stage(stage).name,
                )
            )
            if not ok:
                self._on_worker_death(target)
                if worker is not None:
                    return None
                continue
            replica = _Replica(target, slot)
            with self._conds[stage]:
                self._replicas[stage].append(replica)
                n_active = sum(1 for r in self._replicas[stage] if r.active)
                self._conds[stage].notify_all()
            self.events.emit(
                "replica.add", stage=stage, worker=target.id, n=n_active
            )
            return replica

    def _retire_replica(self, stage: int, replica: _Replica) -> None:
        """Stop dispatching to a replica; it finishes what it was dealt."""
        with self._conds[stage]:
            replica.active = False
            replica.retired = True
            if replica.inflight == 0 and replica in self._replicas[stage]:
                self._replicas[stage].remove(replica)
            n_active = sum(1 for r in self._replicas[stage] if r.active)
        self.events.emit(
            "replica.remove", stage=stage, worker=replica.worker.id, n=n_active
        )
        replica.worker.send(("retire", stage, replica.slot))

    def _ensure_placements(self) -> None:
        """Top each stage's active replica set up to its target count."""
        for i in range(self.pipeline.n_stages):
            while True:
                with self._conds[i]:
                    active = sum(1 for r in self._replicas[i] if r.active)
                if active >= self._target[i]:
                    break
                if self._place_replica(i) is None:
                    raise RuntimeError(
                        f"no live workers available to place stage {i} "
                        f"({self.pipeline.stage(i).name!r}); start workers "
                        "(python -m repro.backend.distributed.worker "
                        "--connect host:port) and wait_for_workers() first"
                    )

    def move_replica(self, stage: int, from_worker: int, to_worker: int) -> None:
        """Relocate one replica of ``stage`` between workers, live.

        Places on ``to_worker`` first, then retires one of ``from_worker``'s
        replicas — the stage never dips below its current parallelism, and
        the retiring replica finishes its in-flight items.
        """
        with self._registry:
            src = self._workers.get(from_worker)
            dst = self._workers.get(to_worker)
        if src is None or dst is None or not dst.alive:
            raise ValueError(
                f"unknown or dead worker in move ({from_worker} -> {to_worker})"
            )
        with self._conds[stage]:
            victims = [
                r
                for r in self._replicas[stage]
                if r.active and r.worker is src
            ]
        if not victims:
            raise ValueError(
                f"stage {stage} has no active replica on worker {from_worker}"
            )
        if self._place_replica(stage, worker=dst) is None:
            raise RuntimeError(f"failed to place stage {stage} on worker {to_worker}")
        self._retire_replica(stage, victims[0])
        self.events.emit(
            "replica.move",
            stage=stage,
            from_worker=from_worker,
            to_worker=to_worker,
        )

    # ------------------------------------------------------------- sessions
    def _open_session(
        self,
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> Session:
        return _DistributedSession(
            self,
            max_inflight=max_inflight,
            telemetry=telemetry,
            batching=batching,
        )

    # --------------------------------------------------------------- dispatch
    def _reserve_slot(self, stage: int) -> _Replica | None:
        """Claim capacity on the best live replica (blocks); None on abort."""
        cond = self._conds[stage]
        with cond:
            while True:
                if self._abort.is_set():
                    return None
                ready = [
                    r
                    for r in self._replicas[stage]
                    if r.active and r.worker.alive and r.inflight < self.capacity
                ]
                if ready:
                    best = min(
                        ready,
                        key=lambda r: (r.inflight + 1) / max(r.worker.speed, 1e-3),
                    )
                    best.inflight += 1
                    return best
                cond.wait(timeout=0.1)

    def _acquire_slot(self, stage: int, seq: int, payload: Frame) -> _Replica | None:
        """Assign ``seq`` to the best replica with capacity; None on abort."""
        replica = self._reserve_slot(stage)
        if replica is None:
            return None
        with self._conds[stage]:
            self._inflight[stage][seq] = (replica, payload)
        return replica

    def _dispatch_value(self, seq: int, value: Any) -> bool:
        """Admit one raw item: select the worker *first*, then encode for it.

        Items bound for a shm-verified worker get descriptor frames; items
        bound for a remote (or not-yet-negotiated) worker are pickled
        inline from the start — no segment-write + materialize + unlink
        churn in mixed pools.  Survives worker death mid-send like
        :meth:`_dispatch`.
        """
        while True:
            replica = self._reserve_slot(0)
            if replica is None:
                return False
            codec = self._codec if replica.worker.shm_ok else self._pickle_codec
            want_encode = self.events.wants("frame.encode")
            t_enc = time.perf_counter() if want_encode else 0.0
            frame = codec.encode(value)
            if isinstance(value, Batch) and self.events.wants("batch.encode"):
                self.events.emit(
                    "batch.encode", stage=0, seq=seq, base=value.base_seq,
                    items=len(value), nbytes=frame.nbytes,
                )
            if want_encode:
                ev_seq, ev_items = self._item_seq(seq)
                enc = dict(
                    stage=0, seq=ev_seq, nbytes=frame.nbytes,
                    inline=frame.inline, seconds=time.perf_counter() - t_enc,
                )
                if ev_items > 1:
                    enc["items"] = ev_items
                self.events.emit("frame.encode", **enc)
            with self._conds[0]:
                self._inflight[0][seq] = (replica, frame)
            sent = replica.worker.send(
                ("task", self._epoch, 0, replica.slot, seq, frame,
                 time.perf_counter())
            )
            if sent:
                if self.events.wants("item.dispatch"):
                    ev_seq, ev_items = self._item_seq(seq)
                    disp = dict(stage=0, seq=ev_seq, worker=replica.worker.id)
                    if ev_items > 1:
                        disp["items"] = ev_items
                    self.events.emit("item.dispatch", **disp)
                return True
            # Send failed: reclaim the assignment (unless the death handler
            # got there first and already re-homed it — with this very
            # frame), then mark the worker dead and retry with a fresh
            # encode for the next target.
            with self._conds[0]:
                entry = self._inflight[0].get(seq)
                reclaimed = entry is not None and entry[0] is replica
                if reclaimed:
                    del self._inflight[0][seq]
                    replica.inflight -= 1
            self._on_worker_death(replica.worker)
            if not reclaimed:
                return True
            self._codec.release(frame)

    def _dispatch(self, stage: int, seq: int, payload: Frame) -> bool:
        """Send one encoded item to ``stage``; survives worker death mid-send."""
        while True:
            replica = self._acquire_slot(stage, seq, payload)
            if replica is None:
                return False
            if not payload.inline and not replica.worker.shm_ok:
                # The chosen worker cannot attach this host's segments:
                # swap the assignment to a self-contained copy.  Copy
                # first, swap under the lock, release last — a concurrent
                # worker-death re-dispatch must never find the original's
                # segments already gone.
                copy = materialize(payload, release=False)
                with self._conds[stage]:
                    entry = self._inflight[stage].get(seq)
                    owned = entry is not None and entry[0] is replica
                    if owned:
                        self._inflight[stage][seq] = (replica, copy)
                if not owned:
                    return True  # a death handler already re-homed the item
                self._codec.release(payload)
                payload = copy
            sent = replica.worker.send(
                ("task", self._epoch, stage, replica.slot, seq, payload,
                 time.perf_counter())
            )
            if sent:
                if self.events.wants("item.dispatch"):
                    ev_seq, ev_items = self._item_seq(seq)
                    disp = dict(stage=stage, seq=ev_seq, worker=replica.worker.id)
                    if ev_items > 1:
                        disp["items"] = ev_items
                    self.events.emit("item.dispatch", **disp)
                return True
            # Send failed: reclaim the assignment (unless the death handler
            # got there first and already re-homed it), then mark the worker
            # dead and retry.
            with self._conds[stage]:
                entry = self._inflight[stage].get(seq)
                reclaimed = entry is not None and entry[0] is replica
                if reclaimed:
                    del self._inflight[stage][seq]
                    replica.inflight -= 1
            self._on_worker_death(replica.worker)
            if not reclaimed:
                return True

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut workers down and release every socket/thread (idempotent)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._closing = True
        self._abort.set()
        for cond in self._conds:
            with cond:
                cond.notify_all()
        if self._session is not None:
            try:
                self._session.close()
            except BaseException:  # noqa: BLE001 - closing, not reporting
                pass
        self._running = False
        with self._registry:
            workers = list(self._workers.values())
        for w in workers:
            if w.alive:
                w.send(("shutdown",))
            try:
                w.sock.close()
            except OSError:
                pass
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        for t in self._recv_threads:
            t.join(timeout=1.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=self.heartbeat_interval + 1.0)
        for w in workers:
            if w.proc is not None:
                w.proc.join(timeout=1.0)
                if w.proc.is_alive():
                    w.proc.terminate()
                    w.proc.join(timeout=1.0)
        # Every producer and consumer of this session's segments is now
        # stopped (externally-started workers lost their socket above):
        # reclaim the probe and whatever frames aborts or killed workers
        # stranded.  A clean run leaves only the probe.
        self._probe_name = None
        self._codec.sweep()

    # ----------------------------------------------------------- observation
    def resource_view(self, n_procs: int) -> ResourceView | None:
        """The measured worker pool as a virtual grid of ``n_procs`` slots.

        Slots are dealt round-robin over live workers, so when a worker dies
        the same pid universe re-maps onto the survivors — the planner sees
        fewer distinct hosts (and their measured speed and link costs)
        without the mapping's pid space shifting underneath it.

        Links carry each worker's **fitted** (latency, bandwidth): the
        pair's one-way latencies add (both hops cross the coordinator) and
        the smaller fitted bandwidth bounds the path, so the throughput
        model prices a large payload's transfer per link instead of
        assuming one constant wire speed.
        """
        with self._registry:
            alive = sorted(
                (w for w in self._workers.values() if w.alive), key=lambda w: w.id
            )
        if not alive:
            return None
        owner = {pid: alive[pid % len(alive)] for pid in range(n_procs)}
        fits = {w.id: w.link_fit() for w in alive}

        def eff(pid: int) -> float:
            return max(owner[pid].speed, 1e-3)

        def link(a: int, b: int) -> tuple[float, float]:
            wa, wb = owner[a], owner[b]
            if wa is wb:
                return _LOCAL_LINK
            fa, fb = fits[wa.id], fits[wb.id]
            return (
                fa.latency_s + fb.latency_s,
                min(fa.bandwidth_Bps, fb.bandwidth_Bps),
            )

        return fn_view(eff=eff, link=link, pids=list(range(n_procs)))

    # ----------------------------------------------------------------- shape
    def replica_counts(self) -> list[int]:
        if not self._warm:
            return list(self._target)
        counts = []
        for i, cond in enumerate(self._conds):
            with cond:
                counts.append(sum(1 for r in self._replicas[i] if r.active))
        return counts

    def replica_limit(self, stage: int) -> int:
        return self.max_replicas if self.pipeline.stage(stage).replicable else 1

    def reconfigure(self, stage: int, n_replicas: int) -> None:
        """Place/retire replicas of ``stage`` across workers to ``n_replicas``.

        Counts clamp to ``[1, replica_limit(stage)]``.  Growth places on the
        worker with the best speed/link score; shrink retires the
        worst-scored replica, which finishes its in-flight items — nothing
        drains, the run never pauses.
        """
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        n_replicas = min(n_replicas, self.replica_limit(stage))
        self._target[stage] = n_replicas
        if not self._warm:
            return
        with self._conds[stage]:
            active = [r for r in self._replicas[stage] if r.active]
        grow = n_replicas - len(active)
        for _ in range(grow):
            if self._place_replica(stage) is None:
                break
        if grow < 0:
            hosted = self._hosted_counts()
            by_badness = sorted(
                active,
                key=lambda r: self._worker_score(r.worker, hosted),
                reverse=True,
            )
            for r in by_badness[: len(active) - n_replicas]:
                self._retire_replica(stage, r)


register_backend("distributed", DistributedBackend)
