"""Asyncio adapter: I/O-bound stages as coroutine pools on one event loop.

Threads and processes buy parallelism with OS-level concurrency; for
I/O-bound stages (network fetches, storage calls) the waiting itself is the
work, and an event loop multiplexes thousands of in-flight waits on a
single thread.  This adapter runs the full :class:`~repro.backend.base.Backend`
port — sessions included — on ``asyncio``:

* The **event loop lives in a dedicated thread**, started lazily and kept
  warm across sessions, so the port's synchronous
  ``submit``/``drain``/``snapshots``/``reconfigure`` contract is preserved
  and :class:`~repro.backend.runner.RuntimeAdaptiveRunner` drives the
  observe→decide→act loop from its own thread, unchanged.
* A **session is a resident coroutine graph** on that loop: per-stage
  dispatchers and the collector run for the session's lifetime, items
  enter through a thread-safe hop (``run_coroutine_threadsafe``) whose
  ``fut.result()`` is the semaphore-bounded admission onto the resident
  loop, and back-to-back streams flow through the same warm graph with
  session-global sequence numbers keeping one ordering space.
* Each stage is a **coroutine pool bounded by a resizable semaphore**: the
  stage's dispatcher admits items (in input order) only while fewer than
  ``limit`` are in flight, so the semaphore limit *is* the stage's replica
  count.  ``reconfigure(stage, n)`` rewrites that limit in O(1) — growth
  admits more items immediately, shrink takes effect as in-flight items
  complete; nothing is drained or restarted.
* Stages may be declared as ``async def`` coroutines (awaited on the loop)
  or **plain callables**, which are offloaded via ``loop.run_in_executor``
  to a backend-owned thread pool so they cannot stall the loop.
* **Order restoration** is shared with the other executors through
  :class:`~repro.util.ordering.SequenceReorderer`: every stage starts items
  in input order and the collector emits in input order — the
  ``Pipeline1for1`` contract, replica races notwithstanding.
* **Abort-safe shutdown** mirrors the thread runtime: a failing stage
  records a :class:`~repro.runtime.threads.StageError`, poisons the
  session, in-flight tasks are cancelled, queues drain via sentinels, and
  ``drain()``/``join()`` re-raise with the stage named — no coroutine is
  left parked on a full queue.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.backend.base import (
    Backend,
    Session,
    SessionClosed,
    register_backend,
    validate_pipeline_shape,
)
from repro.core.pipeline import PipelineSpec
from repro.monitor.instrument import PipelineInstrumentation
from repro.runtime.threads import StageError
from repro.util.batching import Batch, map_batch
from repro.util.ordering import SequenceReorderer
from repro.util.validation import check_positive

__all__ = ["AsyncioBackend"]

_SENTINEL = object()


class _ResizableSemaphore:
    """Concurrency limiter whose limit can change while waiters are parked.

    Unlike ``asyncio.Semaphore`` this tracks a mutable *limit* against an
    in-use count, so ``set_limit`` is O(1) and never needs to inject or
    swallow permits to resize.  Exactly one coroutine (the stage's
    dispatcher) ever awaits ``acquire``, which keeps the wake-up protocol a
    single event.  All methods must run on the owning event loop.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.in_use = 0
        self._wake = asyncio.Event()

    async def acquire(self) -> None:
        while self.in_use >= self.limit:
            self._wake.clear()
            await self._wake.wait()
        self.in_use += 1

    def release(self) -> None:
        self.in_use -= 1
        self._wake.set()

    def set_limit(self, limit: int) -> None:
        self.limit = limit
        self._wake.set()


class _AsyncioSession(Session):
    """A resident coroutine graph on the backend's warm loop."""

    supports_batching = True

    def __init__(
        self,
        backend: "AsyncioBackend",
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> None:
        super().__init__(
            backend,
            max_inflight=max_inflight,
            telemetry=telemetry,
            batching=batching,
        )
        n = backend.pipeline.n_stages
        self.instrumentation = PipelineInstrumentation(n, events=self.events)
        self._stage_locks = [threading.Lock() for _ in range(n)]
        self._snapshot_locks = self._stage_locks
        self._errors: list[BaseException] = []
        self._loop = backend._ensure_loop()
        self._sems: list[_ResizableSemaphore] | None = None
        self._aabort: asyncio.Event | None = None
        self._queues: list[asyncio.Queue] | None = None
        # Submit-side ingress: a plain deque pumped onto the loop.  A
        # run_coroutine_threadsafe round trip per item would serialise a
        # blocking Future behind every submit — at E15-scale fan-out that
        # dwarfs the event loop's own per-item cost.  Instead submits spend
        # a semaphore credit (returned when the pump lands the item in
        # stage 0's bounded queue — that is the backpressure), append, and
        # fire a cheap one-way wake-up.
        self._ingress: deque = deque()
        self._credits = threading.Semaphore(backend.capacity)
        self._pump_wake: asyncio.Event | None = None
        self._ready = threading.Event()
        self._main_future = asyncio.run_coroutine_threadsafe(self._main(), self._loop)
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("asyncio session failed to start on the loop")

    # ---------------------------------------------------------- loop side
    async def _main(self) -> None:
        backend: AsyncioBackend = self.backend  # type: ignore[assignment]
        n = backend.pipeline.n_stages
        loop = asyncio.get_running_loop()
        self._aabort = asyncio.Event()
        abort = self._aabort
        self._sems = [_ResizableSemaphore(c) for c in backend._target]
        self._pump_wake = asyncio.Event()
        # queues[i] feeds stage i's dispatcher; queues[n] feeds the
        # collector.  Each has exactly one consumer and receives one
        # sentinel, put by its single upstream owner at session close.
        self._queues = [asyncio.Queue(maxsize=backend.capacity) for _ in range(n + 1)]
        queues = self._queues
        self._ready.set()
        instrumentation = self.instrumentation

        async def pump() -> None:
            """Move submitted items from the ingress deque into stage 0."""
            wake = self._pump_wake
            try:
                while True:
                    while not self._ingress:
                        wake.clear()
                        await wake.wait()
                    msg = self._ingress.popleft()
                    if msg is _SENTINEL:
                        return
                    await queues[0].put(msg)  # bounded: the backpressure
                    self._credits.release()
            finally:
                await queues[0].put(_SENTINEL)

        async def run_one(
            i: int, seq: int, value: Any, out_q: asyncio.Queue, sem: _ResizableSemaphore
        ) -> None:
            spec = backend.pipeline.stage(i)
            batched = isinstance(value, Batch)
            try:
                t0 = time.perf_counter()
                try:
                    if backend._is_async[i]:
                        if batched:
                            # Async stages await per item (each may suspend),
                            # but the batch still pays one queue hop and one
                            # reorderer transaction per stage.
                            outs = [await spec.fn(v) for v in value.items]
                            result = Batch(
                                outs, value.base_seq, value.gbase, value.bseq
                            )
                        else:
                            result = await spec.fn(value)
                    elif batched:
                        # One executor offload for the whole batch — the
                        # event-loop handoff (the asyncio per-item tax E18
                        # exposed) is paid once per N items.
                        result = await loop.run_in_executor(
                            backend._executor, map_batch, spec.fn, value
                        )
                    else:
                        result = await loop.run_in_executor(
                            backend._executor, spec.fn, value
                        )
                except asyncio.CancelledError:
                    raise  # abort/close cancelled us: not a stage failure
                except BaseException as err:  # noqa: BLE001 - reported upward
                    failure = StageError(spec.name, err)
                    self._errors.append(failure)
                    abort.set()
                    self._deliver_error(failure)
                    return
                dt = time.perf_counter() - t0
                with self._stage_locks[i]:
                    # This fabric's event seq space is gseq: a batch reports
                    # seq = its first item's gseq, items = its length.
                    instrumentation.stages[i].record_service(
                        dt, 1.0,
                        seq=value.gbase if batched else seq,
                        items=len(value) if batched else 1,
                    )
                if not abort.is_set():
                    await out_q.put((seq, result))
            finally:
                sem.release()

        async def dispatch(i: int) -> None:
            """Admit stage ``i``'s items in order, ``sems[i].limit`` at a time."""
            in_q, out_q, sem = queues[i], queues[i + 1], self._sems[i]
            metrics = instrumentation.stages[i]
            reorder = SequenceReorderer()
            pending: set[asyncio.Task] = set()
            try:
                while True:
                    got = await in_q.get()
                    if got is _SENTINEL:
                        break
                    if abort.is_set():
                        continue  # drain without dispatching
                    seq, value = got
                    with self._stage_locks[i]:
                        metrics.record_queue_length(in_q.qsize() + len(reorder))
                    for ready_seq, ready in reorder.push(seq, value):
                        await sem.acquire()
                        if abort.is_set():
                            sem.release()
                            break
                        task = loop.create_task(
                            run_one(i, ready_seq, ready, out_q, sem)
                        )
                        pending.add(task)
                        task.add_done_callback(pending.discard)
                if abort.is_set():
                    for task in pending:
                        task.cancel()
                if pending:
                    await asyncio.gather(*list(pending), return_exceptions=True)
            finally:
                await out_q.put(_SENTINEL)

        async def collect() -> None:
            reorder = SequenceReorderer()
            while True:
                got = await queues[n].get()
                if got is _SENTINEL:
                    break
                if abort.is_set():
                    continue
                seq, value = got
                for _ready_seq, ready in reorder.push(seq, value):
                    instrumentation.record_completion(
                        self.now(),
                        items=len(ready) if isinstance(ready, Batch) else 1,
                    )
                    self._deliver(ready)

        tasks = [loop.create_task(pump())]
        tasks += [loop.create_task(dispatch(i)) for i in range(n)]
        tasks.append(loop.create_task(collect()))
        # return_exceptions keeps the sentinel cascade intact: a failing
        # task's peers still run to completion (draining their queues),
        # so nothing is left parked; the failure surfaces via the session.
        results = await asyncio.gather(*tasks, return_exceptions=True)
        for r in results:
            if isinstance(r, BaseException) and not isinstance(
                r, asyncio.CancelledError
            ):
                self._deliver_error(r)

    # ----------------------------------------------------------- port hooks
    def _wake_pump(self) -> None:
        if self._pump_wake is not None:
            self._pump_wake.set()

    def _submit_one(self, stream: int, seq: int, gseq: int, item: Any) -> None:
        while not self._credits.acquire(timeout=0.05):
            if self._errors:
                raise self._errors[0]
            if self.closed:
                raise SessionClosed("session closed while submitting")
        self._ingress.append((gseq, item))
        try:
            self._loop.call_soon_threadsafe(self._wake_pump)
        except RuntimeError as err:  # loop torn down under us
            raise SessionClosed("backend event loop is closed") from err
        if self._errors:
            raise self._errors[0]

    def _shutdown(self) -> None:
        loop = self._loop
        if loop.is_closed():  # backend already tore the loop down
            return
        if self.broken or self._submitted > self._delivered:
            if self._aabort is not None:
                loop.call_soon_threadsafe(self._aabort.set)
        self._ingress.append(_SENTINEL)
        try:
            loop.call_soon_threadsafe(self._wake_pump)
        except RuntimeError:
            return
        try:
            self._main_future.result(timeout=5.0)
        except BaseException:  # noqa: BLE001 - closing, not reporting
            pass

    # -------------------------------------------------------------- reshaping
    def set_limit(self, stage: int, n_replicas: int) -> None:
        if self._sems is not None and not self._loop.is_closed():
            sem = self._sems[stage]
            self._loop.call_soon_threadsafe(sem.set_limit, n_replicas)


class AsyncioBackend(Backend):
    """Executes pipelines as bounded coroutine pools on a warm event loop.

    Parameters
    ----------
    pipeline:
        Stage specs; every stage must define ``fn`` (``async def`` or a
        plain callable — plain callables run on an offload thread pool).
    replicas:
        Initial concurrency limit per stage (default 1 each);
        ``replicas[i] > 1`` requires ``pipeline.stage(i).replicable``.
    capacity:
        Bounded inter-stage queue capacity (back-pressure), default 8.
    max_replicas:
        Ceiling ``reconfigure`` can raise a replicable stage's limit to.

    One instance is reusable: the loop thread stays warm between sessions
    and adapted concurrency limits carry over to the next stream.
    """

    name = "asyncio"
    supports_live_reconfigure = True

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        replicas: list[int] | None = None,
        capacity: int | None = None,
        max_replicas: int = 8,
    ) -> None:
        super().__init__(pipeline)
        capacity = 8 if capacity is None else capacity
        check_positive(capacity, "capacity")
        check_positive(max_replicas, "max_replicas")
        self._target = validate_pipeline_shape(pipeline, replicas, "asyncio runtime")
        n = pipeline.n_stages
        self.capacity = capacity
        self.max_replicas = max(max_replicas, *self._target)
        self._is_async = [
            inspect.iscoroutinefunction(pipeline.stage(i).fn) for i in range(n)
        ]
        # Warm resources (created lazily, persist across sessions).
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False

    # --------------------------------------------------------------- warm-up
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        """Start the dedicated loop thread (idempotent, warm across runs)."""
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
            self._loop_thread = threading.Thread(
                target=self._loop.run_forever, name="asyncio-backend", daemon=True
            )
            self._loop_thread.start()
        if self._executor is None and not all(self._is_async):
            # Sized so every sync stage can run at its ceiling concurrently;
            # ThreadPoolExecutor spawns threads on demand, so an unused
            # ceiling costs nothing.
            workers = sum(
                self.replica_limit(i)
                for i, is_async in enumerate(self._is_async)
                if not is_async
            )
            self._executor = ThreadPoolExecutor(
                max_workers=max(workers, 1), thread_name_prefix="asyncio-offload"
            )
        return self._loop

    # ------------------------------------------------------------- sessions
    def _open_session(
        self,
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> Session:
        return _AsyncioSession(
            self,
            max_inflight=max_inflight,
            telemetry=telemetry,
            batching=batching,
        )

    def close(self) -> None:
        """Abort any in-flight session and stop the loop thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        super().close()  # session shutdown needs the loop: close it first
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            assert self._loop_thread is not None
            self._loop_thread.join(timeout=5.0)
            if not self._loop_thread.is_alive():
                loop.close()
            self._loop = None
            self._loop_thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ----------------------------------------------------------------- shape
    def replica_counts(self) -> list[int]:
        return list(self._target)

    def replica_limit(self, stage: int) -> int:
        return self.max_replicas if self.pipeline.stage(stage).replicable else 1

    def reconfigure(self, stage: int, n_replicas: int) -> None:
        """Set ``stage``'s concurrency limit to ``n_replicas``, live, in O(1).

        Counts clamp to ``[1, replica_limit(stage)]``.  Growth admits more
        items the moment the dispatcher next checks the semaphore; shrink
        lowers the limit without cancelling in-flight items — the pool
        contracts as they complete.
        """
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        n_replicas = min(n_replicas, self.replica_limit(stage))
        before = self._target[stage]
        self._target[stage] = n_replicas
        session = self._session
        if isinstance(session, _AsyncioSession) and not session.closed:
            session.set_limit(stage, n_replicas)
            if n_replicas > before:
                session.events.emit("replica.add", stage=stage, n=n_replicas)
            elif n_replicas < before:
                session.events.emit("replica.remove", stage=stage, n=n_replicas)


register_backend("asyncio", AsyncioBackend)
