"""Asyncio adapter: I/O-bound stages as coroutine pools on one event loop.

Threads and processes buy parallelism with OS-level concurrency; for
I/O-bound stages (network fetches, storage calls) the waiting itself is the
work, and an event loop multiplexes thousands of in-flight waits on a
single thread.  This adapter runs the full :class:`~repro.backend.base.Backend`
port on ``asyncio``:

* The **event loop lives in a dedicated thread**, started lazily on the
  first ``start()`` and kept warm across runs, so the port's synchronous
  ``start``/``join``/``snapshots``/``reconfigure`` contract is preserved
  and :class:`~repro.backend.runner.RuntimeAdaptiveRunner` drives the
  observe→decide→act loop from its own thread, unchanged.
* Each stage is a **coroutine pool bounded by a resizable semaphore**: the
  stage's dispatcher admits items (in input order) only while fewer than
  ``limit`` are in flight, so the semaphore limit *is* the stage's replica
  count.  ``reconfigure(stage, n)`` rewrites that limit in O(1) — growth
  admits more items immediately, shrink takes effect as in-flight items
  complete; nothing is drained or restarted.
* Stages may be declared as ``async def`` coroutines (awaited on the loop)
  or **plain callables**, which are offloaded via ``loop.run_in_executor``
  to a backend-owned thread pool so they cannot stall the loop.
* **Order restoration** is shared with the other executors through
  :class:`~repro.util.ordering.SequenceReorderer`: every stage starts items
  in input order and the collector emits in input order — the
  ``Pipeline1for1`` contract, replica races notwithstanding.
* **Abort-safe shutdown** mirrors the thread runtime: a failing stage
  records a :class:`~repro.runtime.threads.StageError`, sets the abort
  flag, in-flight tasks are cancelled, queues drain via sentinels, and
  ``join()`` re-raises with the stage named — no coroutine is left parked
  on a full queue.
"""

from __future__ import annotations

import asyncio
import inspect
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable

from repro.backend.base import Backend, BackendResult, register_backend
from repro.core.pipeline import PipelineSpec
from repro.monitor.instrument import PipelineInstrumentation, StageSnapshot
from repro.runtime.threads import StageError
from repro.util.ordering import SequenceReorderer
from repro.util.validation import check_positive

__all__ = ["AsyncioBackend"]

_SENTINEL = object()


class _ResizableSemaphore:
    """Concurrency limiter whose limit can change while waiters are parked.

    Unlike ``asyncio.Semaphore`` this tracks a mutable *limit* against an
    in-use count, so ``set_limit`` is O(1) and never needs to inject or
    swallow permits to resize.  Exactly one coroutine (the stage's
    dispatcher) ever awaits ``acquire``, which keeps the wake-up protocol a
    single event.  All methods must run on the owning event loop.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.in_use = 0
        self._wake = asyncio.Event()

    async def acquire(self) -> None:
        while self.in_use >= self.limit:
            self._wake.clear()
            await self._wake.wait()
        self.in_use += 1

    def release(self) -> None:
        self.in_use -= 1
        self._wake.set()

    def set_limit(self, limit: int) -> None:
        self.limit = limit
        self._wake.set()


class AsyncioBackend(Backend):
    """Executes pipelines as bounded coroutine pools on a warm event loop.

    Parameters
    ----------
    pipeline:
        Stage specs; every stage must define ``fn`` (``async def`` or a
        plain callable — plain callables run on an offload thread pool).
    replicas:
        Initial concurrency limit per stage (default 1 each);
        ``replicas[i] > 1`` requires ``pipeline.stage(i).replicable``.
    capacity:
        Bounded inter-stage queue capacity (back-pressure), default 8.
    max_replicas:
        Ceiling ``reconfigure`` can raise a replicable stage's limit to.

    One instance is reusable: the loop thread stays warm between runs and
    adapted concurrency limits carry over to the next run.
    """

    name = "asyncio"
    supports_live_reconfigure = True

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        replicas: list[int] | None = None,
        capacity: int | None = None,
        max_replicas: int = 8,
    ) -> None:
        super().__init__(pipeline)
        capacity = 8 if capacity is None else capacity
        check_positive(capacity, "capacity")
        check_positive(max_replicas, "max_replicas")
        n = pipeline.n_stages
        if replicas is None:
            replicas = [1] * n
        if len(replicas) != n:
            raise ValueError(f"replicas must list {n} counts, got {len(replicas)}")
        for i, r in enumerate(replicas):
            if r < 1:
                raise ValueError(f"stage {i} replica count must be >= 1, got {r}")
            if r > 1 and not pipeline.stage(i).replicable:
                raise ValueError(
                    f"stage {i} ({pipeline.stage(i).name!r}) is stateful and "
                    "cannot be replicated"
                )
            if pipeline.stage(i).fn is None:
                raise ValueError(
                    f"stage {i} ({pipeline.stage(i).name!r}) has no fn; the "
                    "asyncio runtime executes real callables"
                )
        self.capacity = capacity
        self.max_replicas = max(max_replicas, *replicas)
        self._is_async = [
            inspect.iscoroutinefunction(pipeline.stage(i).fn) for i in range(n)
        ]
        self._target = list(replicas)
        self._stage_locks = [threading.Lock() for _ in range(n)]
        # Warm resources (created lazily, persist across runs).
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        # Per-run state.
        self._run_future = None
        self._sems: list[_ResizableSemaphore] | None = None
        self._abort: asyncio.Event | None = None
        self._errors: list[BaseException] = []
        self._outputs: list[Any] = []
        self._n_items = 0
        self._t0 = 0.0
        self._elapsed = 0.0
        self.instrumentation: PipelineInstrumentation | None = None

    # --------------------------------------------------------------- warm-up
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        """Start the dedicated loop thread (idempotent, warm across runs)."""
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
            self._loop_thread = threading.Thread(
                target=self._loop.run_forever, name="asyncio-backend", daemon=True
            )
            self._loop_thread.start()
        if self._executor is None and not all(self._is_async):
            # Sized so every sync stage can run at its ceiling concurrently;
            # ThreadPoolExecutor spawns threads on demand, so an unused
            # ceiling costs nothing.
            workers = sum(
                self.replica_limit(i)
                for i, is_async in enumerate(self._is_async)
                if not is_async
            )
            self._executor = ThreadPoolExecutor(
                max_workers=max(workers, 1), thread_name_prefix="asyncio-offload"
            )
        return self._loop

    # ------------------------------------------------------------- lifecycle
    def start(self, inputs: Iterable[Any]) -> int:
        if self._closed:
            raise RuntimeError("backend is closed")
        if self.running():
            raise RuntimeError("backend already running; join() it first")
        loop = self._ensure_loop()
        items = list(inputs)
        self._n_items = len(items)
        self._outputs = []
        self._errors = []
        self.instrumentation = PipelineInstrumentation(self.pipeline.n_stages)
        self._sems = [_ResizableSemaphore(c) for c in self._target]
        self._abort = asyncio.Event()
        self._elapsed = 0.0
        self._t0 = time.perf_counter()
        self._run_future = asyncio.run_coroutine_threadsafe(
            self._run_async(items), loop
        )
        return self._n_items

    async def _run_async(self, items: list[Any]) -> None:
        n = self.pipeline.n_stages
        loop = asyncio.get_running_loop()
        abort = self._abort
        sems = self._sems
        instrumentation = self.instrumentation
        assert abort is not None and sems is not None and instrumentation is not None
        # queues[i] feeds stage i's dispatcher; queues[n] feeds the collector.
        # Each has exactly one consumer and receives one sentinel, put by its
        # single upstream owner after all of that owner's work has landed.
        queues: list[asyncio.Queue] = [
            asyncio.Queue(maxsize=self.capacity) for _ in range(n + 1)
        ]

        async def run_one(
            i: int, seq: int, value: Any, out_q: asyncio.Queue, sem: _ResizableSemaphore
        ) -> None:
            spec = self.pipeline.stage(i)
            try:
                t0 = time.perf_counter()
                try:
                    if self._is_async[i]:
                        result = await spec.fn(value)
                    else:
                        result = await loop.run_in_executor(
                            self._executor, spec.fn, value
                        )
                except asyncio.CancelledError:
                    raise  # abort/close cancelled us: not a stage failure
                except BaseException as err:  # noqa: BLE001 - reported via join()
                    self._errors.append(StageError(spec.name, err))
                    abort.set()
                    return
                dt = time.perf_counter() - t0
                with self._stage_locks[i]:
                    instrumentation.stages[i].record_service(dt, 1.0)
                if not abort.is_set():
                    await out_q.put((seq, result))
            finally:
                sem.release()

        async def dispatch(i: int) -> None:
            """Admit stage ``i``'s items in order, ``sems[i].limit`` at a time."""
            in_q, out_q, sem = queues[i], queues[i + 1], sems[i]
            metrics = instrumentation.stages[i]
            reorder = SequenceReorderer()
            pending: set[asyncio.Task] = set()
            try:
                while True:
                    got = await in_q.get()
                    if got is _SENTINEL:
                        break
                    if abort.is_set():
                        continue  # drain without dispatching
                    seq, value = got
                    with self._stage_locks[i]:
                        metrics.record_queue_length(in_q.qsize() + len(reorder))
                    for ready_seq, ready in reorder.push(seq, value):
                        await sem.acquire()
                        if abort.is_set():
                            sem.release()
                            break
                        task = loop.create_task(
                            run_one(i, ready_seq, ready, out_q, sem)
                        )
                        pending.add(task)
                        task.add_done_callback(pending.discard)
                if abort.is_set():
                    for task in pending:
                        task.cancel()
                if pending:
                    await asyncio.gather(*list(pending), return_exceptions=True)
            finally:
                await out_q.put(_SENTINEL)

        async def feed() -> None:
            try:
                for seq, value in enumerate(items):
                    if abort.is_set():
                        break
                    await queues[0].put((seq, value))
            finally:
                await queues[0].put(_SENTINEL)

        async def collect() -> None:
            reorder = SequenceReorderer()
            while True:
                got = await queues[n].get()
                if got is _SENTINEL:
                    break
                if abort.is_set():
                    continue
                seq, value = got
                for _ready_seq, ready in reorder.push(seq, value):
                    self._outputs.append(ready)
                    instrumentation.record_completion(self.now())

        tasks = [loop.create_task(feed())]
        tasks += [loop.create_task(dispatch(i)) for i in range(n)]
        tasks.append(loop.create_task(collect()))
        try:
            # return_exceptions keeps the sentinel cascade intact: a failing
            # task's peers still run to completion (draining their queues),
            # so nothing is left parked; the failure re-raises below.
            results = await asyncio.gather(*tasks, return_exceptions=True)
            for r in results:
                if isinstance(r, BaseException):
                    raise r
        finally:
            self._elapsed = time.perf_counter() - self._t0

    def join(self) -> BackendResult:
        if self._run_future is None:
            raise RuntimeError("backend not started")
        try:
            self._run_future.result()
        except BaseException:
            if self._errors:
                raise self._errors[0] from None
            raise
        if self._errors:
            raise self._errors[0]
        assert self.instrumentation is not None
        return BackendResult(
            backend=self.name,
            outputs=self._outputs,
            items=len(self._outputs),
            elapsed=self._elapsed,
            service_means=[
                s.total.mean if s.total.n else math.nan
                for s in self.instrumentation.stages
            ],
            replica_counts=self.replica_counts(),
        )

    def running(self) -> bool:
        return self._run_future is not None and not self._run_future.done()

    def close(self) -> None:
        """Abort any in-flight run and stop the loop thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is not None:
            if self._abort is not None:
                loop.call_soon_threadsafe(self._abort.set)
            if self._run_future is not None:
                try:
                    self._run_future.result(timeout=5.0)
                except BaseException:  # noqa: BLE001 - closing, not reporting
                    pass
            loop.call_soon_threadsafe(loop.stop)
            assert self._loop_thread is not None
            self._loop_thread.join(timeout=5.0)
            if not self._loop_thread.is_alive():
                loop.close()
            self._loop = None
            self._loop_thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ----------------------------------------------------------- observation
    def now(self) -> float:
        return time.perf_counter() - self._t0

    def snapshots(self) -> list[StageSnapshot]:
        if self.instrumentation is None:
            return []
        return self.instrumentation.snapshots(self._stage_locks)

    def items_completed(self) -> int:
        return self.instrumentation.items_completed if self.instrumentation else 0

    def recent_throughput(self, horizon: float) -> float:
        if self.instrumentation is None:
            return math.nan
        return self.instrumentation.recent_throughput(self.now(), horizon)

    # ----------------------------------------------------------------- shape
    def replica_counts(self) -> list[int]:
        return list(self._target)

    def replica_limit(self, stage: int) -> int:
        return self.max_replicas if self.pipeline.stage(stage).replicable else 1

    def reconfigure(self, stage: int, n_replicas: int) -> None:
        """Set ``stage``'s concurrency limit to ``n_replicas``, live, in O(1).

        Counts clamp to ``[1, replica_limit(stage)]``.  Growth admits more
        items the moment the dispatcher next checks the semaphore; shrink
        lowers the limit without cancelling in-flight items — the pool
        contracts as they complete.
        """
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        n_replicas = min(n_replicas, self.replica_limit(stage))
        self._target[stage] = n_replicas
        if self.running() and self._sems is not None and self._loop is not None:
            sem = self._sems[stage]
            self._loop.call_soon_threadsafe(sem.set_limit, n_replicas)


register_backend("asyncio", AsyncioBackend)
