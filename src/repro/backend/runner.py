"""Observe→decide→act on *real* executors, with wall-clock measurements.

:class:`RuntimeAdaptiveRunner` closes the loop the simulator's controller
runs in simulated time (:mod:`repro.core.adaptive`), but against a live
:class:`~repro.backend.base.Backend`:

* **observe** — the backend's per-stage :class:`StageSnapshot` samples
  (wall-clock service times and queue depths collected through
  :mod:`repro.monitor.instrument`);
* **decide** — any policy with the ``decide(...)`` signature of
  :class:`~repro.core.policy.AdaptationPolicy` (the model-driven default)
  or :class:`~repro.core.policies_alt.ReactivePolicy`.  The policy reasons
  over a **virtual local grid**: one uniform unit-speed processor per
  available slot, so "replicate the bottleneck stage onto an idle
  processor" translates to "activate another warm worker";
* **act** — mapping deltas become ``backend.reconfigure(stage, n)`` calls,
  clamped to the backend's warm-pool limits;
* **validate** — after ``settle_time`` the measured sink throughput is
  compared with the pre-action window; a regression beyond
  ``rollback_tolerance`` reverts the replica counts and doubles the
  cooldown, mirroring the simulator controller's rollback rule.

The virtual grid is grounded in measurements where the backend can provide
them: each decide step asks ``backend.resource_view(n_virtual_procs)`` for
a view carrying load-derived effective speeds (thread backend) or
per-worker speeds plus measured link costs (distributed backend), falling
back to uniform unit-speed processors — where ``work_estimate`` *is* the
measured wall-clock service time.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.backend.base import Backend, make_backend
from repro.core.events import AdaptationEvent
from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig, AdaptationPolicy
from repro.gridsim.spec import uniform_grid
from repro.model.cost import MigrationCostModel
from repro.model.mapping import Mapping
from repro.model.throughput import ResourceView, snapshot_view

__all__ = ["RuntimeAdaptiveRunner", "RuntimeRunResult", "local_config"]


def local_config(**overrides) -> AdaptationConfig:
    """An :class:`AdaptationConfig` tuned for wall-clock cadences.

    The simulation defaults (5 s intervals, 10 s cooldowns) assume long
    grid runs; local pipelines finish in seconds, so the loop must look and
    act at sub-second cadence.  Activating a warm worker costs microseconds,
    hence the near-zero migration model.
    """
    defaults = dict(
        interval=0.25,
        cooldown=0.5,
        min_samples=2,
        settle_time=0.3,
        min_improvement=1.1,
        migration=MigrationCostModel(restart_overhead=0.01, drain_slack=0.01),
    )
    defaults.update(overrides)
    return AdaptationConfig(**defaults)


@dataclass
class RuntimeRunResult:
    """Outcome of one adaptively-controlled run on a real backend."""

    backend: str
    outputs: list[Any] | None
    items: int
    elapsed: float
    adaptation_events: list[AdaptationEvent] = field(default_factory=list)
    replica_history: list[tuple[float, tuple[int, ...]]] = field(default_factory=list)
    final_replicas: list[int] = field(default_factory=list)
    service_means: list[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.items / self.elapsed if self.elapsed > 0 else 0.0


class RuntimeAdaptiveRunner:
    """Drives live adaptation of a pipeline on a real execution backend.

    Parameters
    ----------
    pipeline:
        What to run.
    backend:
        A :class:`Backend` instance, or a registered name (``"threads"``,
        ``"processes"``); it must support live reconfiguration.
    config:
        Loop tunables; default :func:`local_config`.
    policy:
        Custom decide step (``AdaptationPolicy`` signature, carrying a
        ``config`` attribute); overrides ``config``.
    n_virtual_procs:
        Size of the virtual local grid the policy plans over — effectively
        the replica budget shared by all stages.  Default: enough for one
        processor per stage plus the largest warm pool, capped to be at
        least the host's core count.
    rollback:
        Enable the post-action throughput validation (default True).
    backend_kwargs:
        Forwarded to the backend factory when ``backend`` is a name.
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        backend: str | Backend = "threads",
        *,
        config: AdaptationConfig | None = None,
        policy=None,
        n_virtual_procs: int | None = None,
        rollback: bool = True,
        **backend_kwargs,
    ) -> None:
        self.pipeline = pipeline
        # run() keeps the backend's pools warm so the runner can be reused;
        # close() (or the context manager) reaps them, whether the backend
        # was built here from a name or passed in pre-configured.
        self.backend = make_backend(backend, pipeline, **backend_kwargs)
        if not self.backend.supports_live_reconfigure:
            raise ValueError(
                f"backend {self.backend.name!r} cannot reconfigure live; "
                "use it through skel.api / Backend.run instead"
            )
        if policy is not None:
            self.policy = policy
            self.config = policy.config
        else:
            self.config = config if config is not None else local_config()
            self.policy = AdaptationPolicy(pipeline, self.config)
        self.rollback = rollback
        n = pipeline.n_stages
        if n_virtual_procs is None:
            budget = max(self.backend.replica_limit(i) for i in range(n))
            n_virtual_procs = max(n + budget - 1, os.cpu_count() or 2, 2)
        if n_virtual_procs < n:
            raise ValueError(
                f"n_virtual_procs must cover {n} stages, got {n_virtual_procs}"
            )
        self.n_virtual_procs = n_virtual_procs
        self._view: ResourceView = snapshot_view(
            uniform_grid(n_virtual_procs).snapshot(0.0)
        )

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the backend's warm resources (always delegates)."""
        self.backend.close()

    def __enter__(self) -> "RuntimeAdaptiveRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ run
    def _initial_mapping(self) -> Mapping:
        """Spread stages over virtual processors, honouring start replicas."""
        counts = self.backend.replica_counts()
        free = list(range(self.n_virtual_procs))
        stages = []
        for count in counts:
            reps = []
            for _ in range(count):
                if free:
                    reps.append(free.pop(0))
            if not reps:  # more replicas than procs: share pid 0
                reps = [0]
            stages.append(tuple(reps))
        return Mapping(tuple(stages))

    def _sleep_until(self, deadline: float, n_items: int) -> bool:
        """Sleep in short slices; False when the run finished meanwhile."""
        while time.perf_counter() < deadline:
            if not self.backend.running() or self.backend.items_completed() >= n_items:
                return False
            time.sleep(0.02)
        return self.backend.running() and self.backend.items_completed() < n_items

    def run(self, inputs: Iterable[Any]) -> RuntimeRunResult:
        """Process ``inputs`` adaptively; returns outputs plus the timeline."""
        cfg = self.config
        n_items = self.backend.start(inputs)
        t0 = time.perf_counter()
        mapping = self._initial_mapping()
        events: list[AdaptationEvent] = []
        replica_history: list[tuple[float, tuple[int, ...]]] = [
            (0.0, tuple(self.backend.replica_counts()))
        ]
        last_action = -math.inf

        try:
            self._control_loop(cfg, n_items, t0, mapping, events, replica_history, last_action)
        except BaseException:
            # A crashing decide step (or an interrupt) must not orphan the
            # started run: reap it so the backend is reusable/inspectable.
            self.backend.close()
            raise
        result = self.backend.join()
        return RuntimeRunResult(
            backend=result.backend,
            outputs=result.outputs,
            items=result.items,
            elapsed=result.elapsed,
            adaptation_events=events,
            replica_history=replica_history,
            final_replicas=list(result.replica_counts),
            service_means=list(result.service_means),
        )

    def _control_loop(
        self,
        cfg: AdaptationConfig,
        n_items: int,
        t0: float,
        mapping: Mapping,
        events: list[AdaptationEvent],
        replica_history: list[tuple[float, tuple[int, ...]]],
        last_action: float,
    ) -> None:
        while self._sleep_until(time.perf_counter() + cfg.interval, n_items):
            now = time.perf_counter() - t0
            # Ground the virtual grid in the backend's measured reality when
            # it has one (host load, per-worker speeds, link costs); the
            # uniform unit-speed view remains the fallback.
            measured_view = self.backend.resource_view(self.n_virtual_procs)
            decision = self.policy.decide(
                now=now,
                current=mapping,
                snapshots=self.backend.snapshots(),
                view=measured_view if measured_view is not None else self._view,
                source_pid=0,
                sink_pid=0,
                remaining_items=n_items - self.backend.items_completed(),
                last_action_time=last_action,
            )
            if not decision.acts:
                continue
            assert decision.new_mapping is not None
            new_mapping = decision.new_mapping
            old_counts = self.backend.replica_counts()
            # Clamp the proposal to what the warm pools can actually honour.
            for i in range(self.pipeline.n_stages):
                limit = self.backend.replica_limit(i)
                reps = new_mapping.replicas(i)
                if len(reps) > limit:
                    new_mapping = new_mapping.with_stage(i, list(reps)[:limit])
            new_counts = [
                len(new_mapping.replicas(i)) for i in range(self.pipeline.n_stages)
            ]
            if new_mapping == mapping or new_counts == old_counts:
                # Nothing physical would change (e.g. the proposal exceeded
                # the warm-pool limit and clamped back to the current shape):
                # recording an event or sleeping a settle window would
                # fabricate adaptations the backend never performed.
                continue
            before_tp = self.backend.recent_throughput(max(cfg.interval, 0.25))
            for i, (old_n, new_n) in enumerate(zip(old_counts, new_counts)):
                if old_n != new_n:
                    self.backend.reconfigure(i, new_n)
            # Record what the backend *achieved*, not what was proposed — a
            # live grow can no-op (e.g. the stage already drained), and the
            # timeline must not claim replicas that never existed.
            realized = self.backend.replica_counts()
            if realized == old_counts:
                continue
            for i, cnt in enumerate(realized):
                reps = new_mapping.replicas(i)
                if cnt < len(reps):
                    new_mapping = new_mapping.with_stage(i, list(reps)[:cnt])
            old_mapping = mapping
            mapping = new_mapping
            last_action = time.perf_counter() - t0
            kind = "replicate" if new_mapping.is_replicated() else "remap"
            events.append(
                AdaptationEvent(
                    time=last_action,
                    kind=kind,
                    mapping_before=old_mapping,
                    mapping_after=new_mapping,
                    reason=decision.reason,
                    predicted_gain=decision.predicted_gain,
                    throughput_before=before_tp,
                )
            )
            replica_history.append((last_action, tuple(realized)))
            if not self.rollback:
                continue
            # Post-action validation mirrors the simulator controller: let
            # in-flight items drain for one settle window, measure a second.
            if not self._sleep_until(
                time.perf_counter() + 2 * cfg.settle_time, n_items
            ):
                break
            after_tp = self.backend.recent_throughput(cfg.settle_time)
            if (
                not math.isnan(before_tp)
                and not math.isnan(after_tp)
                and after_tp < before_tp * cfg.rollback_tolerance
            ):
                for i, (old_n, new_n) in enumerate(zip(old_counts, realized)):
                    if old_n != new_n:
                        self.backend.reconfigure(i, old_n)
                now = time.perf_counter() - t0
                events.append(
                    AdaptationEvent(
                        time=now,
                        kind="rollback",
                        mapping_before=new_mapping,
                        mapping_after=old_mapping,
                        reason=(
                            f"measured {after_tp:.3f}/s < "
                            f"{cfg.rollback_tolerance:.2f} x {before_tp:.3f}/s"
                        ),
                        predicted_gain=1.0,
                        throughput_before=after_tp,
                    )
                )
                mapping = old_mapping
                replica_history.append((now, tuple(old_counts)))
                last_action = now + cfg.cooldown  # demand stronger evidence
