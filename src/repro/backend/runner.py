"""Observe→decide→act on *real* executors, with wall-clock measurements.

:class:`RuntimeAdaptiveRunner` closes the loop the simulator's controller
runs in simulated time (:mod:`repro.core.adaptive`), but against a live
:class:`~repro.backend.base.Backend` — and, since the streaming refactor,
against a live **session**: :meth:`~RuntimeAdaptiveRunner.attach` binds a
controller thread to a :class:`~repro.backend.base.Session`, and that one
controller keeps observing and acting across every stream the session
serves.  The measurement window, cooldown state and current mapping are
continuous across stream boundaries instead of restarting per ``run()`` —
exactly what a resident service needs.

* **observe** — the backend's per-stage :class:`StageSnapshot` samples
  (wall-clock service times and queue depths collected through
  :mod:`repro.monitor.instrument`, cumulative across streams);
* **decide** — any policy with the ``decide(...)`` signature of
  :class:`~repro.core.policy.AdaptationPolicy` (the model-driven default),
  :class:`~repro.core.policies_alt.ReactivePolicy`, or the
  :class:`BottleneckGrowthPolicy` heuristic.  The policy reasons over a
  **virtual local grid**: one uniform unit-speed processor per available
  slot, so "replicate the bottleneck stage onto an idle processor"
  translates to "activate another warm worker";
* **act** — mapping deltas become ``backend.reconfigure(stage, n)`` calls,
  clamped to the backend's warm-pool limits;
* **validate** — after ``settle_time`` the measured sink throughput is
  compared with the pre-action window; a regression beyond
  ``rollback_tolerance`` reverts the replica counts and doubles the
  cooldown, mirroring the simulator controller's rollback rule.

The virtual grid is grounded in measurements where the backend can provide
them: each decide step asks ``backend.resource_view(n_virtual_procs)`` for
a view carrying load-derived effective speeds (thread backend) or
per-worker speeds plus measured link costs (distributed backend), falling
back to uniform unit-speed processors — where ``work_estimate`` *is* the
measured wall-clock service time.

``run(inputs)`` remains the bounded-stream convenience: it attaches (once,
lazily), feeds the items through ``session.submit`` under backpressure,
drains, and reports the events of that stream — repeated calls stream
back-to-back over the same warm session with the controller never
detaching in between.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.backend.base import Backend, Session, make_backend
from repro.core.events import AdaptationEvent, Decision
from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig, AdaptationPolicy
from repro.gridsim.spec import uniform_grid
from repro.model.cost import MigrationCostModel
from repro.model.mapping import Mapping
from repro.model.throughput import ResourceView, snapshot_view
from repro.runtime.threads import propose_growth

__all__ = [
    "BottleneckGrowthPolicy",
    "RuntimeAdaptiveRunner",
    "RuntimeRunResult",
    "local_config",
]


def local_config(**overrides) -> AdaptationConfig:
    """An :class:`AdaptationConfig` tuned for wall-clock cadences.

    The simulation defaults (5 s intervals, 10 s cooldowns) assume long
    grid runs; local pipelines finish in seconds, so the loop must look and
    act at sub-second cadence.  Activating a warm worker costs microseconds,
    hence the near-zero migration model.
    """
    defaults = dict(
        interval=0.25,
        cooldown=0.5,
        min_samples=2,
        settle_time=0.3,
        min_improvement=1.1,
        migration=MigrationCostModel(restart_overhead=0.01, drain_slack=0.01),
    )
    defaults.update(overrides)
    return AdaptationConfig(**defaults)


@dataclass
class RuntimeRunResult:
    """Outcome of one adaptively-controlled stream on a real backend."""

    backend: str
    outputs: list[Any] | None
    items: int
    elapsed: float
    adaptation_events: list[AdaptationEvent] = field(default_factory=list)
    replica_history: list[tuple[float, tuple[int, ...]]] = field(default_factory=list)
    final_replicas: list[int] = field(default_factory=list)
    service_means: list[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.items / self.elapsed if self.elapsed > 0 else 0.0


class BottleneckGrowthPolicy:
    """The classic batch growth heuristic as a live policy.

    Wraps :func:`repro.runtime.threads.propose_growth` — grow the stage
    with the largest windowed service time per worker, when it dominates
    the runner-up by ``imbalance_threshold`` and is replicable and under
    ``max_workers`` — in the runner's ``decide`` signature, replacing the
    bespoke rebuild-between-batches controller
    :class:`~repro.runtime.threads.AdaptiveThreadPipeline` used to run.
    Grow-only and model-free: useful where the model-driven default is too
    eager, or for parity with the legacy batch-mode behaviour.
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        config: AdaptationConfig | None = None,
        *,
        max_workers: int = 4,
        imbalance_threshold: float = 1.5,
    ) -> None:
        self.pipeline = pipeline
        self.config = config if config is not None else local_config()
        self.max_workers = max_workers
        self.imbalance_threshold = imbalance_threshold

    def decide(
        self,
        *,
        now: float,
        current: Mapping,
        snapshots,
        view: ResourceView,
        source_pid: int,
        sink_pid: int,
        remaining_items: int,
        last_action_time: float = -math.inf,
    ) -> Decision:
        cfg = self.config
        if now - last_action_time < cfg.cooldown:
            return Decision(None, reason="cooldown")
        if remaining_items <= 0:
            return Decision(None, reason="no-remaining-work")
        n = self.pipeline.n_stages
        per_worker, counts, replicable = [], [], []
        for i in range(n):
            snap = snapshots[i] if i < len(snapshots) else None
            n_reps = len(current.replicas(i))
            service = 0.0
            if (
                snap is not None
                and snap.items_processed >= cfg.min_samples
                and not math.isnan(snap.service_time)
            ):
                service = snap.service_time
            per_worker.append(service / n_reps)
            counts.append(n_reps)
            replicable.append(self.pipeline.stage(i).replicable)
        stage = propose_growth(
            per_worker,
            counts,
            replicable,
            max_workers=self.max_workers,
            imbalance_threshold=self.imbalance_threshold,
        )
        if stage is None:
            return Decision(None, reason="balanced-or-capped")
        used = {p for i in range(n) for p in current.replicas(i)}
        free = [p for p in view.pids() if p not in used]
        if not free:
            return Decision(None, reason="no-free-processor")
        new = current.with_stage(stage, list(current.replicas(stage)) + [free[0]])
        return Decision(
            new,
            reason=(
                f"grow bottleneck stage {stage} to {counts[stage] + 1} workers "
                f"({per_worker[stage] * 1e3:.1f} ms/item/worker)"
            ),
            predicted_gain=1.0,
        )


class RuntimeAdaptiveRunner:
    """Drives live adaptation of a pipeline on a real execution backend.

    Parameters
    ----------
    pipeline:
        What to run.
    backend:
        A :class:`Backend` instance, or a registered name (``"threads"``,
        ``"processes"``); it must support live reconfiguration.
    config:
        Loop tunables; default :func:`local_config`.
    policy:
        Custom decide step (``AdaptationPolicy`` signature, carrying a
        ``config`` attribute); overrides ``config``.
    n_virtual_procs:
        Size of the virtual local grid the policy plans over — effectively
        the replica budget shared by all stages.  Default: enough for one
        processor per stage plus the largest warm pool, capped to be at
        least the host's core count.
    rollback:
        Enable the post-action throughput validation (default True).
    backend_kwargs:
        Forwarded to the backend factory when ``backend`` is a name.
    """

    def __init__(
        self,
        pipeline: PipelineSpec,
        backend: str | Backend = "threads",
        *,
        config: AdaptationConfig | None = None,
        policy=None,
        n_virtual_procs: int | None = None,
        rollback: bool = True,
        **backend_kwargs,
    ) -> None:
        self.pipeline = pipeline
        # run() keeps the backend's session warm so the runner can be
        # reused; close() (or the context manager) reaps it, whether the
        # backend was built here from a name or passed in pre-configured.
        self.backend = make_backend(backend, pipeline, **backend_kwargs)
        if not self.backend.supports_live_reconfigure:
            raise ValueError(
                f"backend {self.backend.name!r} cannot reconfigure live; "
                "use it through skel.api / Backend.run instead"
            )
        if policy is not None:
            self.policy = policy
            self.config = policy.config
        else:
            self.config = config if config is not None else local_config()
            self.policy = AdaptationPolicy(pipeline, self.config)
        self.rollback = rollback
        n = pipeline.n_stages
        if n_virtual_procs is None:
            budget = max(self.backend.replica_limit(i) for i in range(n))
            n_virtual_procs = max(n + budget - 1, os.cpu_count() or 2, 2)
        if n_virtual_procs < n:
            raise ValueError(
                f"n_virtual_procs must cover {n} stages, got {n_virtual_procs}"
            )
        self.n_virtual_procs = n_virtual_procs
        self._view: ResourceView = snapshot_view(
            uniform_grid(n_virtual_procs).snapshot(0.0)
        )
        # Controller state (guarded by _lock; persists across streams).
        self._lock = threading.Lock()
        self._controller: threading.Thread | None = None
        self._stop = threading.Event()
        self._attached: Session | None = None
        self._attach_t0 = 0.0
        self._run_t0: float | None = None
        self._controller_error: BaseException | None = None
        self.events: list[AdaptationEvent] = []
        self.replica_history: list[tuple[float, tuple[int, ...]]] = []

    # ------------------------------------------------------------- lifecycle
    def attach(self, session: Session | None = None) -> Session:
        """Bind the control loop to ``session`` (opening one if needed).

        The controller thread observes, decides and acts for as long as the
        session lives — across every stream it serves — keeping cooldowns
        and the measurement window continuous over stream boundaries.
        Returns the attached session.
        """
        if self._controller is not None and self._controller.is_alive():
            raise RuntimeError("controller already attached; detach() it first")
        if session is None:
            # Reuse the backend's live session (replacing a broken one)
            # rather than demanding a fresh open: attaching to whatever is
            # already streaming is the common case.
            session = self.backend._current_session()
        self._attached = session
        self._stop = threading.Event()
        self._attach_t0 = time.perf_counter()
        self._controller_error = None
        self._controller = threading.Thread(
            target=self._controller_main,
            args=(session, self._stop),
            name="adaptive-controller",
            daemon=True,
        )
        self._controller.start()
        return session

    def detach(self) -> None:
        """Stop the control loop (the session keeps streaming unadapted)."""
        self._stop.set()
        if self._controller is not None:
            self._controller.join(timeout=5.0)
            self._controller = None
        self._attached = None

    def close(self) -> None:
        """Detach and release the backend's warm resources."""
        self.detach()
        self.backend.close()

    def __enter__(self) -> "RuntimeAdaptiveRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ run
    def run(self, inputs: Iterable[Any]) -> RuntimeRunResult:
        """Process ``inputs`` as one adaptively-controlled bounded stream.

        Attaches on first use and stays attached, so repeated ``run`` calls
        stream back-to-back over one warm session with the controller
        adapting continuously across the boundaries.  The result carries
        the events and replica timeline of *this* stream.
        """
        items = list(inputs)
        session = self._attached
        if session is None or session.closed or session.broken:
            if self._controller is not None:
                self.detach()
            session = self.attach()
        with self._lock:
            events_mark = len(self.events)
            self._run_t0 = time.perf_counter()
            run_start_counts = tuple(self.backend.replica_counts())
        t0 = time.perf_counter()
        try:
            for item in items:
                session.submit(item)
            outputs = session.drain()
        except BaseException:
            # The stream failed (or was interrupted): the controller has
            # nothing live left to adapt — detach so state is not smeared
            # into a future session.
            self.detach()
            raise
        finally:
            with self._lock:
                self._run_t0 = None
        if self._controller_error is not None:
            # A crashing decide step must not be silently swallowed: reap
            # the backend (mirroring the one-shot runner) and re-raise.
            err = self._controller_error
            self.close()
            raise err
        elapsed = session.last_stream_elapsed
        with self._lock:
            run_events = list(self.events[events_mark:])
        history = [(0.0, run_start_counts)]
        history += [(e.time, self._counts_of(e.mapping_after)) for e in run_events]
        return RuntimeRunResult(
            backend=self.backend.name,
            outputs=outputs if session.produces_outputs else None,
            items=session.last_stream_items,
            elapsed=elapsed if elapsed is not None else time.perf_counter() - t0,
            adaptation_events=run_events,
            replica_history=history,
            final_replicas=list(self.backend.replica_counts()),
            service_means=session.service_means(),
        )

    def _counts_of(self, mapping: Mapping) -> tuple[int, ...]:
        return tuple(
            len(mapping.replicas(i)) for i in range(self.pipeline.n_stages)
        )

    # ------------------------------------------------------------ controller
    def _initial_mapping(self) -> Mapping:
        """Spread stages over virtual processors, honouring start replicas."""
        counts = self.backend.replica_counts()
        free = list(range(self.n_virtual_procs))
        stages = []
        for count in counts:
            reps = []
            for _ in range(count):
                if free:
                    reps.append(free.pop(0))
            if not reps:  # more replicas than procs: share pid 0
                reps = [0]
            stages.append(tuple(reps))
        return Mapping(tuple(stages))

    def _now(self) -> float:
        """Controller clock: stream-relative while a run() is active."""
        with self._lock:
            t0 = self._run_t0 if self._run_t0 is not None else self._attach_t0
        return time.perf_counter() - t0

    def _session_live(self, session: Session, stop: threading.Event) -> bool:
        return not stop.is_set() and not session.closed and not session.broken

    def _wait_active(
        self, session: Session, stop: threading.Event, duration: float
    ) -> bool:
        """Sleep ``duration`` in slices; False once nothing is left flowing."""
        deadline = time.perf_counter() + duration
        while time.perf_counter() < deadline:
            if not self._session_live(session, stop):
                return False
            time.sleep(0.02)
        return self._session_live(session, stop) and session.backlog > 0

    def _controller_main(self, session: Session, stop: threading.Event) -> None:
        try:
            self._control_loop(session, stop)
        except BaseException as err:  # noqa: BLE001 - re-raised from run()
            self._controller_error = err

    def _control_loop(self, session: Session, stop: threading.Event) -> None:
        cfg = self.config
        mapping = self._initial_mapping()
        last_action = -math.inf
        while self._session_live(session, stop):
            stop.wait(cfg.interval)
            if not self._session_live(session, stop):
                return
            backlog = session.backlog
            if backlog <= 0:
                continue  # idle between streams: nothing to measure or move
            now = self._now()
            # Ground the virtual grid in the backend's measured reality when
            # it has one (host load, per-worker speeds, link costs); the
            # uniform unit-speed view remains the fallback.
            measured_view = self.backend.resource_view(self.n_virtual_procs)
            decision = self.policy.decide(
                now=now,
                current=mapping,
                snapshots=self.backend.snapshots(),
                view=measured_view if measured_view is not None else self._view,
                source_pid=0,
                sink_pid=0,
                remaining_items=backlog,
                last_action_time=last_action,
            )
            if not decision.acts:
                continue
            session.events.emit(
                "adapt.decide",
                decision.reason,
                reason=decision.reason,
                predicted_gain=decision.predicted_gain,
                backlog=backlog,
            )
            assert decision.new_mapping is not None
            new_mapping = decision.new_mapping
            old_counts = self.backend.replica_counts()
            # Clamp the proposal to what the warm pools can actually honour.
            for i in range(self.pipeline.n_stages):
                limit = self.backend.replica_limit(i)
                reps = new_mapping.replicas(i)
                if len(reps) > limit:
                    new_mapping = new_mapping.with_stage(i, list(reps)[:limit])
            new_counts = [
                len(new_mapping.replicas(i)) for i in range(self.pipeline.n_stages)
            ]
            if new_mapping == mapping or new_counts == old_counts:
                # Nothing physical would change (e.g. the proposal exceeded
                # the warm-pool limit and clamped back to the current shape):
                # recording an event or sleeping a settle window would
                # fabricate adaptations the backend never performed.
                continue
            before_tp = self.backend.recent_throughput(max(cfg.interval, 0.25))
            for i, (old_n, new_n) in enumerate(zip(old_counts, new_counts)):
                if old_n != new_n:
                    self.backend.reconfigure(i, new_n)
            # Record what the backend *achieved*, not what was proposed — a
            # live grow can no-op, and the timeline must not claim replicas
            # that never existed.
            realized = self.backend.replica_counts()
            if realized == old_counts:
                continue
            for i, cnt in enumerate(realized):
                reps = new_mapping.replicas(i)
                if cnt < len(reps):
                    new_mapping = new_mapping.with_stage(i, list(reps)[:cnt])
            old_mapping = mapping
            mapping = new_mapping
            last_action = self._now()
            kind = "replicate" if new_mapping.is_replicated() else "remap"
            event = AdaptationEvent(
                time=last_action,
                kind=kind,
                mapping_before=old_mapping,
                mapping_after=new_mapping,
                reason=decision.reason,
                predicted_gain=decision.predicted_gain,
                throughput_before=before_tp,
            )
            with self._lock:
                self.events.append(event)
                self.replica_history.append((last_action, tuple(realized)))
            session.events.emit(
                "adapt.act",
                decision.reason,
                action=kind,
                reason=decision.reason,
                predicted_gain=decision.predicted_gain,
                replicas_before=list(old_counts),
                replicas_after=list(realized),
                throughput_before=before_tp,
            )
            if not self.rollback:
                continue
            # Post-action validation mirrors the simulator controller: let
            # in-flight items drain for one settle window, measure a second.
            if not self._wait_active(session, stop, 2 * cfg.settle_time):
                continue
            after_tp = self.backend.recent_throughput(cfg.settle_time)
            if (
                not math.isnan(before_tp)
                and not math.isnan(after_tp)
                and after_tp < before_tp * cfg.rollback_tolerance
            ):
                for i, (old_n, new_n) in enumerate(zip(old_counts, realized)):
                    if old_n != new_n:
                        self.backend.reconfigure(i, old_n)
                now = self._now()
                rollback_event = AdaptationEvent(
                    time=now,
                    kind="rollback",
                    mapping_before=new_mapping,
                    mapping_after=old_mapping,
                    reason=(
                        f"measured {after_tp:.3f}/s < "
                        f"{cfg.rollback_tolerance:.2f} x {before_tp:.3f}/s"
                    ),
                    predicted_gain=1.0,
                    throughput_before=after_tp,
                )
                with self._lock:
                    self.events.append(rollback_event)
                    self.replica_history.append((now, tuple(old_counts)))
                session.events.emit(
                    "adapt.rollback",
                    rollback_event.reason,
                    reason=rollback_event.reason,
                    replicas_before=list(realized),
                    replicas_after=list(old_counts),
                    throughput_before=before_tp,
                    throughput_after=after_tp,
                )
                mapping = old_mapping
                last_action = now + cfg.cooldown  # demand stronger evidence
