"""Simulator adapter: the discrete-event grid engine behind the port.

The simulator *measures* (simulated seconds, adaptation events on a
modelled grid) rather than computing; when every stage carries a real
callable the adapter additionally applies the stages sequentially so
``outputs`` obeys the same ``Pipeline1for1`` contract as the real
backends — handy for apples-to-apples benchmark tables.

Live ``reconfigure`` is deliberately unsupported: inside the simulation the
observe→decide→act loop is owned by
:class:`~repro.core.adaptive.AdaptivePipeline`'s controller process (enable
it with ``adaptive=``); wall-clock controllers like
:class:`~repro.backend.runner.RuntimeAdaptiveRunner` have no purchase on
simulated time.
"""

from __future__ import annotations

from typing import Any

from repro.backend.base import Backend, Session, register_backend
from repro.core.adaptive import AdaptivePipeline
from repro.core.events import RunResult
from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig
from repro.gridsim.grid import GridSystem
from repro.gridsim.spec import uniform_grid
from repro.model.mapping import Mapping

__all__ = ["SimBackend"]


class _SimSession(Session):
    """Batch-emulation shim: buffer submits, simulate the stream at drain.

    The discrete-event engine has no wall-clock midpoint to stream results
    at, so the session buffers the whole stream and runs one simulation
    when the stream ends — the inverse of the real executors, where the
    batch path wraps the streaming one.  Several sequential streams on one
    session emulate back-to-back bounded streams (each is its own sim run).
    """

    def __init__(
        self,
        backend: "SimBackend",
        *,
        max_inflight: int | None = None,
        telemetry=None,
    ) -> None:
        super().__init__(backend, max_inflight=max_inflight, telemetry=telemetry)
        self._items: list[Any] = []
        self._sim_elapsed = 0.0

    def _begin_stream(self, stream: int) -> None:
        self._items = []

    def _submit_one(self, stream: int, seq: int, gseq: int, item: Any) -> None:
        self._items.append(item)

    def _end_stream(self, stream: int, n_items: int) -> None:
        backend: SimBackend = self.backend  # type: ignore[assignment]
        outputs = backend._simulate(self._items)
        self.produces_outputs = outputs is not None
        self._sim_elapsed = (
            backend.last_run.end_time if backend.last_run is not None else 0.0
        )
        for i in range(n_items):
            self._deliver(outputs[i] if outputs is not None else None)

    def _finalize_stream(self, wall_elapsed: float) -> float:
        return self._sim_elapsed  # the simulator's clock, not the wall's

    def service_means(self) -> list[float]:
        backend: SimBackend = self.backend  # type: ignore[assignment]
        return backend.service_means_from_spec()


class SimBackend(Backend):
    """Runs pipelines on the simulated grid (timing model, not wall clock).

    Parameters
    ----------
    pipeline:
        Stage specs; ``fn`` optional (needed only for real ``outputs``).
    grid:
        Target :class:`GridSystem`; default one uniform processor per stage.
    adaptive:
        ``False`` (static), ``True`` (default :class:`AdaptationConfig`) or
        a config instance — forwarded to the in-sim controller.
    mapping:
        Initial stage→processor mapping (default: model's greedy choice).
    replicas, capacity:
        API-uniformity parameters shared with the real backends.
        ``capacity`` maps onto the simulated inter-stage buffer capacity;
        ``replicas`` has no direct simulated analogue (replication lives in
        the ``mapping``), so requesting ``replicas[i] > 1`` raises — use
        ``mapping=`` or :func:`repro.skel.api.simulate_farm` instead.
    """

    name = "sim"
    supports_live_reconfigure = False

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        grid: GridSystem | None = None,
        adaptive: bool | AdaptationConfig = False,
        mapping: Mapping | None = None,
        seed: int = 0,
        replicas: list[int] | None = None,
        capacity: int | None = None,
    ) -> None:
        super().__init__(pipeline)
        if replicas is not None and any(r > 1 for r in replicas):
            raise ValueError(
                "the sim backend expresses replication through mapping=, "
                "not replicas; use mapping= or skel.api.simulate_farm"
            )
        self.buffer_capacity = capacity if capacity is not None else 4
        self.grid = grid if grid is not None else uniform_grid(pipeline.n_stages)
        if adaptive is True:
            self.config: AdaptationConfig | None = AdaptationConfig()
        elif adaptive is False:
            self.config = None
        else:
            self.config = adaptive
        self.mapping = mapping
        self.seed = seed
        self.last_run: RunResult | None = None

    def _open_session(
        self,
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> Session:
        # ``batching`` is accepted for signature parity but ignored: the
        # simulator models per-item service, and _SimSession leaves
        # ``supports_batching`` False so the base session never coalesces.
        return _SimSession(self, max_inflight=max_inflight, telemetry=telemetry)

    def _simulate(self, items: list[Any]) -> list[Any] | None:
        """One simulated stream; returns computed outputs when fns exist."""
        if all(s.fn is not None for s in self.pipeline.stages):
            outputs = []
            for item in items:
                for spec in self.pipeline.stages:
                    assert spec.fn is not None
                    item = spec.fn(item)
                outputs.append(item)
        else:
            outputs = None
        bus = self.events
        runner = AdaptivePipeline(
            self.pipeline,
            self.grid,
            config=self.config,
            initial_mapping=self.mapping,
            buffer_capacity=self.buffer_capacity,
            seed=self.seed,
            trace=bus.active,
        )
        self.last_run = runner.run(len(items))
        if bus.active:
            # Bridge the simulator's trace onto the session bus with the
            # events' *simulated* timestamps preserved.
            for ev in runner.tracer:
                bus.emit(ev.kind, ev.message, at=ev.time, **ev.fields)
        return outputs

    def service_means_from_spec(self) -> list[float]:
        return [c.work for c in self.pipeline.stage_costs()]

    def items_completed(self) -> int:
        return self.last_run.items_completed if self.last_run else 0

    def replica_counts(self) -> list[int]:
        if self.last_run is None:
            return [1] * self.pipeline.n_stages
        return [
            len(self.last_run.final_mapping.replicas(i))
            for i in range(self.pipeline.n_stages)
        ]


register_backend("sim", SimBackend)
