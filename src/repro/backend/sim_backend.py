"""Simulator adapter: the discrete-event grid engine behind the port.

The simulator *measures* (simulated seconds, adaptation events on a
modelled grid) rather than computing; when every stage carries a real
callable the adapter additionally applies the stages sequentially so
``outputs`` obeys the same ``Pipeline1for1`` contract as the real
backends — handy for apples-to-apples benchmark tables.

Live ``reconfigure`` is deliberately unsupported: inside the simulation the
observe→decide→act loop is owned by
:class:`~repro.core.adaptive.AdaptivePipeline`'s controller process (enable
it with ``adaptive=``); wall-clock controllers like
:class:`~repro.backend.runner.RuntimeAdaptiveRunner` have no purchase on
simulated time.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.backend.base import Backend, BackendResult, register_backend
from repro.core.adaptive import AdaptivePipeline
from repro.core.events import RunResult
from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig
from repro.gridsim.grid import GridSystem
from repro.gridsim.spec import uniform_grid
from repro.model.mapping import Mapping

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """Runs pipelines on the simulated grid (timing model, not wall clock).

    Parameters
    ----------
    pipeline:
        Stage specs; ``fn`` optional (needed only for real ``outputs``).
    grid:
        Target :class:`GridSystem`; default one uniform processor per stage.
    adaptive:
        ``False`` (static), ``True`` (default :class:`AdaptationConfig`) or
        a config instance — forwarded to the in-sim controller.
    mapping:
        Initial stage→processor mapping (default: model's greedy choice).
    replicas, capacity:
        API-uniformity parameters shared with the real backends.
        ``capacity`` maps onto the simulated inter-stage buffer capacity;
        ``replicas`` has no direct simulated analogue (replication lives in
        the ``mapping``), so requesting ``replicas[i] > 1`` raises — use
        ``mapping=`` or :func:`repro.skel.api.simulate_farm` instead.
    """

    name = "sim"
    supports_live_reconfigure = False

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        grid: GridSystem | None = None,
        adaptive: bool | AdaptationConfig = False,
        mapping: Mapping | None = None,
        seed: int = 0,
        replicas: list[int] | None = None,
        capacity: int | None = None,
    ) -> None:
        super().__init__(pipeline)
        if replicas is not None and any(r > 1 for r in replicas):
            raise ValueError(
                "the sim backend expresses replication through mapping=, "
                "not replicas; use mapping= or skel.api.simulate_farm"
            )
        self.buffer_capacity = capacity if capacity is not None else 4
        self.grid = grid if grid is not None else uniform_grid(pipeline.n_stages)
        if adaptive is True:
            self.config: AdaptationConfig | None = AdaptationConfig()
        elif adaptive is False:
            self.config = None
        else:
            self.config = adaptive
        self.mapping = mapping
        self.seed = seed
        self.last_run: RunResult | None = None
        self._outputs: list[Any] | None = None
        self._n_items = 0

    def start(self, inputs: Iterable[Any]) -> int:
        items = list(inputs)
        self._n_items = len(items)
        if all(s.fn is not None for s in self.pipeline.stages):
            outputs = []
            for item in items:
                for spec in self.pipeline.stages:
                    assert spec.fn is not None
                    item = spec.fn(item)
                outputs.append(item)
            self._outputs = outputs
        else:
            self._outputs = None
        runner = AdaptivePipeline(
            self.pipeline,
            self.grid,
            config=self.config,
            initial_mapping=self.mapping,
            buffer_capacity=self.buffer_capacity,
            seed=self.seed,
        )
        self.last_run = runner.run(self._n_items)
        return self._n_items

    def join(self) -> BackendResult:
        if self.last_run is None:
            raise RuntimeError("backend not started")
        run = self.last_run
        return BackendResult(
            backend=self.name,
            outputs=self._outputs,
            items=run.items_completed,
            elapsed=run.end_time,
            service_means=[c.work for c in self.pipeline.stage_costs()],
            replica_counts=[
                len(run.final_mapping.replicas(i))
                for i in range(self.pipeline.n_stages)
            ],
        )

    def items_completed(self) -> int:
        return self.last_run.items_completed if self.last_run else 0

    def replica_counts(self) -> list[int]:
        if self.last_run is None:
            return [1] * self.pipeline.n_stages
        return [
            len(self.last_run.final_mapping.replicas(i))
            for i in range(self.pipeline.n_stages)
        ]


register_backend("sim", SimBackend)
