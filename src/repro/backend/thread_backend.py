"""Thread adapter: a native streaming session on the thread runtime.

Threads share the interpreter, so this backend suits I/O-bound stages and
GIL-releasing (numpy) kernels; pure-Python CPU-bound stages should use the
process backend instead.

The session owns the whole thread fabric for its lifetime — per-stage
dispatchers, worker pools, the output collector — wired exactly like
:class:`~repro.runtime.threads.ThreadPipeline` (whose queue/dispatcher/
worker building blocks it reuses) but **open-ended**: the submit side is
the first queue's only producer and finishes only at ``close()``, so the
sentinel shutdown cascade never fires between streams and back-to-back
streams reuse the same warm worker threads.  Sequence numbers are
session-global (``gseq``), which lets the per-stage
:class:`~repro.util.ordering.SequenceReorderer` instances keep one ordering
space across stream boundaries.

Live reconfiguration maps onto the same wiring as the pipeline runtime's
``add_replica``/``remove_replica``: growth spawns a worker into the running
stage (always possible — a session's stage never drains before close),
shrink retires one lazily via the ``_RETIRE`` pill.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.backend.base import (
    Backend,
    Session,
    register_backend,
    validate_pipeline_shape,
)
from repro.core.pipeline import PipelineSpec
from repro.model.throughput import ResourceView, fn_view
from repro.monitor.instrument import PipelineInstrumentation
from repro.monitor.resource_monitor import HostLoadSampler
from repro.runtime.threads import (
    _RETIRE,
    _SENTINEL,
    _CountedQueue,
    _Dispatcher,
    _Worker,
)
from repro.util.batching import Batch
from repro.util.validation import check_positive

__all__ = ["ThreadBackend"]


class _ThreadSession(Session):
    """Session-owned thread fabric (see module docstring)."""

    supports_batching = True

    def __init__(
        self,
        backend: "ThreadBackend",
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> None:
        super().__init__(
            backend,
            max_inflight=max_inflight,
            telemetry=telemetry,
            batching=batching,
        )
        pipeline = backend.pipeline
        n = pipeline.n_stages
        self.replicas = list(backend._target)
        self.capacity = backend.capacity
        self.instrumentation = PipelineInstrumentation(n, events=self.events)
        self._locks = [threading.Lock() for _ in range(n)]
        self._snapshot_locks = self._locks
        self._abort = threading.Event()
        self._errors: list[BaseException] = []
        self._mutate_lock = threading.Lock()
        self._threads: list[threading.Thread] = []

        # Wiring: in_q[i] -> dispatcher -> work_q[i] -> workers -> in_q[i+1];
        # the session's submit side is in_q[0]'s single producer, finishing
        # only at close — the cascade stays armed across streams.
        self._in_q: list[_CountedQueue] = []
        self._work_q: list[_CountedQueue] = []
        producers_of_next = 1
        for i in range(n):
            self._in_q.append(
                _CountedQueue(self.capacity, producers=producers_of_next, consumers=1)
            )
            self._work_q.append(
                _CountedQueue(self.capacity, producers=1, consumers=self.replicas[i])
            )
            producers_of_next = self.replicas[i]
        self._collect_q = _CountedQueue(
            self.capacity, producers=producers_of_next, consumers=1
        )
        self._final_q = _CountedQueue(self.capacity, producers=1, consumers=1)

        for i in range(n):
            self._threads.append(
                _Dispatcher(
                    self._in_q[i],
                    self._work_q[i],
                    name=f"session-dispatch[{i}]",
                    abort=self._abort,
                    metrics=self.instrumentation.stages[i],
                    metrics_lock=self._locks[i],
                )
            )
            for r in range(self.replicas[i]):
                self._threads.append(self._make_worker(i, r))
        self._threads.append(
            _Dispatcher(
                self._collect_q, self._final_q, name="session-dispatch[out]",
                abort=self._abort,
            )
        )
        self._collector = threading.Thread(
            target=self._collect, name="session-collector", daemon=True
        )
        self._watcher = threading.Thread(
            target=self._watch_abort, name="session-abort-watch", daemon=True
        )
        for t in self._threads:
            t.start()
        self._collector.start()
        self._watcher.start()

    # ---------------------------------------------------------------- fabric
    def _worker_out_queue(self, stage: int) -> _CountedQueue:
        n = self.backend.pipeline.n_stages
        return self._in_q[stage + 1] if stage + 1 < n else self._collect_q

    def _make_worker(self, stage: int, replica_idx: int) -> _Worker:
        spec = self.backend.pipeline.stage(stage)
        return _Worker(
            stage,
            spec.name,
            spec.fn,
            self._work_q[stage],
            self._worker_out_queue(stage),
            self.instrumentation.stages[stage],
            self._locks[stage],
            self._errors,
            self._abort,
            name=f"session-stage[{stage}].{replica_idx}",
            speed_fn=self.backend._load.effective_speed,
        )

    def _collect(self) -> None:
        while True:
            got = self._final_q.get()
            if got is _SENTINEL:
                break
            _seq, value = got
            self.instrumentation.record_completion(
                self.now(), items=len(value) if isinstance(value, Batch) else 1
            )
            self._deliver(value)

    def _watch_abort(self) -> None:
        # Workers record a StageError and set the abort flag; the session
        # must learn of it so submit/results/drain raise instead of hanging
        # on items the draining threads dropped.
        self._abort.wait()
        if self._errors:
            self._deliver_error(self._errors[0])

    # ----------------------------------------------------------- port hooks
    def _submit_one(self, stream: int, seq: int, gseq: int, item: Any) -> None:
        if not self._in_q[0].put((gseq, item), abort=self._abort):
            raise (
                self._errors[0]
                if self._errors
                else RuntimeError("session aborted while submitting")
            )

    def _shutdown(self) -> None:
        if self.broken or self._submitted > self._delivered:
            self._abort.set()  # drop in-flight items instead of finishing them
        self._in_q[0].producer_done()
        while True:
            with self._mutate_lock:
                alive = [t for t in self._threads if t.is_alive()]
            if not alive:
                break
            for t in alive:
                t.join(timeout=0.5)
        self._collector.join(timeout=5.0)
        self._abort.set()  # release the watcher on a clean close
        self._watcher.join(timeout=1.0)

    # -------------------------------------------------------------- reshaping
    def reconfigure(self, stage: int, n_replicas: int) -> None:
        """Grow or shrink ``stage``'s warm worker pool, live."""
        with self._mutate_lock:
            if self.closed:
                return
            while self.replicas[stage] < n_replicas:
                out_q = self._worker_out_queue(stage)
                out_q.add_producer()  # never drained before close: always legal
                self._work_q[stage].add_consumer()
                worker = self._make_worker(stage, self.replicas[stage])
                self.replicas[stage] += 1
                self._threads.append(worker)
                worker.start()
                self.events.emit("replica.add", stage=stage, n=self.replicas[stage])
            while self.replicas[stage] > max(n_replicas, 1):
                self.replicas[stage] -= 1
                self._work_q[stage].put(_RETIRE, abort=self._abort)
                self.events.emit(
                    "replica.remove", stage=stage, n=self.replicas[stage]
                )


class ThreadBackend(Backend):
    """Runs pipelines on a session-owned thread fabric.

    One instance is reusable: a session's warm worker threads serve
    back-to-back runs, and replica counts adapted during one stream carry
    over to the next (and to the next session, via the backend's target
    shape).
    """

    name = "threads"
    supports_live_reconfigure = True

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        replicas: list[int] | None = None,
        capacity: int | None = None,
        max_replicas: int = 8,
    ) -> None:
        super().__init__(pipeline)
        check_positive(max_replicas, "max_replicas")
        self._target = validate_pipeline_shape(pipeline, replicas, "thread runtime")
        self.capacity = 8 if capacity is None else capacity
        check_positive(self.capacity, "capacity")
        # Workers record service at the sampled effective speed, so
        # work_estimate stays load-normalised — consistent with the
        # load-degraded speeds resource_view reports to the planner.
        self._load = HostLoadSampler()
        self.max_replicas = max(max_replicas, *self._target)

    # ------------------------------------------------------------- sessions
    def _open_session(
        self,
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> Session:
        return _ThreadSession(
            self,
            max_inflight=max_inflight,
            telemetry=telemetry,
            batching=batching,
        )

    # ----------------------------------------------------------- observation
    def resource_view(self, n_procs: int) -> ResourceView:
        """Availability-aware local view: every slot shares this host.

        The host's load average degrades every virtual processor's
        effective speed alike, so the planner sees contended cores rather
        than assuming a dedicated machine; links are in-process queues
        (effectively free).
        """
        speed = self._load.effective_speed()
        return fn_view(
            eff=lambda pid: speed,
            link=lambda a, b: (1e-7, 1e9),
            pids=list(range(n_procs)),
        )

    # ----------------------------------------------------------------- shape
    def replica_counts(self) -> list[int]:
        session = self._session
        if isinstance(session, _ThreadSession) and not session.closed:
            return list(session.replicas)
        return list(self._target)

    def replica_limit(self, stage: int) -> int:
        return self.max_replicas if self.pipeline.stage(stage).replicable else 1

    def reconfigure(self, stage: int, n_replicas: int) -> None:
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        n_replicas = min(n_replicas, self.replica_limit(stage))
        self._target[stage] = n_replicas
        session = self._session
        if isinstance(session, _ThreadSession) and not session.closed:
            session.reconfigure(stage, n_replicas)


register_backend("threads", ThreadBackend)
