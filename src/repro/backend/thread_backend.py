"""Thread adapter: the existing :class:`ThreadPipeline` behind the port.

Threads share the interpreter, so this backend suits I/O-bound stages and
GIL-releasing (numpy) kernels; pure-Python CPU-bound stages should use the
process backend instead.  Live reconfiguration maps directly onto the
thread pipeline's ``add_replica``/``remove_replica`` — growth spawns a
worker into the running stage, shrink retires one lazily.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.backend.base import Backend, BackendResult, register_backend
from repro.core.pipeline import PipelineSpec
from repro.model.throughput import ResourceView, fn_view
from repro.monitor.instrument import StageSnapshot
from repro.monitor.resource_monitor import HostLoadSampler
from repro.runtime.threads import ThreadPipeline
from repro.util.validation import check_positive

__all__ = ["ThreadBackend"]


class ThreadBackend(Backend):
    """Runs pipelines on :class:`~repro.runtime.threads.ThreadPipeline`.

    One instance is reusable: replica counts adapted during a run carry
    over to the next (warm in shape, if not in threads — workers are cheap
    to start, so pools are rebuilt per run).
    """

    name = "threads"
    supports_live_reconfigure = True

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        replicas: list[int] | None = None,
        capacity: int | None = None,
        max_replicas: int = 8,
    ) -> None:
        super().__init__(pipeline)
        check_positive(max_replicas, "max_replicas")
        self._load = HostLoadSampler()
        # Workers record service at the sampled effective speed, so
        # work_estimate stays load-normalised — consistent with the
        # load-degraded speeds resource_view reports to the planner.
        self._tp = ThreadPipeline(
            pipeline,
            replicas=replicas,
            capacity=8 if capacity is None else capacity,
            speed_fn=self._load.effective_speed,
        )
        self.max_replicas = max(max_replicas, *self._tp.replicas)

    # ------------------------------------------------------------- lifecycle
    def start(self, inputs: Iterable[Any]) -> int:
        return self._tp.start(inputs)

    def join(self) -> BackendResult:
        outputs = self._tp.join()
        stats = self._tp.last_stats
        assert stats is not None
        return BackendResult(
            backend=self.name,
            outputs=outputs,
            items=stats.items,
            elapsed=stats.elapsed,
            # NaN for unsampled stages, matching the process adapter.
            service_means=[
                s.mean if s.n else math.nan for s in stats.stage_service
            ],
            replica_counts=list(self._tp.replicas),
        )

    def running(self) -> bool:
        return self._tp.running

    def close(self) -> None:
        """Abort and reap any in-flight run (workers are per-run otherwise)."""
        if self._tp.running:
            self._tp.abort()
            try:
                self._tp.join()
            except BaseException:  # noqa: BLE001 - closing, not reporting
                pass

    # ----------------------------------------------------------- observation
    def snapshots(self) -> list[StageSnapshot]:
        return self._tp.snapshots()

    def items_completed(self) -> int:
        return self._tp.items_completed()

    def recent_throughput(self, horizon: float) -> float:
        instr = self._tp.instrumentation
        if instr is None:
            return math.nan
        return instr.recent_throughput(self._tp.now(), horizon)

    def resource_view(self, n_procs: int) -> ResourceView:
        """Availability-aware local view: every slot shares this host.

        The host's load average degrades every virtual processor's
        effective speed alike, so the planner sees contended cores rather
        than assuming a dedicated machine; links are in-process queues
        (effectively free).
        """
        speed = self._load.effective_speed()
        return fn_view(
            eff=lambda pid: speed,
            link=lambda a, b: (1e-7, 1e9),
            pids=list(range(n_procs)),
        )

    # ----------------------------------------------------------------- shape
    def replica_counts(self) -> list[int]:
        return list(self._tp.replicas)

    def replica_limit(self, stage: int) -> int:
        return self.max_replicas if self.pipeline.stage(stage).replicable else 1

    def reconfigure(self, stage: int, n_replicas: int) -> None:
        self._tp.reconfigure(stage, min(n_replicas, self.replica_limit(stage)))


register_backend("threads", ThreadBackend)
