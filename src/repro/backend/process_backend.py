"""Warm process-pool backend: true multi-core execution of pipelines.

Each stage owns a pool of **pre-forked worker processes** (the ModelOps
warm-pool idea: pay process start-up once, before the first item, and keep
workers resident between runs).  Only ``replicas[i]`` of a stage's pool are
*active*; ``reconfigure(stage, n)`` activates or deactivates warm workers
instantly — no fork on the adaptation path.

Topology (per stage ``i``)::

                      taskq (per worker, bounded)
    router[i-1] ──┬──> worker i.0 ──┐
       (parent)   ├──> worker i.1 ──┼──> resq[i] ──> router[i] ──> ...
                  └──> worker i.R ──┘   (shared)      (parent)

* Workers are OS processes running :func:`_worker_main`; items and results
  cross process boundaries as :class:`~repro.transport.Frame` objects
  produced by the backend's **transport codec** (``transport=``): inline
  pickle streams by default, shared-memory descriptors for large payloads
  under ``"auto"``/``"shm"``, so multi-megabyte numpy items never funnel
  through the task/result pipes.  Payloads are pre-encoded in the worker
  so an unpicklable result surfaces as a :class:`StageError` instead of a
  silent hang in ``multiprocessing``'s feeder thread.
* **Routers** are parent-side threads, one per stage: they collect that
  stage's results, record service-time/queue-depth samples, restore
  sequence order, and dispatch in order to the *least-loaded active* worker
  of the next stage.  Because every stage starts items in input order and
  the final router emits in order, the ``Pipeline1for1`` contract holds
  across processes exactly as it does in the thread runtime.
* Bounded per-worker task queues and a bounded result queue give end-to-end
  back-pressure.

The default start method is ``fork`` where available (warm semantics, and
closures/lambdas need no pickling); pass ``start_method="spawn"`` with
importable module-level stage functions on platforms without fork.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import pickle
import queue as thread_queue
import threading
import time
from typing import Any, Iterable

from repro import transport as _transport
from repro.backend.base import Backend, BackendResult, register_backend
from repro.core.pipeline import PipelineSpec
from repro.monitor.instrument import PipelineInstrumentation, StageSnapshot
from repro.runtime.threads import StageError
from repro.transport import Codec, Frame
from repro.util.ordering import SequenceReorderer
from repro.util.validation import check_positive

__all__ = ["ProcessPoolBackend"]

_STOP = None  # poison pill: worker exits (sent only by close())


def _worker_main(stage_index: int, worker_id: int, fn, taskq, resq, codec_spec) -> None:
    """Worker process body: apply ``fn`` to (seq, frame) tasks forever."""
    codec = _transport.from_spec(codec_spec)
    while True:
        msg = taskq.get()
        if msg is _STOP:
            break
        seq, frame = msg
        try:
            value = codec.decode(frame)
        except Exception as err:
            codec.release(frame)  # the parent aborts; nothing retries this frame
            resq.put(("err", seq, worker_id, None, f"undecodable item: {err!r}"))
            continue
        # This worker is the frame's sole consumer and the process backend
        # never re-dispatches (a worker death aborts the run), so the task
        # frame's segments are released as soon as the value is copied out.
        codec.release(frame)
        t0 = time.perf_counter()
        try:
            result = fn(value)
        except BaseException as err:  # noqa: BLE001 - shipped to the parent
            try:
                err_payload = pickle.dumps(err)
            except Exception:
                err_payload = None
            resq.put(("err", seq, worker_id, err_payload, repr(err)))
            continue  # stay warm; the parent aborts the run
        dt = time.perf_counter() - t0
        try:
            out_frame = codec.encode(result)
        except Exception as err:
            resq.put(("err", seq, worker_id, None, f"unencodable result: {err!r}"))
            continue
        resq.put(("ok", seq, worker_id, out_frame, dt))


class _WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, proc, taskq, active: bool) -> None:
        self.proc = proc
        self.taskq = taskq
        self.active = active
        self.inflight = 0  # dispatched, result not yet seen


class _StagePool:
    """One stage's warm worker pool plus its shared result queue."""

    def __init__(self, resq, lock: threading.Lock) -> None:
        self.resq = resq
        self.lock = lock
        self.workers: list[_WorkerHandle] = []

    def active_count(self) -> int:
        with self.lock:
            return sum(1 for w in self.workers if w.active)

    def queued(self) -> int:
        with self.lock:
            return sum(w.inflight for w in self.workers)

    def pick(self) -> _WorkerHandle:
        """Least-loaded active worker (claims one in-flight slot)."""
        with self.lock:
            active = [w for w in self.workers if w.active]
            best = min(active, key=lambda w: w.inflight)
            best.inflight += 1
            return best

    def note_done(self, worker_id: int) -> None:
        with self.lock:
            self.workers[worker_id].inflight -= 1

    def dead_workers(self) -> list[tuple[int, int | None]]:
        """(worker_id, exitcode) of workers that died (none should, mid-run)."""
        with self.lock:
            return [
                (wid, w.proc.exitcode)
                for wid, w in enumerate(self.workers)
                if not w.proc.is_alive()
            ]


class ProcessPoolBackend(Backend):
    """Executes pipelines on warm, pre-forked per-stage process pools.

    Parameters
    ----------
    pipeline:
        Stage specs; every stage must define ``fn``.
    replicas:
        Initially *active* workers per stage (default 1 each).
    max_replicas:
        Warm-pool size per replicable stage — the ceiling ``reconfigure``
        can activate without forking mid-run.
    capacity:
        Per-worker task-queue bound (back-pressure granularity).
    start_method:
        ``multiprocessing`` start method; default ``fork`` when available.
    transport:
        Payload codec moving items between processes: a registered name
        (``"auto"``/``"pickle"``/``"shm"``, see :mod:`repro.transport`) or
        a configured :class:`~repro.transport.Codec` instance.  The
        default ``"auto"`` keeps small items inline and routes large
        numpy/bytes payloads through shared-memory segments.
    """

    name = "processes"
    supports_live_reconfigure = True

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        replicas: list[int] | None = None,
        max_replicas: int = 4,
        capacity: int | None = None,
        start_method: str | None = None,
        transport: str | Codec = "auto",
    ) -> None:
        super().__init__(pipeline)
        capacity = 8 if capacity is None else capacity
        check_positive(capacity, "capacity")
        check_positive(max_replicas, "max_replicas")
        n = pipeline.n_stages
        if replicas is None:
            replicas = [1] * n
        if len(replicas) != n:
            raise ValueError(f"replicas must list {n} counts, got {len(replicas)}")
        for i, r in enumerate(replicas):
            if r < 1:
                raise ValueError(f"stage {i} replica count must be >= 1, got {r}")
            if r > 1 and not pipeline.stage(i).replicable:
                raise ValueError(
                    f"stage {i} ({pipeline.stage(i).name!r}) is stateful and "
                    "cannot be replicated"
                )
            if pipeline.stage(i).fn is None:
                raise ValueError(
                    f"stage {i} ({pipeline.stage(i).name!r}) has no fn; the "
                    "process runtime executes real callables"
                )
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self._codec = _transport.get(transport)
        self.capacity = capacity
        # A warm pool must at least cover the requested starting shape.
        self.max_replicas = max(max_replicas, *replicas)
        self._target = [min(r, self.replica_limit(i)) for i, r in enumerate(replicas)]
        self._pools: list[_StagePool] | None = None
        self._warm = False
        self._closed = False
        # Per-run state
        self._running = False
        self._threads: list[threading.Thread] = []
        self._outputs: list[Any] = []
        self._errors: list[BaseException] = []
        self._abort = threading.Event()
        self._t0 = 0.0
        self._elapsed = 0.0
        self._n_items = 0
        self.instrumentation: PipelineInstrumentation | None = None
        self._stage_locks = [threading.Lock() for _ in range(n)]

    # --------------------------------------------------------------- warm-up
    def replica_limit(self, stage: int) -> int:
        return self.max_replicas if self.pipeline.stage(stage).replicable else 1

    def warm(self) -> None:
        """Pre-fork every stage's worker pool (idempotent)."""
        if self._closed:
            raise RuntimeError("backend is closed")
        if self._warm:
            return
        pools = []
        for i in range(self.pipeline.n_stages):
            pool_size = self.replica_limit(i)
            resq = self._ctx.Queue(maxsize=self.capacity * pool_size)
            pool = _StagePool(resq, threading.Lock())
            fn = self.pipeline.stage(i).fn
            codec_spec = _transport.spec_of(self._codec)
            for wid in range(pool_size):
                taskq = self._ctx.Queue(maxsize=self.capacity)
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(i, wid, fn, taskq, resq, codec_spec),
                    name=f"{self.pipeline.stage(i).name}.{wid}",
                    daemon=True,
                )
                proc.start()
                pool.workers.append(_WorkerHandle(proc, taskq, active=wid < self._target[i]))
            pools.append(pool)
        self._pools = pools
        self._warm = True

    # ------------------------------------------------------------- lifecycle
    def start(self, inputs: Iterable[Any]) -> int:
        if self._closed:
            raise RuntimeError("backend is closed")
        if self._running:
            raise RuntimeError("backend already running; join() it first")
        self.warm()
        assert self._pools is not None
        items = list(inputs)
        self._n_items = len(items)
        self._outputs = []
        self._errors = []
        self._abort = threading.Event()
        self.instrumentation = PipelineInstrumentation(self.pipeline.n_stages)
        self._threads = []
        self._t0 = time.perf_counter()
        self._running = True

        feeder = threading.Thread(
            target=self._feed, args=(items,), name="pp-feeder", daemon=True
        )
        self._threads.append(feeder)
        for i in range(self.pipeline.n_stages):
            self._threads.append(
                threading.Thread(
                    target=self._route, args=(i,), name=f"pp-router[{i}]", daemon=True
                )
            )
        for t in self._threads:
            t.start()
        return self._n_items

    def _dispatch(self, stage: int, seq: int, frame: Frame) -> bool:
        """Send one encoded item to the least-loaded active worker of ``stage``."""
        assert self._pools is not None
        handle = self._pools[stage].pick()
        while True:
            try:
                handle.taskq.put((seq, frame), timeout=0.05)
                return True
            except thread_queue.Full:
                if self._abort.is_set():
                    with self._pools[stage].lock:
                        handle.inflight -= 1
                    return False

    def _record_bytes_in(self, stage: int, nbytes: int) -> None:
        assert self.instrumentation is not None
        with self._stage_locks[stage]:
            self.instrumentation.stages[stage].record_bytes_in(nbytes)

    def _feed(self, items: list[Any]) -> None:
        try:
            for seq, value in enumerate(items):
                if self._abort.is_set():
                    return
                frame = self._codec.encode(value)
                self._record_bytes_in(0, frame.nbytes)
                if not self._dispatch(0, seq, frame):
                    return
        except BaseException as err:  # noqa: BLE001 - e.g. unpicklable input
            self._errors.append(StageError(self.pipeline.stage(0).name, err))
            self._abort.set()

    def _route(self, stage: int) -> None:
        """Collect stage results, restore order, dispatch to the next stage.

        Any unexpected failure here (unpicklable payloads, a result whose
        class explodes on unpickle) must abort the run rather than leave
        ``join()`` waiting forever for items that will never arrive.
        """
        try:
            self._route_inner(stage)
        except BaseException as err:  # noqa: BLE001 - reported via join()
            self._errors.append(StageError(self.pipeline.stage(stage).name, err))
            self._abort.set()

    def _route_inner(self, stage: int) -> None:
        assert self._pools is not None and self.instrumentation is not None
        pool = self._pools[stage]
        metrics = self.instrumentation.stages[stage]
        last = stage + 1 >= self.pipeline.n_stages
        reorder = SequenceReorderer()
        received = 0
        while received < self._n_items:
            if self._abort.is_set():
                return
            try:
                msg = pool.resq.get(timeout=0.1)
            except thread_queue.Empty:
                # No worker should die mid-run (close() is the only sender of
                # stop pills); a dead one means its queued items are lost and
                # `received` would never reach n_items — fail, don't hang.
                dead = pool.dead_workers()
                if dead:
                    wid, code = dead[0]
                    self._errors.append(
                        StageError(
                            self.pipeline.stage(stage).name,
                            RuntimeError(
                                f"worker {wid} died mid-run (exitcode {code}); "
                                "its in-flight items are lost"
                            ),
                        )
                    )
                    self._abort.set()
                    return
                continue
            kind, seq, worker_id, payload, extra = msg
            pool.note_done(worker_id)
            if kind == "err":
                original: BaseException
                if payload is not None:
                    try:
                        original = pickle.loads(payload)
                    except Exception:
                        original = RuntimeError(extra)
                else:
                    original = RuntimeError(extra)
                self._errors.append(
                    StageError(self.pipeline.stage(stage).name, original)
                )
                self._abort.set()
                return
            received += 1
            with self._stage_locks[stage]:
                metrics.record_service(extra, 1.0)
                metrics.record_queue_length(pool.queued())
                metrics.record_bytes_out(payload.nbytes)
            # Workers already produced encoded frames and the next stage's
            # workers expect exactly that format — forward each frame
            # untouched and decode only for final outputs.
            for ready_seq, ready_frame in reorder.push(seq, payload):
                if last:
                    self._outputs.append(self._codec.decode(ready_frame))
                    self._codec.release(ready_frame)
                    with self._stage_locks[stage]:
                        self.instrumentation.record_completion(self.now())
                else:
                    self._record_bytes_in(stage + 1, ready_frame.nbytes)
                    if not self._dispatch(stage + 1, ready_seq, ready_frame):
                        return

    def join(self) -> BackendResult:
        if not self._threads:
            raise RuntimeError("backend not started")
        for t in self._threads:
            t.join()
        self._elapsed = time.perf_counter() - self._t0
        self._running = False
        self._threads = []
        if self._errors:
            # A failed run leaves queues in an unknown state: go cold so the
            # next start() re-forks clean pools.
            self._shutdown_pools(graceful=False)
            raise self._errors[0]
        assert self.instrumentation is not None
        return BackendResult(
            backend=self.name,
            outputs=self._outputs,
            items=len(self._outputs),
            elapsed=self._elapsed,
            service_means=[
                s.total.mean if s.total.n else math.nan
                for s in self.instrumentation.stages
            ],
            replica_counts=self.replica_counts(),
        )

    def running(self) -> bool:
        return self._running and any(t.is_alive() for t in self._threads)

    def _shutdown_pools(self, *, graceful: bool) -> None:
        if self._pools is None:
            return
        for pool in self._pools:
            for w in pool.workers:
                if graceful:
                    try:
                        w.taskq.put(_STOP, timeout=0.5)
                    except thread_queue.Full:
                        pass
                w.taskq.close()
        for pool in self._pools:
            for w in pool.workers:
                w.proc.join(timeout=1.0 if graceful else 0.1)
                if w.proc.is_alive():
                    w.proc.terminate()
                    w.proc.join(timeout=1.0)
            pool.resq.close()
        self._pools = None
        self._warm = False
        # Every producer and consumer of this session's segments is now
        # stopped: reclaim whatever frames were stranded in queues by an
        # abort (a clean run leaves nothing — consumers release as they go).
        self._codec.sweep()

    def close(self) -> None:
        """Stop every warm worker and release the pools (idempotent)."""
        if self._closed:
            return
        self._abort.set()
        for t in self._threads:
            t.join(timeout=1.0)
        self._threads = []
        self._running = False
        self._shutdown_pools(graceful=not self._errors)
        self._closed = True

    # ----------------------------------------------------------- observation
    def now(self) -> float:
        return time.perf_counter() - self._t0

    def snapshots(self) -> list[StageSnapshot]:
        if self.instrumentation is None:
            return []
        return self.instrumentation.snapshots(self._stage_locks)

    def items_completed(self) -> int:
        return self.instrumentation.items_completed if self.instrumentation else 0

    def recent_throughput(self, horizon: float) -> float:
        if self.instrumentation is None:
            return math.nan
        return self.instrumentation.recent_throughput(self.now(), horizon)

    # ----------------------------------------------------------------- shape
    def replica_counts(self) -> list[int]:
        if self._pools is None:
            return list(self._target)
        return [p.active_count() for p in self._pools]

    def reconfigure(self, stage: int, n_replicas: int) -> None:
        """Activate/deactivate warm workers of ``stage`` to ``n_replicas``.

        Counts are clamped to ``[1, replica_limit(stage)]`` (so a stateful
        stage clamps to 1, matching the port contract and the thread
        adapter) — growth never forks mid-run; deactivated workers finish
        what they were dealt and then idle, warm, until reactivated or
        closed.
        """
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        n_replicas = min(n_replicas, self.replica_limit(stage))
        self._target[stage] = n_replicas
        if self._pools is None:
            return
        pool = self._pools[stage]
        with pool.lock:
            active = sum(1 for w in pool.workers if w.active)
            if active < n_replicas:
                for w in pool.workers:
                    if not w.active:
                        w.active = True
                        active += 1
                        if active == n_replicas:
                            break
            elif active > n_replicas:
                # Drop the least-loaded workers first; busy ones finish what
                # they were dealt either way.
                idle_first = sorted(
                    (w for w in pool.workers if w.active), key=lambda w: w.inflight
                )
                for w in idle_first:
                    if active == n_replicas:
                        break
                    w.active = False
                    active -= 1


register_backend("processes", ProcessPoolBackend)
