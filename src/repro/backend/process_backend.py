"""Warm process-pool backend: true multi-core execution of pipelines.

Each stage owns a pool of **pre-forked worker processes** (the ModelOps
warm-pool idea: pay process start-up once, before the first item, and keep
workers resident between streams).  Only ``replicas[i]`` of a stage's pool
are *active*; ``reconfigure(stage, n)`` activates or deactivates warm
workers instantly — no fork on the adaptation path.

Topology (per stage ``i``)::

                      taskq (per worker, bounded)
    feeder ───────┬──> worker i.0 ──┐
    (session)     ├──> worker i.1 ──┼──> resq[i] ──> router[i] ──> ...
                  └──> worker i.R ──┘   (shared)     (session)

* The **pools belong to the backend** and survive across sessions and
  streams; the **feeder and router threads belong to the session** and run
  for its whole lifetime, so back-to-back streams reuse the same resident
  worker processes with no teardown in between.  Sequence numbers are
  stream-scoped: each router's :class:`~repro.util.ordering.SequenceReorderer`
  rebases via ``begin_stream`` at every stream boundary (legal because
  ``drain()`` empties the pipeline before the next stream admits).
* Workers are OS processes running :func:`_worker_main`; items and results
  cross process boundaries as :class:`~repro.transport.Frame` objects
  produced by the backend's **transport codec** (``transport=``): inline
  pickle streams by default, shared-memory descriptors for large payloads
  under ``"auto"``/``"shm"``.  ``"auto"``'s placement threshold is
  **calibrated at warm-up** from a quick encode/decode probe
  (:func:`repro.transport.calibrated_auto_threshold`) instead of trusting
  the static default — E17 showed the crossover varies by host.  Frame
  segments are released per item as results retire (task frames in the
  worker that consumed them, result frames in the router), never held to a
  batch end.
* **Routers** collect a stage's results, record service-time/queue-depth/
  payload-size samples, restore sequence order, and dispatch in order to
  the *least-loaded active* worker of the next stage.  Because every stage
  starts items in input order and the final router delivers in order, the
  ``Pipeline1for1`` contract holds across processes exactly as it does in
  the thread runtime.
* Bounded per-worker task queues, a bounded result queue and the session's
  bounded admission window give end-to-end back-pressure.

The default start method is ``fork`` where available (warm semantics, and
closures/lambdas need no pickling); pass ``start_method="spawn"`` with
importable module-level stage functions on platforms without fork.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as thread_queue
import threading
import time
from typing import Any

from repro import transport as _transport
from repro.backend.base import (
    Backend,
    Session,
    register_backend,
    validate_pipeline_shape,
)
from repro.core.pipeline import PipelineSpec
from repro.monitor.instrument import PipelineInstrumentation
from repro.runtime.threads import StageError
from repro.transport import Codec, Frame
from repro.util.batching import Batch, map_batch
from repro.util.ordering import SequenceReorderer
from repro.util.validation import check_positive

__all__ = ["ProcessPoolBackend"]

_STOP = None  # poison pill: worker exits (sent only by close())
_CLOSE = object()  # session-side feeder shutdown marker


def _worker_main(stage_index: int, worker_id: int, fn, taskq, resq, codec_spec) -> None:
    """Worker process body: apply ``fn`` to (seq, frame) tasks forever."""
    codec = _transport.from_spec(codec_spec)
    while True:
        msg = taskq.get()
        if msg is _STOP:
            break
        seq, frame = msg
        try:
            value = codec.decode(frame)
        except Exception as err:
            codec.release(frame)  # the parent aborts; nothing retries this frame
            resq.put(("err", seq, worker_id, None, f"undecodable item: {err!r}"))
            continue
        # This worker is the frame's sole consumer and the process backend
        # never re-dispatches (a worker death aborts the stream), so the
        # task frame's segments are released as soon as the value is copied
        # out — per item, not at any batch boundary.
        codec.release(frame)
        t0 = time.perf_counter()
        try:
            # A micro-batch decoded from one frame maps element-wise here
            # and re-encodes as one frame: the whole run of items pays a
            # single queue round trip and a single pickle stream each way.
            result = map_batch(fn, value) if isinstance(value, Batch) else fn(value)
        except BaseException as err:  # noqa: BLE001 - shipped to the parent
            try:
                err_payload = pickle.dumps(err)
            except Exception:
                err_payload = None
            resq.put(("err", seq, worker_id, err_payload, repr(err)))
            continue  # stay warm; the parent aborts the stream
        dt = time.perf_counter() - t0
        try:
            out_frame = codec.encode(result)
        except Exception as err:
            resq.put(("err", seq, worker_id, None, f"unencodable result: {err!r}"))
            continue
        resq.put(("ok", seq, worker_id, out_frame, dt))


class _WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, proc, taskq, active: bool) -> None:
        self.proc = proc
        self.taskq = taskq
        self.active = active
        self.inflight = 0  # dispatched, result not yet seen


class _StagePool:
    """One stage's warm worker pool plus its shared result queue."""

    def __init__(self, resq, lock: threading.Lock) -> None:
        self.resq = resq
        self.lock = lock
        self.workers: list[_WorkerHandle] = []

    def active_count(self) -> int:
        with self.lock:
            return sum(1 for w in self.workers if w.active)

    def queued(self) -> int:
        with self.lock:
            return sum(w.inflight for w in self.workers)

    def pick(self) -> _WorkerHandle:
        """Least-loaded active worker (claims one in-flight slot)."""
        with self.lock:
            active = [w for w in self.workers if w.active]
            best = min(active, key=lambda w: w.inflight)
            best.inflight += 1
            return best

    def note_done(self, worker_id: int) -> None:
        with self.lock:
            self.workers[worker_id].inflight -= 1

    def dead_workers(self) -> list[tuple[int, int | None]]:
        """(worker_id, exitcode) of workers that died (none should, mid-run)."""
        with self.lock:
            return [
                (wid, w.proc.exitcode)
                for wid, w in enumerate(self.workers)
                if not w.proc.is_alive()
            ]


class _ProcessSession(Session):
    """Session-owned feeder/router threads over the backend's warm pools."""

    supports_batching = True

    def __init__(
        self,
        backend: "ProcessPoolBackend",
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> None:
        super().__init__(
            backend,
            max_inflight=max_inflight,
            telemetry=telemetry,
            batching=batching,
        )
        backend.warm()
        n = backend.pipeline.n_stages
        self.instrumentation = PipelineInstrumentation(n, events=self.events)
        self._stage_locks = [threading.Lock() for _ in range(n)]
        self._snapshot_locks = self._stage_locks
        self._errors: list[BaseException] = []
        self._abort = threading.Event()
        self._stopping = threading.Event()
        self._reorder = [SequenceReorderer() for _ in range(n)]
        self._feedq: thread_queue.Queue = thread_queue.Queue()
        self._threads = [
            threading.Thread(target=self._feed, name="pp-feeder", daemon=True)
        ]
        for i in range(n):
            self._threads.append(
                threading.Thread(
                    target=self._route, args=(i,), name=f"pp-router[{i}]", daemon=True
                )
            )
        for t in self._threads:
            t.start()

    # ----------------------------------------------------------- port hooks
    def _begin_stream(self, stream: int) -> None:
        # drain() emptied the pipeline, so every router reorderer is idle:
        # rebase them onto the new stream's sequence space.
        for reorder in self._reorder:
            reorder.begin_stream(0)

    def _submit_one(self, stream: int, seq: int, gseq: int, item: Any) -> None:
        self._feedq.put((seq, item))

    def _shutdown(self) -> None:
        backend: ProcessPoolBackend = self.backend  # type: ignore[assignment]
        broken = self.broken or self._submitted > self._delivered
        if broken:
            self._abort.set()
        self._stopping.set()
        self._feedq.put(_CLOSE)
        for t in self._threads:
            t.join(timeout=5.0)
        if broken:
            # An aborted stream leaves worker queues in an unknown state: go
            # cold so the next session re-forks clean pools.
            backend._shutdown_pools(graceful=False)

    # --------------------------------------------------------------- failure
    def _fail(self, stage: int, err: BaseException) -> None:
        backend: ProcessPoolBackend = self.backend  # type: ignore[assignment]
        failure = (
            err
            if isinstance(err, StageError)
            else StageError(backend.pipeline.stage(stage).name, err)
        )
        self._errors.append(failure)
        self._abort.set()
        self._deliver_error(failure)

    # --------------------------------------------------------------- plumbing
    def _record_bytes_in(self, stage: int, nbytes: int) -> None:
        with self._stage_locks[stage]:
            self.instrumentation.stages[stage].record_bytes_in(nbytes)

    def _dispatch(self, stage: int, seq: int, frame: Frame) -> bool:
        """Send one encoded item to the least-loaded active worker of ``stage``."""
        backend: ProcessPoolBackend = self.backend  # type: ignore[assignment]
        assert backend._pools is not None
        pool = backend._pools[stage]
        handle = pool.pick()
        while True:
            try:
                handle.taskq.put((seq, frame), timeout=0.05)
                return True
            except thread_queue.Full:
                if self._abort.is_set():
                    with pool.lock:
                        handle.inflight -= 1
                    return False

    def _feed(self) -> None:
        backend: ProcessPoolBackend = self.backend  # type: ignore[assignment]
        try:
            while True:
                msg = self._feedq.get()
                if msg is _CLOSE:
                    return
                if self._abort.is_set():
                    continue  # drain the feed queue without dispatching
                seq, value = msg
                t0 = time.perf_counter()
                frame = backend._codec.encode(value)
                self._record_bytes_in(0, frame.nbytes)
                if isinstance(value, Batch) and self.events.wants("batch.encode"):
                    self.events.emit(
                        "batch.encode",
                        stage=0,
                        seq=seq,
                        base=value.base_seq,
                        items=len(value),
                        nbytes=frame.nbytes,
                        seconds=time.perf_counter() - t0,
                    )
                if self.events.wants("frame.encode"):
                    ev_seq, ev_items = self._event_seq(seq)
                    enc = dict(stage=0, seq=ev_seq, nbytes=frame.nbytes)
                    if ev_items > 1:
                        enc["items"] = ev_items
                    self.events.emit("frame.encode", **enc)
                if not self._dispatch(0, seq, frame):
                    continue
        except BaseException as err:  # noqa: BLE001 - e.g. unpicklable input
            self._fail(0, err)

    def _route(self, stage: int) -> None:
        """Collect stage results, restore order, dispatch to the next stage.

        Any unexpected failure here (unpicklable payloads, a result whose
        class explodes on unpickle) must poison the session rather than
        leave ``drain()`` waiting forever for items that will never arrive.
        """
        try:
            self._route_inner(stage)
        except BaseException as err:  # noqa: BLE001 - reported via the session
            self._fail(stage, err)

    def _route_inner(self, stage: int) -> None:
        backend: ProcessPoolBackend = self.backend  # type: ignore[assignment]
        assert backend._pools is not None
        pool = backend._pools[stage]
        metrics = self.instrumentation.stages[stage]
        last = stage + 1 >= backend.pipeline.n_stages
        reorder = self._reorder[stage]
        while True:
            if self._abort.is_set():
                return
            try:
                msg = pool.resq.get(timeout=0.1)
            except thread_queue.Empty:
                if self._stopping.is_set():
                    return
                # No worker should die mid-stream (close() is the only
                # sender of stop pills); a dead one with items in flight
                # means those items are lost and the drain barrier would
                # never clear — fail, don't hang.  Idle pools are left in
                # peace between streams.
                if pool.queued():
                    dead = pool.dead_workers()
                    if dead:
                        wid, code = dead[0]
                        self.events.emit(
                            "worker.death",
                            f"stage {stage} worker {wid} exited",
                            worker=wid,
                            stage=stage,
                            exitcode=code,
                        )
                        self._fail(
                            stage,
                            RuntimeError(
                                f"worker {wid} died mid-run (exitcode {code}); "
                                "its in-flight items are lost"
                            ),
                        )
                        return
                continue
            kind, seq, worker_id, payload, extra = msg
            pool.note_done(worker_id)
            if kind == "err":
                original: BaseException
                if payload is not None:
                    try:
                        original = pickle.loads(payload)
                    except Exception:
                        original = RuntimeError(extra)
                else:
                    original = RuntimeError(extra)
                self._fail(stage, original)
                return
            queued = pool.queued()
            # Executor seqs are batch seqs when batching: translate the
            # service record back to item space (seq = first item, items=N)
            # so span attribution and the live top view stay per-item.
            ev_seq, ev_items = self._event_seq(seq)
            with self._stage_locks[stage]:
                metrics.record_service(
                    extra, 1.0, seq=ev_seq, worker=worker_id, queue=queued,
                    items=ev_items,
                )
                metrics.record_queue_length(queued)
                metrics.record_bytes_out(payload.nbytes)
            # Workers already produced encoded frames and the next stage's
            # workers expect exactly that format — forward each frame
            # untouched and decode only for final outputs.
            for ready_seq, ready_frame in reorder.push(seq, payload):
                if last:
                    value = backend._codec.decode(ready_frame)
                    backend._codec.release(ready_frame)
                    if self.events.wants("frame.release"):
                        rel_seq, rel_items = self._event_seq(ready_seq)
                        rel = dict(
                            stage=stage, seq=rel_seq, nbytes=ready_frame.nbytes
                        )
                        if rel_items > 1:
                            rel["items"] = rel_items
                        self.events.emit("frame.release", **rel)
                    with self._stage_locks[stage]:
                        self.instrumentation.record_completion(
                            self.now(),
                            items=len(value) if isinstance(value, Batch) else 1,
                        )
                    self._deliver(value)
                else:
                    self._record_bytes_in(stage + 1, ready_frame.nbytes)
                    if not self._dispatch(stage + 1, ready_seq, ready_frame):
                        return


class ProcessPoolBackend(Backend):
    """Executes pipelines on warm, pre-forked per-stage process pools.

    Parameters
    ----------
    pipeline:
        Stage specs; every stage must define ``fn``.
    replicas:
        Initially *active* workers per stage (default 1 each).
    max_replicas:
        Warm-pool size per replicable stage — the ceiling ``reconfigure``
        can activate without forking mid-run.
    capacity:
        Per-worker task-queue bound (back-pressure granularity).
    start_method:
        ``multiprocessing`` start method; default ``fork`` when available.
    transport:
        Payload codec moving items between processes: a registered name
        (``"auto"``/``"pickle"``/``"shm"``, see :mod:`repro.transport`) or
        a configured :class:`~repro.transport.Codec` instance.  The
        default ``"auto"`` keeps small items inline and routes large
        numpy/bytes payloads through shared-memory segments, with the
        placement threshold calibrated at warm-up.
    calibrate_transport:
        Probe the host's inline-vs-segment crossover at warm-up and use it
        as ``"auto"``'s threshold (default True; only affects ``"auto"``).
    """

    name = "processes"
    supports_live_reconfigure = True

    def __init__(
        self,
        pipeline: PipelineSpec,
        *,
        replicas: list[int] | None = None,
        max_replicas: int = 4,
        capacity: int | None = None,
        start_method: str | None = None,
        transport: str | Codec = "auto",
        calibrate_transport: bool = True,
    ) -> None:
        super().__init__(pipeline)
        capacity = 8 if capacity is None else capacity
        check_positive(capacity, "capacity")
        check_positive(max_replicas, "max_replicas")
        replica_list = validate_pipeline_shape(pipeline, replicas, "process runtime")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self._codec = _transport.get(transport)
        self._calibrate_transport = calibrate_transport
        self.capacity = capacity
        # A warm pool must at least cover the requested starting shape.
        self.max_replicas = max(max_replicas, *replica_list)
        self._target = [
            min(r, self.replica_limit(i)) for i, r in enumerate(replica_list)
        ]
        self._pools: list[_StagePool] | None = None
        self._warm = False
        self._closed = False

    # --------------------------------------------------------------- warm-up
    def replica_limit(self, stage: int) -> int:
        return self.max_replicas if self.pipeline.stage(stage).replicable else 1

    def warm(self) -> None:
        """Pre-fork every stage's worker pool (idempotent)."""
        if self._closed:
            raise RuntimeError("backend is closed")
        if self._warm:
            return
        if self._calibrate_transport and self._codec.name == "auto":
            fitted = _transport.calibrated_auto_threshold()
            if fitted is not None:
                self._codec.threshold = fitted
        pools = []
        for i in range(self.pipeline.n_stages):
            pool_size = self.replica_limit(i)
            resq = self._ctx.Queue(maxsize=self.capacity * pool_size)
            pool = _StagePool(resq, threading.Lock())
            fn = self.pipeline.stage(i).fn
            codec_spec = _transport.spec_of(self._codec)
            for wid in range(pool_size):
                taskq = self._ctx.Queue(maxsize=self.capacity)
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(i, wid, fn, taskq, resq, codec_spec),
                    name=f"{self.pipeline.stage(i).name}.{wid}",
                    daemon=True,
                )
                proc.start()
                pool.workers.append(_WorkerHandle(proc, taskq, active=wid < self._target[i]))
            pools.append(pool)
        self._pools = pools
        self._warm = True

    # ------------------------------------------------------------- sessions
    def _open_session(
        self,
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> Session:
        return _ProcessSession(
            self,
            max_inflight=max_inflight,
            telemetry=telemetry,
            batching=batching,
        )

    def _shutdown_pools(self, *, graceful: bool) -> None:
        if self._pools is None:
            return
        for pool in self._pools:
            for w in pool.workers:
                if graceful:
                    try:
                        w.taskq.put(_STOP, timeout=0.5)
                    except thread_queue.Full:
                        pass
                w.taskq.close()
        for pool in self._pools:
            for w in pool.workers:
                w.proc.join(timeout=1.0 if graceful else 0.1)
                if w.proc.is_alive():
                    w.proc.terminate()
                    w.proc.join(timeout=1.0)
            pool.resq.close()
        self._pools = None
        self._warm = False
        # Every producer and consumer of this session's segments is now
        # stopped: reclaim whatever frames were stranded in queues by an
        # abort (a clean run leaves nothing — consumers release as they go).
        self._codec.sweep()

    def close(self) -> None:
        """Stop every warm worker and release the pools (idempotent)."""
        if self._closed:
            return
        self._closed = True
        super().close()  # closes the session (a broken one goes cold itself)
        self._shutdown_pools(graceful=True)

    # ----------------------------------------------------------------- shape
    def replica_counts(self) -> list[int]:
        if self._pools is None:
            return list(self._target)
        return [p.active_count() for p in self._pools]

    def reconfigure(self, stage: int, n_replicas: int) -> None:
        """Activate/deactivate warm workers of ``stage`` to ``n_replicas``.

        Counts are clamped to ``[1, replica_limit(stage)]`` (so a stateful
        stage clamps to 1, matching the port contract and the thread
        adapter) — growth never forks mid-run; deactivated workers finish
        what they were dealt and then idle, warm, until reactivated or
        closed.
        """
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        n_replicas = min(n_replicas, self.replica_limit(stage))
        self._target[stage] = n_replicas
        if self._pools is None:
            return
        pool = self._pools[stage]
        with pool.lock:
            active = sum(1 for w in pool.workers if w.active)
            if active < n_replicas:
                for w in pool.workers:
                    if not w.active:
                        w.active = True
                        active += 1
                        self.events.emit("replica.add", stage=stage, n=active)
                        if active == n_replicas:
                            break
            elif active > n_replicas:
                # Drop the least-loaded workers first; busy ones finish what
                # they were dealt either way.
                idle_first = sorted(
                    (w for w in pool.workers if w.active), key=lambda w: w.inflight
                )
                for w in idle_first:
                    if active == n_replicas:
                        break
                    w.active = False
                    active -= 1
                    self.events.emit("replica.remove", stage=stage, n=active)


register_backend("processes", ProcessPoolBackend)
