"""The execution-backend port.

A :class:`Backend` runs one :class:`~repro.core.pipeline.PipelineSpec` over
a sequence of inputs under the eSkel ``Pipeline1for1`` contract (equal
length, input order preserved) and exposes the three hooks the adaptation
loop needs:

* **observe** — ``snapshots()`` reports per-stage service-time and
  queue-depth samples as :class:`~repro.monitor.instrument.StageSnapshot`
  objects (the same currency the simulator's instrumentation uses), and
  ``recent_throughput()``/``items_completed()`` report sink-side progress;
* **act** — ``reconfigure(stage, n_replicas)`` changes a replicable stage's
  degree of parallelism, live when ``supports_live_reconfigure`` is true;
* **lifecycle** — ``start``/``join`` split a run so a controller thread can
  observe and act mid-flight; ``run`` is the blocking convenience form and
  ``close`` releases warm resources (worker pools).

Adapters register themselves in a name → factory registry so user-facing
entry points (:func:`repro.skel.api.pipeline_1for1`) and benchmarks can
select a backend by string, and downstream code can plug in new ones
(``register_backend``) without touching this package.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.pipeline import PipelineSpec
from repro.model.throughput import ResourceView
from repro.monitor.instrument import StageSnapshot

__all__ = [
    "Backend",
    "BackendCapabilityError",
    "BackendResult",
    "available_backends",
    "capability_error",
    "make_backend",
    "register_backend",
]


class BackendCapabilityError(RuntimeError):
    """The backend cannot perform the requested operation (by design).

    Raise through :func:`capability_error` so every message names the
    backend that refused — the traceback alone must identify which adapter
    a caller picked.
    """


def capability_error(backend: "Backend | str", operation: str) -> BackendCapabilityError:
    """A :class:`BackendCapabilityError` naming the refusing backend."""
    name = backend if isinstance(backend, str) else backend.name
    return BackendCapabilityError(f"backend {name!r} does not support {operation}")


@dataclass
class BackendResult:
    """What one backend run produced.

    ``outputs`` is ``None`` when the backend measures but does not compute
    (a simulator run over stages without callables).  ``elapsed`` is in the
    backend's own clock: wall seconds for real executors, simulated seconds
    for the simulator.
    """

    backend: str
    outputs: list[Any] | None
    items: int
    elapsed: float
    service_means: list[float] = field(default_factory=list)
    replica_counts: list[int] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.items / self.elapsed if self.elapsed > 0 else 0.0


class Backend(ABC):
    """Port through which pipelines execute (see module docstring)."""

    name: str = "abstract"
    supports_live_reconfigure: bool = False

    def __init__(self, pipeline: PipelineSpec) -> None:
        self.pipeline = pipeline

    # ------------------------------------------------------------- lifecycle
    @abstractmethod
    def start(self, inputs: Iterable[Any]) -> int:
        """Begin a run; returns the number of items accepted."""

    @abstractmethod
    def join(self) -> BackendResult:
        """Block until the current run completes and return its result."""

    def run(self, inputs: Iterable[Any]) -> BackendResult:
        """``start`` + ``join``."""
        self.start(inputs)
        return self.join()

    def running(self) -> bool:
        return False

    def close(self) -> None:
        """Release warm resources; the backend may not be reused after."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- observation
    def snapshots(self) -> list[StageSnapshot]:
        """Windowed per-stage service/queue measurements of the current run."""
        return []

    def items_completed(self) -> int:
        return 0

    def recent_throughput(self, horizon: float) -> float:
        """Sink completions/s over the trailing ``horizon`` (NaN = no data)."""
        return math.nan

    def resource_view(self, n_procs: int) -> ResourceView | None:
        """Measured view of the substrate as a virtual grid of ``n_procs``.

        Backends that can ground the planner's virtual grid in reality —
        host load, per-worker speeds, measured link costs — return a
        :class:`~repro.model.throughput.ResourceView` whose pids are exactly
        ``0..n_procs-1``; ``None`` (the default) keeps the runner's uniform
        unit-speed assumption.
        """
        return None

    # ----------------------------------------------------------------- shape
    def replica_counts(self) -> list[int]:
        return [1] * self.pipeline.n_stages

    def replica_limit(self, stage: int) -> int:
        """Largest replica count ``reconfigure`` can honour for ``stage``."""
        return 1

    def reconfigure(self, stage: int, n_replicas: int) -> None:
        """Set ``stage``'s degree of parallelism (live when supported)."""
        raise capability_error(self, "reconfigure()")


# --------------------------------------------------------------------- registry
_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register_backend(
    name: str, factory: Callable[..., Backend], *, overwrite: bool = False
) -> None:
    """Register ``factory(pipeline, **kwargs) -> Backend`` under ``name``."""
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    return sorted(_REGISTRY)


def make_backend(
    backend: str | Backend, pipeline: PipelineSpec | None = None, **kwargs
) -> Backend:
    """Resolve ``backend`` (a name or an instance) to a :class:`Backend`.

    Passing an instance returns it unchanged (kwargs must then be omitted —
    the instance is already configured).  When both an instance *and* a
    ``pipeline`` are given, the instance must run the same stage callables:
    silently executing a different pipeline than the caller reasons about
    is the one mistake this seam must not allow.
    """
    if isinstance(backend, Backend):
        if kwargs:
            raise ValueError(
                f"backend instance given; unexpected kwargs: {sorted(kwargs)}"
            )
        if pipeline is not None and [s.fn for s in backend.pipeline.stages] != [
            s.fn for s in pipeline.stages
        ]:
            raise ValueError(
                f"backend instance was built for pipeline "
                f"{backend.pipeline!s}, which does not run the given stages"
            )
        return backend
    try:
        factory = _REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    if pipeline is None:
        raise ValueError("a PipelineSpec is required to build a backend by name")
    return factory(pipeline, **kwargs)
