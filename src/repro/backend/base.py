"""The execution-backend port: long-lived streaming sessions over executors.

A :class:`Backend` runs one :class:`~repro.core.pipeline.PipelineSpec` under
the eSkel ``Pipeline1for1`` contract (equal length, input order preserved).
Since the streaming refactor the primitive is no longer a one-shot batch
but a **session**: ``backend.open() -> Session`` hands out a resident
pipeline that accepts work as it arrives and emits results as a stream —
the Naiad/FastFlow view that the executor is a service and a "batch" is
just a bounded stream:

* ``session.submit(item) -> Ticket`` admits one item into the current
  stream (opening one lazily), blocking only when ``max_inflight`` items
  are already admitted but not yet completed — backpressure by bounded
  admission, layered on top of the executor's own bounded queues (pass
  ``max_inflight=None``, the default, to rely on those alone);
* ``session.results()`` iterates the current stream's outputs **in input
  order, as items complete** — the first result is available long before
  the stream drains;
* ``session.drain()`` ends the current stream, waits for every admitted
  item, and returns whatever outputs no ``results()`` consumer took; the
  next ``submit`` then starts a fresh stream on the same warm executor;
* ``session.close()`` releases the session's executor resources.

``run``/``start``/``join`` survive as thin wrappers over that path
(open → submit\\* → drain) so every existing caller keeps working — there
is exactly one execution code path per backend, the streaming one.

The port also keeps the three hooks the adaptation loop needs:

* **observe** — ``snapshots()``/``items_completed()``/
  ``recent_throughput()`` delegate to the live session's instrumentation
  (:class:`~repro.monitor.instrument.StageSnapshot` currency, counters
  cumulative across streams);
* **act** — ``reconfigure(stage, n_replicas)`` changes a replicable
  stage's degree of parallelism, live when ``supports_live_reconfigure``;
* **lifecycle** — ``close`` releases warm resources (worker pools,
  sockets, event loops).

Adapters register themselves in a name → factory registry so user-facing
entry points (:func:`repro.skel.api.pipeline_1for1`,
:func:`repro.skel.api.open_pipeline`) and benchmarks can select a backend
by string, and downstream code can plug in new ones (``register_backend``)
without touching this package.
"""

from __future__ import annotations

import math
import threading
import time
import uuid
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.core.pipeline import PipelineSpec
from repro.model.throughput import ResourceView
from repro.monitor.instrument import StageSnapshot
from repro.obs.events import NULL_BUS, EventBus
from repro.util.batching import Batch, BatchingConfig, approx_nbytes, normalize_batching
from repro.util.validation import check_positive

__all__ = [
    "Backend",
    "BackendCapabilityError",
    "BackendResult",
    "Session",
    "SessionClosed",
    "SessionStats",
    "Ticket",
    "available_backends",
    "capability_error",
    "make_backend",
    "register_backend",
    "validate_pipeline_shape",
]



class BackendCapabilityError(RuntimeError):
    """The backend cannot perform the requested operation (by design).

    Raise through :func:`capability_error` so every message names the
    backend that refused — the traceback alone must identify which adapter
    a caller picked.
    """


class SessionClosed(RuntimeError):
    """The session was closed; it accepts no further submits or drains."""


def capability_error(backend: "Backend | str", operation: str) -> BackendCapabilityError:
    """A :class:`BackendCapabilityError` naming the refusing backend."""
    name = backend if isinstance(backend, str) else backend.name
    return BackendCapabilityError(f"backend {name!r} does not support {operation}")


@dataclass(frozen=True)
class Ticket:
    """Receipt for one submitted item: which stream, and where in it.

    Tickets minted by a live session also resolve individually:
    :meth:`done` and :meth:`wait` answer "has *my* item been delivered?"
    without consuming ``results()`` — the request/response surface
    out-of-order consumers need.  Micro-batched sessions resolve tickets
    at batch split, so per-ticket completion is exact either way.
    """

    stream: int
    seq: int
    _session: "Session | None" = field(default=None, compare=False, repr=False)

    def done(self) -> bool:
        """True once this item was delivered (in order) by its session."""
        session = self._require_session()
        with session._cv:
            return session._ticket_done_locked(self.stream, self.seq)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until this item is delivered; False on timeout.

        Raises the session's executor error if the session broke, and
        :class:`SessionClosed` if it was closed before delivery.
        """
        session = self._require_session()
        deadline = None if timeout is None else time.perf_counter() + timeout
        with session._cv:
            while True:
                if session._ticket_done_locked(self.stream, self.seq):
                    return True
                if session._error is not None:
                    raise session._error
                if session._closed:
                    raise SessionClosed(
                        "session closed before this ticket completed"
                    )
                if deadline is None:
                    session._cv.wait(0.05)
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return False
                    session._cv.wait(min(0.05, remaining))

    def _require_session(self) -> "Session":
        if self._session is None:
            raise RuntimeError(
                "this Ticket is not bound to a session (constructed by hand?)"
            )
        return self._session


@dataclass(frozen=True)
class SessionStats:
    """Progress counters of a session (per-stream vs session-cumulative)."""

    streams_completed: int
    items_total: int
    stream_submitted: int
    stream_delivered: int

    @property
    def backlog(self) -> int:
        return self.stream_submitted - self.stream_delivered


@dataclass
class BackendResult:
    """What one backend run (a bounded stream) produced.

    ``outputs`` is ``None`` when the backend measures but does not compute
    (a simulator run over stages without callables).  ``elapsed`` is in the
    backend's own clock: wall seconds for real executors, simulated seconds
    for the simulator.
    """

    backend: str
    outputs: list[Any] | None
    items: int
    elapsed: float
    service_means: list[float] = field(default_factory=list)
    replica_counts: list[int] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.items / self.elapsed if self.elapsed > 0 else 0.0


class Session:
    """A long-lived submit/stream pipeline on one backend (see module doc).

    Subclasses wire the four executor hooks (``_begin_stream``,
    ``_submit_one``, ``_end_stream``, ``_shutdown``) and call back into
    ``_deliver``/``_deliver_error`` from their collector threads; this base
    owns every piece of stream accounting — admission windows, ordered
    delivery buffering, stream ids, drain barriers and error stickiness —
    so the five executors cannot drift apart on lifecycle semantics.

    Streams are strictly sequential: ``drain()`` is the boundary, and the
    executor pipeline is empty of stream *s* before stream *s+1* admits its
    first item.  An executor error poisons the session (``broken``); every
    subsequent ``submit``/``results``/``drain`` re-raises it, and the
    owning backend opens a fresh session on the next run.
    """

    #: False on measure-only sessions (simulator without stage callables).
    produces_outputs = True

    #: True on sessions whose executor fabric carries :class:`Batch` units
    #: end to end (the four real executors).  Sessions that leave this
    #: False silently ignore ``batching=`` (the simulator models per-item
    #: service, so coalescing would misrepresent what it simulates).
    supports_batching = False

    def __init__(
        self,
        backend: "Backend",
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> None:
        #: Resolved micro-batching bounds, or None when batching is off.
        #: Auto sizing sees the pipeline's declared per-item service time,
        #: so slow stages get small batches (latency) and sub-ms stages get
        #: the full hop-amortizing count bound (throughput).
        work_hint = sum(
            s.work.mean
            for s in backend.pipeline.stages
            if getattr(s, "work_declared", False)
        )
        self._bcfg: BatchingConfig | None = (
            normalize_batching(batching, work_hint_s=work_hint)
            if self.supports_batching
            else None
        )
        self._auto_window = max_inflight == "auto"
        if self._auto_window:
            # Seed from the batch size alone; Little's-law retunes kick in
            # once live StageSnapshots carry measured service times.
            batch_items = self._bcfg.max_items if self._bcfg else 1
            max_inflight = max(32, 4 * batch_items)
        elif max_inflight is not None:
            check_positive(max_inflight, "max_inflight")
        self.backend = backend
        # The admission window: items admitted but not yet completed.
        # None (the default) leaves admission to the executor's own bounded
        # queues — a deliberately *additional* control, so a wide pipeline
        # (E15's 1024-replica fan-out) is never strangled by a constant.
        self.max_inflight = max_inflight
        self._cv = threading.Condition()
        # RLock: close callbacks (e.g. "close the owning backend") re-enter
        # close(), which must no-op instead of deadlocking; a concurrent
        # closer from another thread still waits for shutdown to finish.
        self._close_lock = threading.RLock()
        self._out: deque = deque()
        self._stream = -1
        self._streaming = False
        self._eos = False
        self._begun = threading.Event()
        self._submitted = 0
        self._delivered = 0
        self._gseq = 0
        self._items_total = 0
        self._streams_completed = 0
        self._error: BaseException | None = None
        self._closed = False
        self._on_close: list[Callable[[], None]] = []
        self._last_drained_stream = -1
        # --- micro-batch assembly state (all mutated under _cv) ----------
        self._buf: list[Any] = []  # admitted items awaiting a batch cut
        self._buf_bytes = 0
        self._buf_base_seq = 0  # stream seq / gseq of the buffer's first item
        self._buf_gbase = 0
        self._buf_deadline = 0.0  # perf_counter deadline for a linger flush
        self._bseq = 0  # per-stream batch sequence (the executors' seq space)
        self._bgseq = 0  # session-global batch sequence (their gseq space)
        #: bseq -> (base item seq, item count) for the current stream; the
        #: routers translate batch-covering events back to item seqs here.
        self._batch_map: dict[int, tuple[int, int]] = {}
        self._flushq: deque = deque()  # cut batches awaiting the flusher
        self._flush_busy = False  # flusher is mid-_submit_one right now
        self._opened_t0 = time.perf_counter()
        #: Short unique id of this session; the prefix of every item's
        #: trace id (``<session_id>:<stream>:<seq>``, minted at submit).
        self.session_id = uuid.uuid4().hex[:8]
        self._stream_t0 = 0.0
        #: Duration of the last drained stream (executor clock; wall for
        #: real executors, simulated seconds for the simulator shim).
        self.last_stream_elapsed: float | None = None
        self.last_stream_items = 0
        #: Subclasses set a PipelineInstrumentation (and, optionally,
        #: ``_snapshot_locks``) to expose observation through the port.
        self.instrumentation = None
        self._snapshot_locks = None
        #: Structured event bus (schema in :data:`repro.obs.events.SCHEMA`).
        #: Created here — before any subclass executor machinery starts — and
        #: adopted by the backend, so emit sites anywhere in the executor
        #: (including distributed warm-up) publish to this session's bus.
        self.events = EventBus(clock=self.now)
        backend._events_bus = self.events
        self._telemetry = None
        if telemetry is not None:
            from repro.obs.exporters import as_telemetry

            self._telemetry = as_telemetry(telemetry).attach(self)
        self.events.emit(
            "session.open",
            backend=backend.name,
            stages=[s.name for s in backend.pipeline.stages],
            max_inflight=max_inflight,
            session_id=self.session_id,
        )
        if self._bcfg is not None:
            # The flusher guarantees the linger deadline (partial batches
            # under trickle load) and drains window-full deadlock cuts.
            threading.Thread(
                target=self._flusher_loop,
                name=f"session-{self.session_id}-flush",
                daemon=True,
            ).start()

    # ------------------------------------------------------------- properties
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        """True once an executor error poisoned the session."""
        return self._error is not None

    @property
    def stream(self) -> int:
        """Id of the current (or most recent) stream; -1 before the first."""
        return self._stream

    @property
    def backlog(self) -> int:
        """Items admitted to the current stream but not yet completed."""
        with self._cv:
            return self._submitted - self._delivered

    def stats(self) -> SessionStats:
        with self._cv:
            return SessionStats(
                streams_completed=self._streams_completed,
                items_total=self._items_total,
                stream_submitted=self._submitted,
                stream_delivered=self._delivered,
            )

    def now(self) -> float:
        """Seconds since the session opened (the instrumentation clock)."""
        return time.perf_counter() - self._opened_t0

    def perf_to_session(self, t: float) -> float:
        """Map a raw ``time.perf_counter()`` reading onto the session clock.

        Executors that stamp timestamps off the hot path (dispatch times,
        socket receipt times) convert them here when emitting events, so
        every journal record shares one time base.
        """
        return t - self._opened_t0

    # ------------------------------------------------------------- public API
    def submit(self, item: Any) -> Ticket:
        """Admit one item into the current stream (opening one lazily).

        Blocks while ``max_inflight`` items are admitted-but-incomplete
        (the bounded-admission backpressure; with the ``None`` default the
        executor's bounded queues alone apply) and raises the executor's
        error if the session broke meanwhile.  Thread-safe: concurrent
        producers interleave safely (every executor restores sequence
        order downstream).
        """
        begin = False
        blocked_t0: float | None = None
        cut: tuple | None = None
        with self._cv:
            while True:
                self._raise_if_unusable()
                if self._streaming and self._eos:
                    raise RuntimeError(
                        "stream is draining; wait for drain() to return before "
                        "submitting to the next stream"
                    )
                if not self._streaming:
                    self._stream += 1
                    self._streaming = True
                    self._eos = False
                    self._submitted = 0
                    self._delivered = 0
                    self._out.clear()
                    self._begun = threading.Event()
                    self._stream_t0 = time.perf_counter()
                    # Fresh per-stream batch sequence space (bgseq, like
                    # gseq, stays session-global).
                    self._buf = []
                    self._buf_bytes = 0
                    self._bseq = 0
                    self._batch_map.clear()
                    begin = True
                if (
                    self.max_inflight is None
                    or self._submitted - self._delivered < self.max_inflight
                ):
                    stream = self._stream
                    seq = self._submitted
                    self._submitted += 1
                    gseq = self._gseq
                    self._gseq += 1
                    begun = self._begun
                    if self._bcfg is not None:
                        cut = self._buffer_item_locked(seq, gseq, item)
                    break
                # Window full: wait, then re-evaluate the stream state from
                # scratch — drain() may have ended (or finished) the stream
                # while we were parked, and an admission granted against the
                # old stream would slip past its end-of-stream barrier and
                # corrupt the next stream's ordering.
                if self._bcfg is not None and self._buf:
                    # Deadlock guard: the window cannot reopen while the
                    # only admitted-but-unexecuted items sit in the assembly
                    # buffer, so cut the partial batch before parking.
                    self._flushq.append(self._cut_locked("window"))
                    self._cv.notify_all()
                if blocked_t0 is None:
                    blocked_t0 = time.perf_counter()
                self._cv.wait(0.05)
        admit_wait = 0.0 if blocked_t0 is None else time.perf_counter() - blocked_t0
        if begin:
            try:
                self.events.emit("stream.begin", stream=stream)
                if self.instrumentation is not None:
                    self.instrumentation.begin_stream()
                self._begin_stream(stream)
            finally:
                begun.set()
        else:
            begun.wait()
        # The span (and its trace id) is minted here: (stream, seq) is the
        # item's Ticket, and gseq lets collectors resolve executors whose
        # internal sequence space is session-global (threads, asyncio).
        # ``wait`` rides along only when bounded admission actually blocked
        # — the profiler's admit-wait phase, absent meaning zero.
        if admit_wait:
            self.events.emit(
                "item.submit",
                stream=stream,
                seq=seq,
                gseq=gseq,
                trace=f"{self.session_id}:{stream}:{seq}",
                wait=admit_wait,
            )
        else:
            self.events.emit(
                "item.submit",
                stream=stream,
                seq=seq,
                gseq=gseq,
                trace=f"{self.session_id}:{stream}:{seq}",
            )
        if self._bcfg is None:
            try:
                self._submit_one(stream, seq, gseq, item)
            except BaseException as err:
                self._deliver_error(err)
                raise
        elif cut is not None:
            self._submit_cut(cut)
        if self._auto_window and gseq and gseq % 64 == 0:
            self._retune_window()
        return Ticket(stream, seq, self)

    def results(self) -> Iterator[Any]:
        """Yield the current stream's outputs in order, as they complete.

        Binds to the stream active at the call (or the next one to open)
        and ends once that stream has drained and every output was taken —
        by this iterator or by :meth:`drain`, whichever gets there first.
        Safe to consume from one thread while another submits.
        """
        with self._cv:
            target = self._stream if self._streaming else self._stream + 1
        while True:
            with self._cv:
                while True:
                    if self._error is not None:
                        raise self._error
                    if self._closed:
                        return
                    if self._stream > target:
                        return  # the target stream came and went entirely
                    if self._stream == target:
                        if self._out:
                            value = self._out.popleft()
                            self._cv.notify_all()
                            break
                        if not self._streaming:
                            return  # drained; drain() took the leftovers
                        if self._eos and self._delivered >= self._submitted:
                            return  # complete and fully consumed
                    self._cv.wait(0.2)
            yield value

    def drain(self) -> list[Any]:
        """End the current stream, wait for it, return unconsumed outputs.

        The returned list is ordered and holds exactly the outputs no
        ``results()`` consumer already took (the whole stream for the
        plain open → submit\\* → drain batch pattern, usually empty when a
        consumer thread is active).  ``[]`` when no stream is open.
        """
        pending: list[tuple] = []
        with self._cv:
            self._raise_if_unusable()
            if not self._streaming:
                return []
            if self._eos:
                raise RuntimeError("drain() already in progress for this stream")
            self._eos = True
            stream, n = self._stream, self._submitted
            units = n
            if self._bcfg is not None:
                # Steal every cut-but-unsubmitted batch and flush the
                # partial buffer; wait out a flusher mid-_submit_one so no
                # batch can land in the executor after _end_stream.
                while self._flushq:
                    pending.append(self._flushq.popleft())
                if self._buf:
                    pending.append(self._cut_locked("drain"))
                units = self._bseq
                while self._flush_busy:
                    self._cv.wait(0.01)
        for cut in pending:
            self._submit_cut(cut)
        # Batched executors count stream units in batches, not items.
        self._end_stream(stream, units)
        with self._cv:
            while self._delivered < n:
                if self._error is not None:
                    raise self._error
                if self._closed:
                    raise SessionClosed("session closed while draining")
                self._cv.wait(0.05)
            leftovers = list(self._out)
            self._out.clear()
            self._streaming = False
            self._eos = False
            self._last_drained_stream = stream
            self._streams_completed += 1
            self.last_stream_items = n
            wall = time.perf_counter() - self._stream_t0
            self._cv.notify_all()
        self.last_stream_elapsed = self._finalize_stream(wall)
        self.events.emit(
            "stream.drain",
            stream=stream,
            items=n,
            elapsed=self.last_stream_elapsed,
        )
        return leftovers

    def close(self) -> None:
        """Release the session's executor resources (idempotent).

        A mid-stream close aborts: admitted-but-incomplete items are
        dropped, exactly as a one-shot run's abort dropped them.
        """
        with self._close_lock:
            with self._cv:
                if self._closed:
                    return
                self._closed = True
                streams, items = self._streams_completed, self._items_total
                self._cv.notify_all()
            # Before _shutdown, so executor teardown events (replica
            # removals, worker shutdowns) follow it in the journal and the
            # telemetry close callback has not yet run.
            self.events.emit("session.close", streams=streams, items_total=items)
            first_err: BaseException | None = None
            try:
                self._shutdown()
            except BaseException as err:  # noqa: BLE001 - still run callbacks
                first_err = err
            for cb in self._on_close:
                try:
                    cb()
                except BaseException as err:  # noqa: BLE001
                    if first_err is None:
                        first_err = err
            if first_err is not None:
                raise first_err

    def add_close_callback(self, cb: Callable[[], None]) -> None:
        """Run ``cb`` after this session's executor shutdown (in order)."""
        self._on_close.append(cb)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------- observation
    def snapshots(self) -> list[StageSnapshot]:
        if self.instrumentation is None:
            return []
        return self.instrumentation.snapshots(self._snapshot_locks)

    def service_means(self) -> list[float]:
        if self.instrumentation is None:
            return []
        return [
            s.total.mean if s.total.n else math.nan
            for s in self.instrumentation.stages
        ]

    # ------------------------------------------------- executor-side callbacks
    def _deliver(self, value: Any) -> None:
        """Executor collectors hand over the next in-order output here."""
        if self._bcfg is not None and isinstance(value, Batch):
            self._deliver_batch(value)
            return
        with self._cv:
            self._out.append(value)
            stream, seq = self._stream, self._delivered
            self._delivered += 1
            self._items_total += 1
            self._cv.notify_all()
        # Emit outside _cv: a journal write under the condition variable
        # would serialise submitters behind the exporter's I/O.  Delivery is
        # in input order, so the pre-increment count *is* the item's seq.
        self.events.emit("item.complete", stream=stream, seq=seq)

    def _deliver_batch(self, batch: Batch) -> None:
        """Egress splitter: one delivered batch fans out to N ordered items.

        One lock round and one notify per *batch* — the per-item half of
        the amortization story — then per-item ``item.complete`` events
        (guarded, so an unsubscribed bus pays nothing) keep the journal's
        item timeline identical to the unbatched one.
        """
        n = len(batch.items)
        with self._cv:
            stream = self._stream
            self._out.extend(batch.items)
            self._delivered += n
            self._items_total += n
            self._batch_map.pop(batch.bseq, None)
            self._cv.notify_all()
        self.events.emit(
            "batch.split",
            stream=stream,
            seq=batch.bseq,
            base=batch.base_seq,
            items=n,
        )
        if self.events.wants("item.complete"):
            for k in range(n):
                self.events.emit(
                    "item.complete", stream=stream, seq=batch.base_seq + k
                )

    def _deliver_error(self, err: BaseException) -> None:
        """Poison the session with the executor's (first) error."""
        with self._cv:
            first = self._error is None
            if first:
                self._error = err
            self._cv.notify_all()
        if first:
            self.events.emit("session.error", error=repr(err))

    def _raise_if_unusable(self) -> None:
        if self._error is not None:
            raise self._error
        if self._closed:
            raise SessionClosed(
                f"session on backend {self.backend.name!r} is closed"
            )

    def _ticket_done_locked(self, stream: int, seq: int) -> bool:
        """Whether item ``seq`` of ``stream`` has been delivered (under _cv)."""
        if stream <= self._last_drained_stream:
            return True
        # Streams are sequential: an undrained ticket stream is either the
        # live one (delivery is in order, so the delivered count decides)
        # or a stream abandoned by a mid-stream close (never done).
        return stream == self._stream and seq < self._delivered

    def _event_seq(self, seq: int) -> "tuple[int, int]":
        """Translate an executor seq into item space: ``(first_seq, items)``.

        Executor seqs are micro-batch seqs when batching is on; trace
        emitters use this so journal events name real item seqs (plus an
        ``items`` count) instead of internal batch numbering.  Reads of
        ``_batch_map`` are GIL-atomic dict gets, safe from router threads.
        """
        mapped = self._batch_map.get(seq)
        return mapped if mapped is not None else (seq, 1)

    # --------------------------------------------------- micro-batch assembly
    def _buffer_item_locked(self, seq: int, gseq: int, item: Any) -> tuple | None:
        """Admit one item into the assembly buffer; cut when a bound trips.

        Called under ``_cv`` right after admission, so buffer order is
        exactly sequence order and every buffered run is consecutive.
        Returns the cut (for the admitting thread to submit outside the
        lock) when the size or byte bound tripped, else None.
        """
        cfg = self._bcfg
        if not self._buf:
            self._buf_base_seq = seq
            self._buf_gbase = gseq
            self._buf_deadline = time.perf_counter() + cfg.linger_s
        self._buf.append(item)
        self._buf_bytes += approx_nbytes(item)
        if len(self._buf) >= cfg.max_items:
            return self._cut_locked("size")
        if self._buf_bytes >= cfg.max_bytes:
            return self._cut_locked("bytes")
        return None

    def _cut_locked(self, reason: str) -> tuple:
        """Seal the assembly buffer into one Batch (under ``_cv``)."""
        bseq = self._bseq
        self._bseq += 1
        bgseq = self._bgseq
        self._bgseq += 1
        batch = Batch(self._buf, self._buf_base_seq, self._buf_gbase, bseq)
        self._batch_map[bseq] = (batch.base_seq, len(batch.items))
        self._buf = []
        self._buf_bytes = 0
        return (self._stream, batch, bgseq, self._begun, reason)

    def _submit_cut(self, cut: tuple) -> None:
        """Hand one sealed batch to the executor (outside ``_cv``).

        Waits on the stream's begin barrier first: a flusher-side cut must
        not reach the executor before ``_begin_stream`` rebased it.
        Out-of-order arrival *between* submitters is fine — every executor
        restores sequence order downstream.
        """
        stream, batch, bgseq, begun, reason = cut
        begun.wait()
        self.events.emit(
            "batch.assemble",
            stream=stream,
            seq=batch.bseq,
            base=batch.base_seq,
            items=len(batch.items),
            reason=reason,
        )
        try:
            self._submit_one(stream, batch.bseq, bgseq, batch)
        except BaseException as err:
            self._deliver_error(err)
            raise

    def _flusher_loop(self) -> None:
        """Background flusher: linger deadlines + window-full cut drain."""
        while True:
            cut = None
            with self._cv:
                if self._closed:
                    return
                if self._flushq:
                    cut = self._flushq.popleft()
                elif self._buf and self._streaming and not self._eos:
                    now = time.perf_counter()
                    if now >= self._buf_deadline:
                        cut = self._cut_locked("linger")
                    else:
                        self._cv.wait(self._buf_deadline - now)
                        continue
                else:
                    self._cv.wait(0.05)
                    continue
                self._flush_busy = True
            try:
                self._submit_cut(cut)
            except BaseException:  # noqa: BLE001 - session already poisoned
                pass
            finally:
                with self._cv:
                    self._flush_busy = False
                    self._cv.notify_all()

    # ------------------------------------------------ Little's-law admission
    def _retune_window(self) -> None:
        """Re-derive the auto admission window from live measurements.

        Little's law on the current StageSnapshots: the bottleneck stage's
        per-replica service time bounds the sustainable rate μ; sizing the
        window to the items in flight at ~0.9 μ (L = λ·W, with the G/G/1
        Allen–Cunneen queue-wait for the bottleneck) keeps the pipeline
        saturated without parking an unbounded backlog in its queues.
        """
        from repro.model.queueing import gg1_waiting_time

        try:
            snaps = self.snapshots()
            replicas = self.backend.replica_counts()
        except Exception:  # noqa: BLE001 - observation must never break submit
            return
        if len(snaps) != len(replicas) or not snaps:
            return
        if any(s.items_processed < 8 or s.service_time <= 0 for s in snaps):
            return  # not enough signal yet
        per_stage = [
            s.service_time / max(1, r) for s, r in zip(snaps, replicas)
        ]
        bottleneck = max(range(len(snaps)), key=lambda i: per_stage[i])
        service_rate = 1.0 / per_stage[bottleneck]
        arrival_rate = 0.9 * service_rate
        cs2 = snaps[bottleneck].service_cv ** 2
        wq = gg1_waiting_time(arrival_rate, service_rate, 1.0, cs2)
        if not math.isfinite(wq):
            wq = per_stage[bottleneck]  # ρ≥1 fallback: one extra service
        wall = sum(per_stage) + wq
        batch_items = self._bcfg.max_items if self._bcfg else 1
        window = math.ceil(arrival_rate * wall) + 2 * batch_items
        window = max(max(8, 2 * batch_items), min(1024, window))
        if window == self.max_inflight:
            return
        with self._cv:
            self.max_inflight = window
            self._cv.notify_all()
        self.events.emit(
            "session.window",
            window=window,
            arrival_rate=arrival_rate,
            service_rate=service_rate,
            wq=wq,
        )

    # ------------------------------------------------------- executor hooks
    def _begin_stream(self, stream: int) -> None:
        """A new stream opens (called before its first ``_submit_one``)."""

    def _submit_one(self, stream: int, seq: int, gseq: int, item: Any) -> None:
        """Hand one admitted item to the executor (may block on its queues).

        ``seq`` is the position within ``stream``; ``gseq`` is a
        session-global monotone sequence for executors that keep one
        ordering space across streams.
        """
        raise NotImplementedError

    def _end_stream(self, stream: int, n_items: int) -> None:
        """End-of-stream declared after ``n_items`` admissions (flush hook)."""

    def _finalize_stream(self, wall_elapsed: float) -> float:
        """Map the drained stream's wall time onto the executor's clock."""
        return wall_elapsed

    def _shutdown(self) -> None:
        """Stop the session's executor machinery (called once, from close)."""


class _BatchDriver:
    """Feeds one bounded stream through a session on a thread.

    ``start()`` must return immediately (controllers observe mid-flight)
    while ``submit`` may block on the admission window, so the classic
    batch path runs the open → submit\\* → drain sequence here.
    """

    def __init__(self, backend: "Backend", session: Session, items: list[Any]) -> None:
        self.session = session
        self.n_items = len(items)
        self.outputs: list[Any] | None = None
        self.error: BaseException | None = None
        self.elapsed = 0.0
        self.items = 0
        self._done = threading.Event()
        self._t0 = time.perf_counter()
        self._thread = threading.Thread(
            target=self._drive, args=(items,), name=f"{backend.name}-batch", daemon=True
        )
        self._thread.start()

    def _drive(self, items: list[Any]) -> None:
        try:
            for item in items:
                self.session.submit(item)
            outputs = self.session.drain()
        except BaseException as err:  # noqa: BLE001 - re-raised from join()
            self.error = err
        else:
            self.outputs = outputs
            self.items = self.session.last_stream_items
            elapsed = self.session.last_stream_elapsed
            self.elapsed = (
                elapsed if elapsed is not None else time.perf_counter() - self._t0
            )
        finally:
            self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self) -> None:
        self._thread.join()


class Backend(ABC):
    """Port through which pipelines execute (see module docstring)."""

    name: str = "abstract"
    supports_live_reconfigure: bool = False

    def __init__(self, pipeline: PipelineSpec) -> None:
        self.pipeline = pipeline
        self._session: Session | None = None
        self._driver: _BatchDriver | None = None
        # Replaced by each session's bus the moment it is constructed, so
        # backend-owned machinery (pools, the distributed coordinator) can
        # emit unconditionally from the day the backend is built.
        self._events_bus: EventBus = NULL_BUS

    # ------------------------------------------------------------- sessions
    @property
    def closed(self) -> bool:
        return getattr(self, "_closed", False)

    @property
    def events(self) -> EventBus:
        """The live session's event bus (an inert null bus before one)."""
        return self._events_bus

    def open(self, **config) -> Session:
        """Open a long-lived streaming session on this backend's executor.

        One session at a time: the executors share warm state (pools,
        sockets, the event loop), so a second concurrent session would
        interleave streams.  Close (or drain and reuse) the current one.
        """
        if self.closed:
            raise RuntimeError("backend is closed")
        if self._session is not None and not self._session.closed:
            raise RuntimeError(
                "a session is already open on this backend; close it first"
            )
        session = self._open_session(**config)
        self._session = session
        return session

    @abstractmethod
    def _open_session(
        self,
        *,
        max_inflight: "int | str | None" = None,
        telemetry=None,
        batching=None,
    ) -> Session:
        """Build this executor's native :class:`Session`.

        ``telemetry`` (a :class:`repro.obs.Telemetry` or a journal path) is
        forwarded to ``Session.__init__``, which attaches it before any
        executor machinery starts — so warm-up events are captured too.
        ``batching`` (any :func:`repro.util.batching.normalize_batching`
        form) turns on transparent micro-batching on sessions that support
        it; ``max_inflight="auto"`` sizes the admission window from the
        calibrated batch size and live measurements via Little's law.
        """

    def _current_session(self) -> Session:
        """The open session, replacing a closed or poisoned one."""
        session = self._session
        if session is not None and session.broken and not session.closed:
            session.close()
        if session is None or session.closed or session.broken:
            session = self.open()
        return session

    # ------------------------------------------------------------- lifecycle
    def start(self, inputs: Iterable[Any]) -> int:
        """Begin a bounded run over the session path; returns the item count."""
        if self.closed:
            raise RuntimeError("backend is closed")
        if self._driver is not None and not self._driver.done():
            raise RuntimeError("backend already running; join() it first")
        session = self._current_session()
        self._driver = _BatchDriver(self, session, list(inputs))
        return self._driver.n_items

    def join(self) -> BackendResult:
        """Block until the current run completes and return its result."""
        if self._driver is None:
            raise RuntimeError("backend not started")
        driver = self._driver
        driver.wait()
        self._driver = None
        session = driver.session
        if driver.error is not None:
            # A poisoned session's executor state is unknown: reap it now so
            # the next start() opens a clean one on the warm backend.
            if not session.closed:
                session.close()
            raise driver.error
        assert driver.outputs is not None
        return BackendResult(
            backend=self.name,
            outputs=driver.outputs if session.produces_outputs else None,
            items=driver.items,
            elapsed=driver.elapsed,
            service_means=session.service_means(),
            replica_counts=self.replica_counts(),
        )

    def run(self, inputs: Iterable[Any]) -> BackendResult:
        """``start`` + ``join`` — a bounded stream through the session path."""
        self.start(inputs)
        return self.join()

    def running(self) -> bool:
        return self._driver is not None and not self._driver.done()

    def close(self) -> None:
        """Release warm resources; the backend may not be reused after."""
        self._closed = True
        if self._session is not None:
            self._session.close()

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- observation
    def snapshots(self) -> list[StageSnapshot]:
        """Windowed per-stage service/queue measurements (session-cumulative)."""
        if self._session is None:
            return []
        return self._session.snapshots()

    def items_completed(self) -> int:
        if self._session is None or self._session.instrumentation is None:
            return 0
        return self._session.instrumentation.items_completed

    def recent_throughput(self, horizon: float) -> float:
        """Sink completions/s over the trailing ``horizon`` (NaN = no data)."""
        if self._session is None or self._session.instrumentation is None:
            return math.nan
        return self._session.instrumentation.recent_throughput(
            self._session.now(), horizon
        )

    def resource_view(self, n_procs: int) -> ResourceView | None:
        """Measured view of the substrate as a virtual grid of ``n_procs``.

        Backends that can ground the planner's virtual grid in reality —
        host load, per-worker speeds, measured link costs — return a
        :class:`~repro.model.throughput.ResourceView` whose pids are exactly
        ``0..n_procs-1``; ``None`` (the default) keeps the runner's uniform
        unit-speed assumption.
        """
        return None

    # ----------------------------------------------------------------- shape
    def replica_counts(self) -> list[int]:
        return [1] * self.pipeline.n_stages

    def replica_limit(self, stage: int) -> int:
        """Largest replica count ``reconfigure`` can honour for ``stage``."""
        return 1

    def reconfigure(self, stage: int, n_replicas: int) -> None:
        """Set ``stage``'s degree of parallelism (live when supported)."""
        raise capability_error(self, "reconfigure()")


def validate_pipeline_shape(
    pipeline: PipelineSpec, replicas: "list[int] | None", runtime_name: str
) -> list[int]:
    """Validate a replica shape against the pipeline; returns the counts.

    Shared by the real executors so their rejection messages stay uniform:
    length mismatch, sub-1 counts, replicated stateful stages, and stages
    without callables all raise ``ValueError`` here.
    """
    n = pipeline.n_stages
    if replicas is None:
        replicas = [1] * n
    if len(replicas) != n:
        raise ValueError(f"replicas must list {n} counts, got {len(replicas)}")
    for i, r in enumerate(replicas):
        spec = pipeline.stage(i)
        if r < 1:
            raise ValueError(f"stage {i} replica count must be >= 1, got {r}")
        if r > 1 and not spec.replicable:
            raise ValueError(
                f"stage {i} ({spec.name!r}) is stateful and cannot be replicated"
            )
        if spec.fn is None:
            raise ValueError(
                f"stage {i} ({spec.name!r}) has no fn; the {runtime_name} "
                "executes real callables"
            )
    return list(replicas)


# --------------------------------------------------------------------- registry
_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register_backend(
    name: str, factory: Callable[..., Backend], *, overwrite: bool = False
) -> None:
    """Register ``factory(pipeline, **kwargs) -> Backend`` under ``name``."""
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    return sorted(_REGISTRY)


def make_backend(
    backend: str | Backend, pipeline: PipelineSpec | None = None, **kwargs
) -> Backend:
    """Resolve ``backend`` (a name or an instance) to a :class:`Backend`.

    Passing an instance returns it unchanged (kwargs must then be omitted —
    the instance is already configured).  When both an instance *and* a
    ``pipeline`` are given, the instance must run the same stage callables:
    silently executing a different pipeline than the caller reasons about
    is the one mistake this seam must not allow.
    """
    if isinstance(backend, Backend):
        if kwargs:
            raise ValueError(
                f"backend instance given; unexpected kwargs: {sorted(kwargs)}"
            )
        if pipeline is not None and [s.fn for s in backend.pipeline.stages] != [
            s.fn for s in pipeline.stages
        ]:
            raise ValueError(
                f"backend instance was built for pipeline "
                f"{backend.pipeline!s}, which does not run the given stages"
            )
        return backend
    try:
        factory = _REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    if pipeline is None:
        raise ValueError("a PipelineSpec is required to build a backend by name")
    return factory(pipeline, **kwargs)
