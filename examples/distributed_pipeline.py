#!/usr/bin/env python
"""Real distribution: a pipeline sharded over socket-connected workers.

Three worker processes are auto-spawned on localhost (in a real deployment
each runs on its own host via ``python -m repro.backend.distributed.worker
--connect host:port``), register with the coordinator advertising cores and
load, and host stage replicas.  One worker gets an injected link delay —
the grid's slow site.  The run shows:

1. ordered end-to-end results over TCP workers (the Pipeline1for1 contract),
2. measured per-stage service *and* per-link transfer times,
3. live adaptation: the runner replicates the bottleneck stage across
   workers, steering placement away from the slow link,
4. fault tolerance: a worker is killed mid-run; its in-flight items are
   re-dispatched and the result is still complete and ordered.

Run:  python examples/distributed_pipeline.py
"""

import time

from repro.backend import DistributedBackend, RuntimeAdaptiveRunner, local_config
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.util.tables import render_table


def prepare(x: int) -> int:
    return x + 1


def heavy(x: int) -> int:
    time.sleep(0.02)  # the bottleneck stage (think: the expensive kernel)
    return x * 2


def finish(x: int) -> int:
    return x - 3


PIPELINE = PipelineSpec(
    (
        StageSpec(name="prepare", work=0.001, fn=prepare),
        StageSpec(name="heavy", work=0.02, fn=heavy),
        StageSpec(name="finish", work=0.001, fn=finish),
    ),
    name="demo",
)


def main() -> None:
    n_items = 150
    print(f"pipeline: {PIPELINE}")
    print("spawning 3 localhost workers (worker 2 behind a 5 ms slow link)\n")
    backend = DistributedBackend(
        PIPELINE,
        spawn_workers=3,
        max_replicas=3,
        worker_link_delays=[0.0, 0.0, 0.005],
    )
    runner = RuntimeAdaptiveRunner(
        backend.pipeline,
        backend,
        config=local_config(interval=0.1, cooldown=0.2, min_improvement=1.05),
        rollback=False,
    )
    try:
        backend.warm()
        print(
            render_table(
                ["worker", "cores", "load", "eff speed"],
                [
                    [w["name"], w["cores"], f"{w['load']:.2f}", f"{w['speed']:.2f}"]
                    for w in backend.alive_workers()
                ],
                title="registered workers (load-derived speeds)",
            )
        )

        print("\nadaptive run over socket workers:")
        result = runner.run(range(n_items))
        assert result.outputs == [(x + 1) * 2 - 3 for x in range(n_items)]
        print(f"  items: {result.items}  elapsed: {result.elapsed:.2f}s  (ordered: yes)")
        for event in result.adaptation_events:
            print(f"  event: {event.kind} @ {event.time:.2f}s  {event.reason}")
        print(f"  final replicas per stage: {result.final_replicas}")
        placement = backend.replica_placement()
        print(f"  placement (stage -> worker id -> replicas): {placement}")
        links = {w["name"]: f"{w['link_s'] * 1e3:.2f} ms" for w in backend.alive_workers()}
        print(f"  measured one-way link estimates: {links}")

        print("\nkilling one worker mid-run (fault-tolerance demo):")
        backend.start(range(n_items))
        time.sleep(0.4)
        backend.worker_processes[0].kill()
        res = backend.join()
        assert res.outputs == [(x + 1) * 2 - 3 for x in range(n_items)]
        print(f"  survived: {res.items}/{n_items} items, still ordered")
        print(f"  live workers after the loss: {len(backend.alive_workers())}")
    finally:
        backend.close()
    print("\ndistributed backend: same Backend port, real links, real failures.")


if __name__ == "__main__":
    main()
