#!/usr/bin/env python
"""Farm conversion: replicating a stateless bottleneck stage.

A 5-stage pipeline where stage 2 is six times heavier than the rest.
Re-mapping alone cannot fix it (no processor is six times faster); the
pattern's answer is to convert the bottleneck stage into an embedded task
farm.  This example sweeps the replica count manually, then shows the
adaptive controller discovering the same answer by itself.

Run:  python examples/farm_conversion.py
"""

from repro import AdaptationConfig, AdaptivePipeline, Mapping, run_static, uniform_grid
from repro.workloads.synthetic import imbalanced_pipeline
from repro.util.tables import ascii_plot, render_table


WORKS = [0.05, 0.05, 0.3, 0.05, 0.05]


def main() -> None:
    n_items = 800
    pipeline = imbalanced_pipeline(WORKS)
    print(f"pipeline works: {WORKS} (stage 2 dominates)\n")

    # Manual sweep: replicas of stage 2 on processors 5, 6, 7...
    rows = []
    throughputs = []
    for replicas in (1, 2, 3, 4):
        # Replicas of stage 2 live on processor 2 plus fresh processors 5, 6...
        grid = uniform_grid(5 + replicas - 1)
        stage2 = tuple([2] + list(range(5, 5 + replicas - 1)))
        mapping = Mapping(((0,), (1,), stage2, (3,), (4,)))
        res = run_static(pipeline, grid, n_items, mapping=mapping)
        tp = res.steady_throughput()
        throughputs.append(tp)
        rows.append([replicas, str(mapping), f"{tp:.2f}", f"{res.makespan:.1f}"])
    print(
        render_table(
            ["replicas", "mapping", "throughput", "makespan(s)"],
            rows,
            title="manual replication sweep of the bottleneck stage",
        )
    )
    print()
    print(ascii_plot([1, 2, 3, 4], throughputs, label="throughput vs replicas", height=10))

    # Adaptive discovery: start un-replicated and let the controller decide.
    grid = uniform_grid(8)
    adaptive = AdaptivePipeline(
        pipeline,
        grid,
        config=AdaptationConfig(interval=3.0, cooldown=6.0, max_replicas=4),
        initial_mapping=Mapping.single([0, 1, 2, 3, 4]),
        seed=2,
    ).run(n_items)
    print("\nadaptive run (controller discovers the farm):")
    for ev in adaptive.adaptation_events:
        print(f"  {ev}")
    print(f"final mapping: {adaptive.final_mapping}")
    print(f"adaptive throughput: {adaptive.steady_throughput():.2f} items/s")


if __name__ == "__main__":
    main()
