#!/usr/bin/env python
"""Real execution: the image-processing pipeline on local threads.

The same :class:`PipelineSpec` used in grid simulations carries real numpy
callables, so it runs unchanged on the thread runtime.  numpy releases the
GIL, so replicating the heavy edge-detection stage gives genuine speedup on
a multicore host.  The adaptive thread pipeline then finds that replication
on its own between batches.

Run:  python examples/image_pipeline_local.py
"""

import time

from repro import AdaptiveThreadPipeline, ThreadPipeline
from repro.workloads.apps import image_pipeline, make_images
from repro.util.tables import render_table


def main() -> None:
    pipeline = image_pipeline()
    images = make_images(60, size=256)
    print(f"pipeline: {pipeline}")
    print(f"input: {len(images)} images of 256x256\n")

    rows = []
    for replicas in ([1, 1, 1, 1], [1, 2, 1, 1], [1, 3, 1, 1]):
        tp = ThreadPipeline(pipeline, replicas=replicas)
        t0 = time.perf_counter()
        out = tp.run(images)
        elapsed = time.perf_counter() - t0
        assert len(out) == len(images)
        stats = tp.last_stats
        rows.append(
            [
                str(replicas),
                f"{elapsed:.2f}",
                f"{len(images) / elapsed:.1f}",
                " ".join(f"{m:.3f}" for m in stats.service_means()),
            ]
        )
    print(
        render_table(
            ["replicas", "elapsed(s)", "imgs/s", "stage service means (s)"],
            rows,
            title="manual replication of the edge-detection stage (stage 1)",
        )
    )

    print("\nadaptive thread pipeline (decides replication between batches):")
    # Real measured stage costs are closer together than the simulated
    # weights, so accept modest imbalance before adding a worker.
    atp = AdaptiveThreadPipeline(pipeline, max_workers=3, imbalance_threshold=1.05)
    batches = [make_images(20, size=256, seed=s) for s in range(4)]
    atp.run_batches(batches)
    print(f"  replica history: {atp.adaptations}")
    print(f"  final replicas per stage: {atp.replicas}")
    print("\nnote: results depend on core count; the *shape* (stage 1 gets")
    print("the workers) is the point, not absolute speedups.")


if __name__ == "__main__":
    main()
