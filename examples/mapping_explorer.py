#!/usr/bin/env python
"""Mapping exploration: what the model recommends as conditions change.

Reproduces the classic grid-scheduling table shape: a 3-stage pipeline on
3 processors under seven (link latency, stage time) configurations; for each
configuration the model evaluates all 27 mappings and reports the best one
with its predicted throughput.  Slow links push consecutive stages together;
slow processors push work onto fast ones.

Run:  python examples/mapping_explorer.py
"""

from repro import GridSpec, SiteSpec
from repro.gridsim.network import Link
from repro.model.optimizer import exhaustive_best_mapping
from repro.model.throughput import ModelContext, StageCost, snapshot_view
from repro.util.tables import render_table


def build_grid(l01: float, l12: float, l02: float):
    """Three unit-speed processors with explicit pairwise latencies."""
    spec = GridSpec(
        sites=[SiteSpec(name="s", speeds=[1.0, 1.0, 1.0])],
        link_overrides=[
            (0, 1, Link(l01, 100e6)),
            (1, 2, Link(l12, 100e6)),
            (0, 2, Link(l02, 100e6)),
        ],
    )
    return spec.build()


def main() -> None:
    # (l01, l12, l02, t1, t2, t3) — latencies between processors and
    # per-stage service times; speeds are equal so slow stages model busy
    # processors via larger work.
    configs = [
        (1e-4, 1e-4, 1e-4, 0.1, 0.1, 0.1),
        (1e-4, 1e-4, 1e-4, 0.2, 0.2, 0.2),
        (1e-4, 1e-4, 1e-4, 0.1, 0.1, 1.0),
        (0.1, 0.1, 0.1, 0.1, 0.1, 1.0),
        (1.0, 1.0, 1.0, 0.1, 0.1, 1.0),
        (0.1, 1.0, 1.0, 0.1, 0.1, 0.1),
        (0.1, 1.0, 1.0, 1.0, 1.0, 0.01),
    ]
    rows = []
    for l01, l12, l02, t1, t2, t3 in configs:
        grid = build_grid(l01, l12, l02)
        # Stage works equal the per-stage times (unit-speed processors); a
        # slow third processor is modelled by scaling its stage work.
        ctx = ModelContext(
            stage_costs=(
                StageCost(work=t1, out_bytes=1.0),
                StageCost(work=t2, out_bytes=1.0),
                StageCost(work=t3, out_bytes=1.0),
            ),
            view=snapshot_view(grid.snapshot(0.0)),
            source_pid=0,
            sink_pid=0,
        )
        best = exhaustive_best_mapping(ctx)
        rows.append(
            [l01, l12, l02, t1, t2, t3, str(best.mapping), best.throughput]
        )
    print(
        render_table(
            ["l0-1", "l1-2", "l0-2", "t1", "t2", "t3", "best mapping", "throughput"],
            rows,
            title="model-selected mapping per configuration "
            "(3 stages, processors 0/1/2)",
        )
    )
    print(
        "\nreading: fast links + balanced stages -> spread out; slow links ->"
        "\nfuse consecutive stages; one slow stage -> keep it alone and"
        "\nco-locate the cheap ones."
    )


if __name__ == "__main__":
    main()
