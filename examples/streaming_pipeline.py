#!/usr/bin/env python
"""Streaming execution sessions: a resident pipeline serving live traffic.

The batch entry points hand the executor a finished list; a real service
never has one.  ``skel.api.open_pipeline`` instead returns a long-lived
:class:`~repro.backend.base.Session`: a **producer thread** submits items
as they "arrive" (backpressure via the bounded admission window) while the
main thread consumes ordered results *as items complete* — the first
result lands long before the stream is bounded.  A
:class:`~repro.backend.RuntimeAdaptiveRunner` control loop is attached to
the same live session and widens the bottleneck stage's worker pool while
items flow, then keeps its measurement window across the stream boundary
into a second, back-to-back stream on the same warm workers.

Run:  python examples/streaming_pipeline.py

Set ``REPRO_OBS_JOURNAL=/path/to/events.jsonl`` to journal the session's
structured event stream (see docs/observability.md); inspect it live with
``python -m repro.obs.top /path/to/events.jsonl``.
"""

import os
import threading
import time

from repro.backend import local_config
from repro.skel.api import open_pipeline

N_ITEMS = 120


def parse(x: int) -> int:
    return x + 1


def transform(x: int) -> int:
    time.sleep(0.01)  # the bottleneck stage: I/O or heavy compute
    return x * 2


def render(x: int) -> int:
    return x - 3


def produce(session, n: int, label: str) -> None:
    for i in range(n):
        session.submit(i)  # blocks only when the admission window is full
    print(f"  [{label}] producer: {n} items submitted")


def main() -> None:
    session = open_pipeline(
        [parse, transform, render],
        backend="threads",
        adaptive=local_config(interval=0.1, cooldown=0.2, settle_time=0.1),
        max_replicas=4,
        max_inflight=64,
        telemetry=os.environ.get("REPRO_OBS_JOURNAL"),  # optional JSONL journal
    )
    try:
        for stream in range(2):
            label = f"stream {stream}"
            t0 = time.perf_counter()
            producer = threading.Thread(
                target=produce, args=(session, N_ITEMS, label), daemon=True
            )
            producer.start()

            first_latency = None
            consumed = 0
            for value in session.results():
                if first_latency is None:
                    first_latency = time.perf_counter() - t0
                expected = consumed + 1
                assert value == expected * 2 - 3, (value, consumed)
                consumed += 1
                if consumed == N_ITEMS:
                    break
            producer.join()
            leftovers = session.drain()
            elapsed = time.perf_counter() - t0
            assert consumed + len(leftovers) == N_ITEMS
            print(
                f"  [{label}] {consumed} results consumed live in {elapsed:.2f}s; "
                f"first result after {first_latency * 1e3:.0f} ms; "
                f"replicas now {session.backend.replica_counts()}"
            )
        stats = session.stats()
        print(
            f"\nsession served {stats.streams_completed} streams, "
            f"{stats.items_total} items, on one warm worker fabric"
        )
        assert stats.streams_completed == 2
        assert stats.items_total == 2 * N_ITEMS
    finally:
        session.close()
    print("streaming session: submit while consuming, adapt while flowing.")


if __name__ == "__main__":
    main()
