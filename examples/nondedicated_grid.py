#!/usr/bin/env python
"""A pipeline on a genuinely non-dedicated, two-site grid.

Nodes suffer Markov on/off external load (a shared departmental cluster plus
a remote site behind a WAN link).  The adaptive pattern continuously re-maps
as interference comes and goes; the static mapping takes whatever the grid
gives it.

Run:  python examples/nondedicated_grid.py
"""

from repro import AdaptationConfig, AdaptivePipeline, Mapping, run_static
from repro.gridsim.spec import GridSpec, SiteSpec
from repro.workloads.scenarios import markov_load_factory
from repro.workloads.synthetic import imbalanced_pipeline
from repro.util.tables import render_table


def fresh_grid(seed: int):
    spec = GridSpec(
        sites=[
            SiteSpec(
                name="local",
                speeds=[1.0, 1.0, 1.0, 1.0],
                load_factory=markov_load_factory(
                    mean_idle=40.0, mean_busy=20.0, busy_availability=0.25
                ),
            ),
            SiteSpec(name="remote", speeds=[2.0, 2.0]),  # fast but far
        ],
        inter_latency=20e-3,
        inter_bandwidth=10e6,
        seed=seed,
    )
    return spec.build()


def main() -> None:
    n_items = 1500
    pipeline = imbalanced_pipeline(
        [0.08, 0.25, 0.08, 0.05], out_bytes=20_000.0, input_bytes=20_000.0
    )
    mapping = Mapping.single([0, 1, 2, 3])
    print(f"pipeline: {pipeline} (stage 1 dominates)")
    print("grid: 4 local nodes with Markov interference + 2 fast remote nodes\n")

    rows = []
    for seed in (1, 2, 3):
        static = run_static(pipeline, fresh_grid(seed), n_items, mapping=mapping, seed=seed)
        adaptive = AdaptivePipeline(
            pipeline,
            fresh_grid(seed),
            config=AdaptationConfig(interval=4.0, cooldown=8.0),
            initial_mapping=mapping,
            seed=seed,
        ).run(n_items)
        rows.append(
            [
                seed,
                f"{static.makespan:.1f}",
                f"{adaptive.makespan:.1f}",
                f"x{static.makespan / adaptive.makespan:.2f}",
                len([e for e in adaptive.adaptation_events if e.kind != 'rollback']),
                str(adaptive.final_mapping),
            ]
        )
    print(
        render_table(
            ["seed", "static(s)", "adaptive(s)", "speedup", "actions", "final mapping"],
            rows,
            title=f"{n_items} items, three independent interference histories",
        )
    )
    print("\nadaptation timeline of the last run:")
    for ev in rows and adaptive.adaptation_events:
        print(f"  {ev}")


if __name__ == "__main__":
    main()
