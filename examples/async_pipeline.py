#!/usr/bin/env python
"""Real execution: an I/O-bound service pipeline on the asyncio backend.

The fetch→parse→store pipeline simulates a production service whose costs
are *waits* — a network fetch, a storage write — with the middle ``parse``
stage a plain callable (the backend offloads it to a thread so it cannot
stall the event loop).  An injected slow fetch (high simulated latency)
bottlenecks the pipeline; :class:`RuntimeAdaptiveRunner` observes the
wall-clock service times, asks the model-driven policy where the bottleneck
is, and widens that stage's coroutine pool live — ``reconfigure`` just
raises a semaphore limit, so adaptation is O(1) and touches no in-flight
request.

Run:  python examples/async_pipeline.py
"""

from repro.backend import AsyncioBackend, RuntimeAdaptiveRunner, local_config
from repro.util.tables import render_table
from repro.workloads.apps import fetch_pipeline, make_requests

LATENCY = 0.05  # injected fetch latency: the bottleneck to adapt away


def main() -> None:
    pipeline = fetch_pipeline(latency=LATENCY, asynchronous=True)
    print(f"pipeline: {pipeline}")
    print(f"injected fetch latency: {LATENCY}s per request (simulated I/O)\n")

    rows = []
    for replicas in ([1, 1, 1], [4, 1, 2], [16, 1, 8]):
        with AsyncioBackend(pipeline, replicas=replicas, max_replicas=16) as b:
            res = b.run(make_requests(48))
        assert res.outputs is not None and len(res.outputs) == 48
        rows.append(
            [
                str(replicas),
                f"{res.elapsed:.2f}",
                f"{res.throughput:.1f}",
                " ".join(f"{m:.3f}" for m in res.service_means),
            ]
        )
    print(
        render_table(
            ["concurrency limits", "elapsed(s)", "req/s", "stage service means (s)"],
            rows,
            title="manual concurrency limits (semaphore = replica knob)",
        )
    )

    print("\nlive adaptation (policy raises semaphore limits mid-run):")
    backend = AsyncioBackend(pipeline, max_replicas=8)
    runner = RuntimeAdaptiveRunner(
        backend.pipeline,
        backend,
        config=local_config(interval=0.1, cooldown=0.2, min_improvement=1.05),
        rollback=False,
    )
    try:
        result = runner.run(make_requests(160))
    finally:
        backend.close()
    assert result.outputs is not None and len(result.outputs) == 160
    print(f"  items: {result.items}  elapsed: {result.elapsed:.2f}s")
    for event in result.adaptation_events:
        print(f"  event: {event}")
    print(f"  replica history: {result.replica_history}")
    print(f"  final concurrency limits per stage: {result.final_replicas}")
    print("\nnote: every 'replica' here is a coroutine slot, not a thread —")
    print("the whole pipeline runs on one event-loop thread plus a small")
    print("offload pool for the plain-callable parse stage.")


if __name__ == "__main__":
    main()
