#!/usr/bin/env python
"""Quickstart: an adaptive pipeline surviving a grid perturbation.

A 3-stage pipeline runs on a 4-node grid.  At t=20 s an external job lands
on the node hosting stage 1, stealing 90 % of its CPU.  The static mapping
collapses; the adaptive pattern notices (monitoring + instrumentation),
re-maps, and recovers.

Run:  python examples/quickstart.py
"""

from repro import (
    AdaptationConfig,
    AdaptivePipeline,
    Mapping,
    balanced_pipeline,
    run_static,
    uniform_grid,
)
from repro.util.tables import ascii_plot, render_series


def fresh_grid():
    grid = uniform_grid(4)
    grid.perturb(1, [(20.0, 0.1)])  # node 1 drops to 10 % at t=20 s
    return grid


def main() -> None:
    n_items = 1200
    pipeline = balanced_pipeline(3, work=0.1)
    mapping = Mapping.single([0, 1, 2])

    print(f"pipeline: {pipeline}")
    print(f"initial mapping: {mapping}  (stage i on processor i)")
    print("perturbation: node 1 drops to 10% availability at t=20 s\n")

    static = run_static(pipeline, fresh_grid(), n_items, mapping=mapping)
    adaptive = AdaptivePipeline(
        pipeline,
        fresh_grid(),
        config=AdaptationConfig(interval=3.0, cooldown=5.0),
        initial_mapping=mapping,
        seed=1,
    ).run(n_items)

    print(f"static   makespan: {static.makespan:9.1f} s   "
          f"throughput: {static.throughput():5.2f} items/s")
    print(f"adaptive makespan: {adaptive.makespan:9.1f} s   "
          f"throughput: {adaptive.throughput():5.2f} items/s")
    print(f"adaptive advantage: x{static.makespan / adaptive.makespan:.2f}\n")

    print("adaptation events:")
    for ev in adaptive.adaptation_events:
        print(f"  {ev}")

    dt = 5.0
    ts, s_series = static.throughput_series(dt)
    ta, a_series = adaptive.throughput_series(dt)
    horizon = min(len(ts), len(ta), int(90 / dt))
    print()
    print(
        render_series(
            {"static": s_series[:horizon], "adaptive": a_series[:horizon]},
            ts[:horizon],
            x_label="t(s)",
            title=f"windowed throughput (items/s, dt={dt:.0f}s)",
        )
    )
    print()
    print(ascii_plot(ta, a_series, label="adaptive throughput over time"))


if __name__ == "__main__":
    main()
