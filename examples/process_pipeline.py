#!/usr/bin/env python
"""Real execution: the image-processing pipeline on warm process pools.

The mirror of ``image_pipeline_local.py`` for the process backend: the same
:class:`PipelineSpec` runs on pre-forked worker processes (one warm pool
per stage), so even pure-Python CPU-bound stages escape the GIL.  A
:class:`RuntimeAdaptiveRunner` then drives the paper's observe→decide→act
loop against wall-clock measurements: it watches per-stage service times,
asks the model-driven :class:`AdaptationPolicy` where the bottleneck is,
and activates warm workers live while images flow through.

Run:  python examples/process_pipeline.py
"""

from repro.backend import ProcessPoolBackend, RuntimeAdaptiveRunner, local_config
from repro.util.tables import render_table
from repro.workloads.apps import image_pipeline, make_images


def main() -> None:
    pipeline = image_pipeline()
    images = make_images(60, size=256)
    print(f"pipeline: {pipeline}")
    print(f"input: {len(images)} images of 256x256 on the process backend\n")

    rows = []
    for replicas in ([1, 1, 1, 1], [1, 2, 1, 1]):
        with ProcessPoolBackend(pipeline, replicas=replicas, max_replicas=3) as b:
            res = b.run(images)
        assert res.outputs is not None and len(res.outputs) == len(images)
        rows.append(
            [
                str(replicas),
                f"{res.elapsed:.2f}",
                f"{res.throughput:.1f}",
                " ".join(f"{m:.3f}" for m in res.service_means),
            ]
        )
    print(
        render_table(
            ["replicas", "elapsed(s)", "imgs/s", "stage service means (s)"],
            rows,
            title="manual replication on warm process pools",
        )
    )

    print("\nlive adaptation (policy activates warm workers mid-run):")
    backend = ProcessPoolBackend(pipeline, max_replicas=3)
    runner = RuntimeAdaptiveRunner(
        backend.pipeline,
        backend,
        # Real stage costs sit closer together than the simulated weights,
        # so accept modest predicted gains and decide at a fast cadence.
        config=local_config(interval=0.1, cooldown=0.2, min_improvement=1.05),
        rollback=False,
    )
    try:
        result = runner.run(make_images(120, size=256, seed=1))
    finally:
        backend.close()
    assert result.outputs is not None and len(result.outputs) == 120
    print(f"  items: {result.items}  elapsed: {result.elapsed:.2f}s")
    for event in result.adaptation_events:
        print(f"  event: {event}")
    print(f"  replica history: {result.replica_history}")
    print(f"  final replicas per stage: {result.final_replicas}")
    print("\nnote: results depend on core count; the *shape* (the heavy stage")
    print("gets the warm workers) is the point, not absolute speedups.")


if __name__ == "__main__":
    main()
