"""Setup shim for environments without PEP 517 build isolation.

All metadata lives in pyproject.toml; this file only enables legacy
``pip install -e .`` where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
