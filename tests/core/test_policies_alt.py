"""Tests for alternative policies and the oracle view (ablation plumbing)."""

import math

import pytest

from repro.core.adaptive import AdaptivePipeline
from repro.core.pipeline import PipelineSpec
from repro.core.policies_alt import ReactivePolicy
from repro.core.policy import AdaptationConfig
from repro.core.stage import StageSpec
from repro.gridsim.spec import uniform_grid
from repro.model.mapping import Mapping
from repro.model.throughput import snapshot_view
from repro.monitor.instrument import StageSnapshot
from repro.workloads.scenarios import load_step
from repro.workloads.synthetic import balanced_pipeline


def snap(i, items=10, service=0.1, work=0.1):
    return StageSnapshot(
        stage_index=i,
        items_processed=items,
        service_time=service,
        service_cv=0.0,
        transfer_time=0.0,
        work_estimate=work,
        queue_length=0.0,
    )


def make_reactive(**kw):
    pipe = PipelineSpec(tuple(StageSpec(name=f"s{i}", work=0.1) for i in range(3)))
    return ReactivePolicy(pipe, AdaptationConfig(), **kw)


class TestReactivePolicy:
    def test_invalid_trigger(self):
        with pytest.raises(ValueError):
            make_reactive(trigger=1.0)

    def test_quiet_below_trigger(self):
        policy = make_reactive(trigger=1.5)
        grid = uniform_grid(4)
        view = snapshot_view(grid.snapshot(0.0))
        # Establish a baseline, then present mild degradation (x1.2).
        for service in (0.1, 0.12):
            d = policy.decide(
                now=100.0 + service,
                current=Mapping.single([0, 1, 2]),
                snapshots=[snap(0), snap(1, service=service), snap(2)],
                view=view,
                source_pid=0,
                sink_pid=0,
                remaining_items=1000,
            )
        assert not d.acts
        assert d.reason == "below-trigger"

    def test_fires_on_degradation(self):
        policy = make_reactive(trigger=1.5)
        grid = uniform_grid(4)
        view = snapshot_view(grid.snapshot(0.0))
        # Baseline pass...
        policy.decide(
            now=50.0,
            current=Mapping.single([0, 1, 2]),
            snapshots=[snap(0), snap(1), snap(2)],
            view=view,
            source_pid=0,
            sink_pid=0,
            remaining_items=1000,
        )
        # ...then stage 1's service triples.
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 1, 2]),
            snapshots=[snap(0), snap(1, service=0.3), snap(2)],
            view=view,
            source_pid=0,
            sink_pid=0,
            remaining_items=1000,
        )
        assert d.acts
        assert d.new_mapping.replicas(1) == (3,)  # moved to the idle proc
        assert math.isnan(d.predicted_gain)

    def test_guards_mirror_model_policy(self):
        policy = make_reactive()
        grid = uniform_grid(2)
        view = snapshot_view(grid.snapshot(0.0))
        d = policy.decide(
            now=1.0,
            current=Mapping.single([0, 1, 0]),
            snapshots=[snap(0), snap(1), snap(2)],
            view=view,
            source_pid=0,
            sink_pid=0,
            remaining_items=100,
            last_action_time=0.0,
        )
        assert d.reason == "cooldown"
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 1, 0]),
            snapshots=[snap(0, items=1), snap(1), snap(2)],
            view=view,
            source_pid=0,
            sink_pid=0,
            remaining_items=100,
        )
        assert d.reason == "insufficient-samples"


class TestPolicyInjection:
    def test_reactive_policy_recovers_from_perturbation(self):
        grid = uniform_grid(4)
        load_step(1, at=15.0, availability=0.1).apply(grid)
        pipe = balanced_pipeline(3, work=0.1)
        runner = AdaptivePipeline(
            pipe,
            grid,
            policy=ReactivePolicy(pipe, AdaptationConfig(interval=3.0, cooldown=5.0)),
            initial_mapping=Mapping.single([0, 1, 2]),
            seed=6,
        )
        res = runner.run(800)
        assert res.completed_all
        assert res.in_order()
        assert any(e.kind != "rollback" for e in res.adaptation_events)
        # The reactive move must leave the dead processor.
        assert 1 not in res.final_mapping.processors_used()

    def test_oracle_view_source(self):
        grid = uniform_grid(4)
        load_step(1, at=15.0, availability=0.1).apply(grid)
        pipe = balanced_pipeline(3, work=0.1)
        runner = AdaptivePipeline(
            pipe,
            grid,
            config=AdaptationConfig(interval=3.0, cooldown=5.0),
            view_source="oracle",
            initial_mapping=Mapping.single([0, 1, 2]),
            seed=6,
        )
        res = runner.run(800)
        assert res.completed_all
        assert any(e.kind != "rollback" for e in res.adaptation_events)
        assert 1 not in res.final_mapping.processors_used()

    def test_invalid_view_source(self):
        pipe = balanced_pipeline(2)
        with pytest.raises(ValueError, match="view_source"):
            AdaptivePipeline(pipe, uniform_grid(2), view_source="psychic")

    def test_policy_overrides_config(self):
        pipe = balanced_pipeline(2)
        policy = ReactivePolicy(pipe, AdaptationConfig(interval=7.0))
        runner = AdaptivePipeline(pipe, uniform_grid(2), policy=policy)
        assert runner.config.interval == 7.0
        assert runner.policy is policy
