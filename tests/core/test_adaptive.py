"""Tests for the full adaptive runner (observe-decide-act end to end)."""

import pytest

from repro.core.adaptive import AdaptivePipeline, run_static
from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig
from repro.core.stage import StageSpec
from repro.gridsim.spec import heterogeneous_grid, uniform_grid
from repro.model.mapping import Mapping


def balanced(n=3, work=0.1):
    return PipelineSpec(tuple(StageSpec(name=f"s{i}", work=work) for i in range(n)))


class TestStaticRunner:
    def test_completes_and_orders(self):
        res = run_static(
            balanced(), uniform_grid(3), 100, mapping=Mapping.single([0, 1, 2])
        )
        assert res.completed_all
        assert res.in_order()
        assert res.adaptation_events == []
        assert res.final_mapping == Mapping.single([0, 1, 2])

    def test_default_mapping_reasonable(self):
        # Without an explicit mapping the greedy default should spread a
        # balanced pipeline over distinct processors.
        res = run_static(balanced(), uniform_grid(3), 50)
        assert len(res.final_mapping.processors_used()) == 3

    def test_throughput_metrics(self):
        res = run_static(
            balanced(), uniform_grid(3), 300, mapping=Mapping.single([0, 1, 2])
        )
        assert res.steady_throughput() == pytest.approx(10.0, rel=0.05)
        assert res.throughput() <= res.steady_throughput() + 0.2
        times, series = res.throughput_series(dt=5.0)
        assert len(times) == len(series)
        assert max(series) <= 11.0

    def test_until_cuts_run_short(self):
        res = run_static(
            balanced(),
            uniform_grid(3),
            10_000,
            mapping=Mapping.single([0, 1, 2]),
            until=5.0,
        )
        assert not res.completed_all
        assert res.end_time == 5.0
        assert res.items_completed < 100


class TestAdaptiveRunner:
    def test_stable_grid_no_adaptations(self):
        # On a dedicated balanced grid with the optimal mapping there is
        # nothing to improve: the controller must keep its hands still.
        grid = uniform_grid(3)
        runner = AdaptivePipeline(
            balanced(),
            grid,
            config=AdaptationConfig(interval=2.0, min_improvement=1.15),
            initial_mapping=Mapping.single([0, 1, 2]),
            seed=3,
        )
        res = runner.run(400)
        assert res.completed_all
        remaps = [e for e in res.adaptation_events if e.kind != "rollback"]
        assert remaps == []

    def test_recovers_from_perturbation(self):
        grid = uniform_grid(4)
        grid.perturb(1, [(20.0, 0.1)])
        runner = AdaptivePipeline(
            balanced(),
            grid,
            config=AdaptationConfig(interval=3.0, cooldown=5.0),
            initial_mapping=Mapping.single([0, 1, 2]),
            seed=1,
        )
        res = runner.run(1500)
        assert res.completed_all
        assert res.in_order()
        assert any(e.kind in ("remap", "replicate") for e in res.adaptation_events)
        # Post-adaptation mapping avoids the dead processor.
        assert 1 not in res.final_mapping.processors_used()

    def test_beats_static_under_perturbation(self):
        def fresh_grid():
            g = uniform_grid(4)
            g.perturb(1, [(20.0, 0.1)])
            return g

        adaptive = AdaptivePipeline(
            balanced(),
            fresh_grid(),
            config=AdaptationConfig(interval=3.0, cooldown=5.0),
            initial_mapping=Mapping.single([0, 1, 2]),
            seed=1,
        ).run(1000)
        static = run_static(
            balanced(), fresh_grid(), 1000, mapping=Mapping.single([0, 1, 2])
        )
        assert adaptive.completed_all and static.completed_all
        assert adaptive.makespan < static.makespan / 2.0

    def test_fixes_bad_initial_mapping(self):
        grid = heterogeneous_grid([1.0, 1.0, 1.0, 4.0])
        bad = Mapping.single([0, 0, 0])
        runner = AdaptivePipeline(
            balanced(),
            grid,
            config=AdaptationConfig(interval=2.0, cooldown=4.0),
            initial_mapping=bad,
            seed=5,
        )
        res = runner.run(800)
        assert res.completed_all
        assert res.in_order()
        # The winning mapping must involve the 4x processor (fusing all three
        # light stages onto it beats spreading: 0.1*3/4 = 0.075 s/item).
        assert 3 in res.final_mapping.processors_used()
        static = run_static(balanced(), heterogeneous_grid([1.0, 1.0, 1.0, 4.0]), 800, mapping=bad)
        assert res.makespan < static.makespan

    def test_adaptation_event_fields(self):
        grid = uniform_grid(4)
        grid.perturb(1, [(10.0, 0.1)])
        runner = AdaptivePipeline(
            balanced(),
            grid,
            config=AdaptationConfig(interval=3.0, cooldown=5.0),
            initial_mapping=Mapping.single([0, 1, 2]),
            seed=1,
        )
        res = runner.run(800)
        ev = next(e for e in res.adaptation_events if e.kind != "rollback")
        assert ev.time > 10.0
        assert ev.predicted_gain > 1.0
        assert ev.mapping_before != ev.mapping_after
        assert "->" in str(ev)

    def test_mapping_history_tracks_changes(self):
        grid = uniform_grid(4)
        grid.perturb(2, [(15.0, 0.05)])
        runner = AdaptivePipeline(
            balanced(),
            grid,
            config=AdaptationConfig(interval=3.0, cooldown=6.0),
            initial_mapping=Mapping.single([0, 1, 2]),
            seed=2,
        )
        res = runner.run(1000)
        assert res.mapping_history[0][1] == Mapping.single([0, 1, 2])
        assert len(res.mapping_history) >= 2
        times = [t for t, _ in res.mapping_history]
        assert times == sorted(times)

    def test_replication_disabled_never_replicates(self):
        grid = uniform_grid(6)
        pipe = balanced(3).with_stage(1, StageSpec(name="heavy", work=0.7))
        runner = AdaptivePipeline(
            pipe,
            grid,
            config=AdaptationConfig(
                interval=2.0, cooldown=4.0, enable_replication=False
            ),
            initial_mapping=Mapping.single([0, 1, 2]),
            seed=4,
        )
        res = runner.run(400)
        assert res.completed_all
        for _, m in res.mapping_history:
            assert not m.is_replicated()

    def test_replication_enabled_farms_bottleneck(self):
        grid = uniform_grid(6)
        pipe = balanced(3).with_stage(1, StageSpec(name="heavy", work=0.8))
        runner = AdaptivePipeline(
            pipe,
            grid,
            config=AdaptationConfig(interval=2.0, cooldown=4.0),
            initial_mapping=Mapping.single([0, 1, 2]),
            seed=4,
        )
        res = runner.run(600)
        assert res.completed_all
        assert res.in_order()
        assert any(len(m.replicas(1)) > 1 for _, m in res.mapping_history)
        # And it pays off against the static run.
        static = run_static(pipe, uniform_grid(6), 600, mapping=Mapping.single([0, 1, 2]))
        assert res.makespan < static.makespan

    def test_seed_reproducibility(self):
        def once():
            grid = uniform_grid(4)
            grid.perturb(1, [(10.0, 0.2)])
            runner = AdaptivePipeline(
                balanced(),
                grid,
                config=AdaptationConfig(interval=3.0, cooldown=5.0),
                initial_mapping=Mapping.single([0, 1, 2]),
                seed=7,
            )
            return runner.run(500)

        a, b = once(), once()
        assert a.makespan == b.makespan
        assert [str(e) for e in a.adaptation_events] == [
            str(e) for e in b.adaptation_events
        ]
