"""Tests for stage definitions."""

import numpy as np
import pytest

from repro.core.stage import FixedWork, StageSpec


class TestFixedWork:
    def test_mean_and_sample_agree(self):
        w = FixedWork(0.7)
        rng = np.random.default_rng(0)
        assert w.mean == 0.7
        assert w.sample(rng) == 0.7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedWork(-0.1)


class TestStageSpec:
    def test_float_work_coerced(self):
        s = StageSpec(name="a", work=0.5)
        assert isinstance(s.work, FixedWork)
        assert s.work.mean == 0.5

    def test_invalid_work_type(self):
        with pytest.raises(TypeError):
            StageSpec(name="a", work="lots")  # type: ignore[arg-type]

    def test_cost_uses_spec_mean_by_default(self):
        s = StageSpec(name="a", work=0.5, out_bytes=100.0, state_bytes=7.0)
        c = s.cost()
        assert c.work == 0.5
        assert c.out_bytes == 100.0
        assert c.state_bytes == 7.0
        assert c.replicable

    def test_cost_override_with_measured_work(self):
        s = StageSpec(name="a", work=0.5)
        assert s.cost(measured_work=1.25).work == 1.25

    def test_stateful_flag_propagates(self):
        s = StageSpec(name="a", work=0.1, replicable=False)
        assert not s.cost().replicable

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(name="a", work=0.1, out_bytes=-1.0)

    def test_fn_optional(self):
        s = StageSpec(name="a", work=0.1, fn=lambda x: x + 1)
        assert s.fn is not None
        assert s.fn(1) == 2
