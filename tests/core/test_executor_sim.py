"""Tests for the simulated pipeline executor (static behaviour)."""

import pytest

from repro.core.executor_sim import SimPipelineEngine
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.gridsim.engine import Simulator
from repro.gridsim.spec import heterogeneous_grid, two_site_grid, uniform_grid
from repro.model.mapping import Mapping


def run_engine(grid, pipe, mapping, n_items=50, **kw):
    sim = Simulator()
    eng = SimPipelineEngine(sim, grid, pipe, mapping, n_items=n_items, **kw)
    sim.run()
    return eng, sim


def balanced(n=3, work=0.1):
    return PipelineSpec(tuple(StageSpec(name=f"s{i}", work=work) for i in range(n)))


class TestBasicExecution:
    def test_all_items_complete_in_order(self):
        eng, _ = run_engine(uniform_grid(3), balanced(), Mapping.single([0, 1, 2]))
        assert eng.items_completed == 50
        assert eng.output_seqs() == list(range(50))

    def test_throughput_matches_model_balanced(self):
        eng, sim = run_engine(
            uniform_grid(3), balanced(), Mapping.single([0, 1, 2]), n_items=300
        )
        # Bottleneck service 0.1 s -> steady throughput 10/s; allow fill.
        span = eng.completion_times()[-1] - eng.completion_times()[50]
        rate = (300 - 51) / span
        assert rate == pytest.approx(10.0, rel=0.05)

    def test_colocated_stages_share_cpu(self):
        eng, _ = run_engine(
            uniform_grid(1), balanced(3), Mapping.single([0, 0, 0]), n_items=200
        )
        span = eng.completion_times()[-1] - eng.completion_times()[50]
        rate = (200 - 51) / span
        # 3 stages x 0.1 s on one CPU -> 3.33 items/s.
        assert rate == pytest.approx(10.0 / 3.0, rel=0.05)

    def test_done_event_fires(self):
        sim = Simulator()
        eng = SimPipelineEngine(
            sim, uniform_grid(2), balanced(2), Mapping.single([0, 1]), n_items=10
        )
        sim.run()
        assert eng.done.triggered
        assert eng.done.value == 10

    def test_faster_processor_shortens_run(self):
        pipe = balanced(1, work=1.0)
        slow, _ = run_engine(
            heterogeneous_grid([1.0, 4.0]), pipe, Mapping.single([0]), n_items=20
        )
        fast, _ = run_engine(
            heterogeneous_grid([1.0, 4.0]), pipe, Mapping.single([1]), n_items=20
        )
        assert fast.completion_times()[-1] == pytest.approx(
            slow.completion_times()[-1] / 4.0, rel=0.05
        )

    def test_latencies_positive_and_reasonable(self):
        eng, _ = run_engine(uniform_grid(3), balanced(), Mapping.single([0, 1, 2]))
        lats = eng.latencies()
        assert all(lat > 0 for lat in lats)
        # An unqueued item takes ~0.3 s; queueing adds more.
        assert min(lats) == pytest.approx(0.3, rel=0.1)

    def test_arrival_period_throttles_source(self):
        eng, _ = run_engine(
            uniform_grid(3),
            balanced(),
            Mapping.single([0, 1, 2]),
            n_items=20,
            arrival_period=1.0,
        )
        # Open-loop at 1 item/s: completions roughly 1 s apart.
        ct = eng.completion_times()
        gaps = [b - a for a, b in zip(ct, ct[1:])]
        assert min(gaps) > 0.9

    def test_validation_errors(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="stages"):
            SimPipelineEngine(
                sim, uniform_grid(2), balanced(3), Mapping.single([0, 1]), n_items=5
            )
        with pytest.raises(KeyError, match="unknown processor"):
            SimPipelineEngine(
                sim, uniform_grid(2), balanced(2), Mapping.single([0, 7]), n_items=5
            )
        with pytest.raises(ValueError):
            SimPipelineEngine(
                sim, uniform_grid(2), balanced(2), Mapping.single([0, 1]), n_items=0
            )


class TestCommunicationCosts:
    def test_wan_transfer_slows_pipeline(self):
        pipe = PipelineSpec(
            (
                StageSpec(name="a", work=0.01, out_bytes=1e6),
                StageSpec(name="b", work=0.01),
            )
        )
        local = two_site_grid([1.0, 1.0], [1.0], wan_bandwidth=1e6)
        eng_local, _ = run_engine(local, pipe, Mapping.single([0, 1]), n_items=20)
        remote = two_site_grid([1.0, 1.0], [1.0], wan_bandwidth=1e6)
        eng_remote, _ = run_engine(remote, pipe, Mapping.single([0, 2]), n_items=20)
        # Crossing the WAN costs ~1 s per item vs ~0.01 s on the LAN.
        assert eng_remote.completion_times()[-1] > 5 * eng_local.completion_times()[-1]

    def test_sink_transfer_charged(self):
        pipe = PipelineSpec((StageSpec(name="a", work=0.01, out_bytes=2e6),))
        grid = two_site_grid([1.0], [1.0], wan_bandwidth=1e6, wan_latency=0.0)
        # Stage on remote proc 1, sink on proc 0: 2 s per item at the sink.
        eng, _ = run_engine(grid, pipe, Mapping.single([1]), n_items=10, sink_pid=0)
        span = eng.completion_times()[-1] - eng.completion_times()[0]
        assert span / 9 == pytest.approx(2.0, rel=0.05)


class TestReplication:
    def test_replicated_stage_doubles_throughput(self):
        pipe = balanced(1, work=0.5)
        single, _ = run_engine(uniform_grid(2), pipe, Mapping(((0,),)), n_items=100)
        double, _ = run_engine(uniform_grid(2), pipe, Mapping(((0, 1),)), n_items=100)
        assert single.completion_times()[-1] / double.completion_times()[-1] == pytest.approx(
            2.0, rel=0.1
        )

    def test_replicated_output_still_in_order(self):
        # Stochastic-ish ordering pressure: replicas on very different speeds.
        pipe = balanced(1, work=0.5)
        grid = heterogeneous_grid([1.0, 10.0])
        eng, _ = run_engine(grid, pipe, Mapping(((0, 1),)), n_items=80)
        assert eng.output_seqs() == list(range(80))

    def test_three_stage_with_middle_replicated(self):
        pipe = balanced(3, work=0.1)
        pipe = pipe.with_stage(1, StageSpec(name="mid", work=0.4))
        grid = uniform_grid(5)
        m = Mapping(((0,), (1, 3, 4), (2,)))
        eng, _ = run_engine(grid, pipe, m, n_items=120)
        assert eng.items_completed == 120
        assert eng.output_seqs() == list(range(120))
        # Bottleneck becomes ~0.4/3 = 0.133 s -> beat the 0.4 s singleton.
        span = eng.completion_times()[-1] - eng.completion_times()[30]
        rate = (120 - 31) / span
        assert rate > 1.0 / 0.2


class TestInstrumentation:
    def test_service_times_recorded(self):
        eng, _ = run_engine(uniform_grid(3), balanced(), Mapping.single([0, 1, 2]))
        snaps = eng.instrumentation.snapshots()
        assert all(s.items_processed == 50 for s in snaps)
        assert snaps[0].service_time == pytest.approx(0.1, rel=0.01)

    def test_work_estimate_recovers_spec_work(self):
        grid = heterogeneous_grid([2.0, 1.0, 1.0])
        eng, _ = run_engine(grid, balanced(), Mapping.single([0, 1, 2]))
        snaps = eng.instrumentation.snapshots()
        # Stage 0 on a 2x processor: service 0.05 s but work estimate 0.1.
        assert snaps[0].service_time == pytest.approx(0.05, rel=0.01)
        assert snaps[0].work_estimate == pytest.approx(0.1, rel=0.01)
