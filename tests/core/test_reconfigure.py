"""Tests for live reconfiguration: item conservation, ordering, improvement."""

import pytest

from repro.core.executor_sim import SimPipelineEngine
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.gridsim.engine import Simulator
from repro.gridsim.spec import uniform_grid
from repro.model.mapping import Mapping


def balanced(n=3, work=0.1):
    return PipelineSpec(tuple(StageSpec(name=f"s{i}", work=work) for i in range(n)))


class TestReconfigureCorrectness:
    def test_remap_mid_run_loses_nothing(self):
        sim = Simulator()
        grid = uniform_grid(4)
        eng = SimPipelineEngine(
            sim, grid, balanced(), Mapping.single([0, 1, 2]), n_items=200
        )
        sim.schedule(5.0, eng.reconfigure, Mapping.single([3, 1, 2]), 0.5)
        sim.run()
        assert eng.items_completed == 200
        assert eng.output_seqs() == list(range(200))

    def test_multiple_remaps(self):
        sim = Simulator()
        grid = uniform_grid(4)
        eng = SimPipelineEngine(
            sim, grid, balanced(), Mapping.single([0, 1, 2]), n_items=300
        )
        sim.schedule(3.0, eng.reconfigure, Mapping.single([3, 1, 2]), 0.2)
        sim.schedule(9.0, eng.reconfigure, Mapping.single([3, 0, 2]), 0.2)
        sim.schedule(15.0, eng.reconfigure, Mapping.single([0, 1, 2]), 0.2)
        sim.run()
        assert eng.items_completed == 300
        assert eng.output_seqs() == list(range(300))
        assert len(eng.mapping_history) == 4

    def test_replication_added_mid_run(self):
        sim = Simulator()
        grid = uniform_grid(4)
        pipe = balanced(3).with_stage(1, StageSpec(name="mid", work=0.5))
        eng = SimPipelineEngine(
            sim, grid, pipe, Mapping.single([0, 1, 2]), n_items=200
        )
        sim.schedule(10.0, eng.reconfigure, Mapping(((0,), (1, 3), (2,))), 0.5)
        sim.run()
        assert eng.items_completed == 200
        assert eng.output_seqs() == list(range(200))

    def test_replication_removed_mid_run(self):
        sim = Simulator()
        grid = uniform_grid(4)
        pipe = balanced(3).with_stage(1, StageSpec(name="mid", work=0.5))
        eng = SimPipelineEngine(
            sim, grid, pipe, Mapping(((0,), (1, 3), (2,))), n_items=200
        )
        sim.schedule(10.0, eng.reconfigure, Mapping.single([0, 1, 2]), 0.5)
        sim.run()
        assert eng.items_completed == 200
        assert eng.output_seqs() == list(range(200))

    def test_remap_to_same_mapping_is_noop(self):
        sim = Simulator()
        grid = uniform_grid(3)
        m = Mapping.single([0, 1, 2])
        eng = SimPipelineEngine(sim, grid, balanced(), m, n_items=50)
        sim.schedule(2.0, eng.reconfigure, m, 1.0)
        sim.run()
        assert eng.items_completed == 50
        # History records the call even though nothing changed.
        changed_counts = [len(h) for h in []]  # no stage processes disturbed
        assert eng.output_seqs() == list(range(50))

    def test_reconfigure_near_end_of_run(self):
        sim = Simulator()
        grid = uniform_grid(3)
        eng = SimPipelineEngine(
            sim, grid, balanced(), Mapping.single([0, 1, 2]), n_items=30
        )
        # Fire a remap when the run is almost (or fully) drained.
        sim.schedule(2.95, eng.reconfigure, Mapping.single([0, 1, 0]), 0.1)
        sim.run()
        assert eng.items_completed == 30
        assert eng.output_seqs() == list(range(30))

    def test_migration_delay_respected(self):
        # With an enormous migration cost the new replica contributes late;
        # items flow only once it arrives (single-stage pipeline).
        sim = Simulator()
        grid = uniform_grid(2)
        eng = SimPipelineEngine(
            sim, grid, balanced(1, work=0.1), Mapping.single([0]), n_items=400
        )
        sim.schedule(1.0, eng.reconfigure, Mapping.single([1]), 10.0)
        sim.run()
        assert eng.items_completed == 400
        # The old replica keeps draining what it already had; during most of
        # the 10 s migration window progress is limited by the channel
        # backlog, so the makespan must exceed the no-migration ideal (~40 s
        # of pure service time starting at t=0 would be ~40 s; the stall adds
        # several seconds).
        assert eng.completion_times()[-1] > 44.0

    def test_reconfigure_validation(self):
        sim = Simulator()
        grid = uniform_grid(2)
        eng = SimPipelineEngine(
            sim, grid, balanced(2), Mapping.single([0, 1]), n_items=5
        )
        with pytest.raises(ValueError):
            eng.reconfigure(Mapping.single([0]))
        with pytest.raises(KeyError):
            eng.reconfigure(Mapping.single([0, 9]))


class TestReconfigurePerformance:
    def test_moving_off_degraded_processor_recovers_throughput(self):
        sim = Simulator()
        grid = uniform_grid(4)
        grid.perturb(1, [(5.0, 0.05)])  # stage 1's host collapses at t=5
        eng = SimPipelineEngine(
            sim, grid, balanced(), Mapping.single([0, 1, 2]), n_items=400
        )
        sim.schedule(8.0, eng.reconfigure, Mapping.single([0, 3, 2]), 0.5)
        sim.run()
        t_adaptive = eng.completion_times()[-1]

        sim2 = Simulator()
        grid2 = uniform_grid(4)
        grid2.perturb(1, [(5.0, 0.05)])
        eng2 = SimPipelineEngine(
            sim2, grid2, balanced(), Mapping.single([0, 1, 2]), n_items=400
        )
        sim2.run()
        t_static = eng2.completion_times()[-1]
        assert eng.items_completed == eng2.items_completed == 400
        assert t_adaptive < t_static / 3.0  # dramatic recovery

    def test_fusing_stages_avoids_slow_link(self):
        from repro.gridsim.spec import two_site_grid

        pipe = PipelineSpec(
            (
                StageSpec(name="a", work=0.05, out_bytes=5e5),
                StageSpec(name="b", work=0.05),
            )
        )
        grid = two_site_grid([1.0], [1.0], wan_bandwidth=1e6, wan_latency=0.01)
        sim = Simulator()
        eng = SimPipelineEngine(sim, grid, pipe, Mapping.single([0, 1]), n_items=100)
        sim.schedule(5.0, eng.reconfigure, Mapping.single([0, 0]), 0.2)
        sim.run()
        t_fused = eng.completion_times()[-1]

        sim2 = Simulator()
        grid2 = two_site_grid([1.0], [1.0], wan_bandwidth=1e6, wan_latency=0.01)
        eng2 = SimPipelineEngine(sim2, grid2, pipe, Mapping.single([0, 1]), n_items=100)
        sim2.run()
        assert t_fused < eng2.completion_times()[-1]
