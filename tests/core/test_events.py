"""Tests for RunResult metrics and adaptation event records."""

import math

import pytest

from repro.core.events import AdaptationEvent, Decision, RunResult
from repro.model.mapping import Mapping


def make_result(completions, n_items=None, end=None, seqs=None):
    n = n_items if n_items is not None else len(completions)
    return RunResult(
        n_items=n,
        completion_times=list(completions),
        latencies=[0.5] * len(completions),
        adaptation_events=[],
        mapping_history=[(0.0, Mapping.single([0]))],
        end_time=end if end is not None else (completions[-1] if completions else 0.0),
        output_seqs=seqs if seqs is not None else list(range(len(completions))),
    )


class TestRunResult:
    def test_basic_accounting(self):
        r = make_result([1.0, 2.0, 3.0, 4.0])
        assert r.items_completed == 4
        assert r.completed_all
        assert r.makespan == 4.0
        assert r.throughput() == pytest.approx(1.0)

    def test_incomplete_run(self):
        r = make_result([1.0], n_items=10)
        assert not r.completed_all

    def test_empty_run(self):
        r = make_result([], n_items=5)
        assert math.isnan(r.makespan)
        assert r.throughput() == 0.0
        assert math.isnan(r.mean_latency())

    def test_steady_throughput_skips_fill(self):
        # Slow fill (1 item/s), then steady 10 items/s.
        times = [1.0, 2.0, 3.0, 4.0] + [4.0 + 0.1 * i for i in range(1, 37)]
        r = make_result(times)
        assert r.steady_throughput(skip_fraction=0.25) == pytest.approx(10.0, rel=0.05)
        # Naive overall throughput is dragged down by the fill.
        assert r.throughput() < r.steady_throughput()

    def test_steady_throughput_invalid_fraction(self):
        r = make_result([1.0, 2.0])
        with pytest.raises(ValueError):
            r.steady_throughput(skip_fraction=1.0)

    def test_throughput_series_windows(self):
        r = make_result([0.5, 1.5, 2.5, 3.5], end=4.0)
        ts, series = r.throughput_series(dt=2.0)
        assert ts == [2.0, 4.0]
        assert series == [1.0, 1.0]

    def test_throughput_series_invalid_dt(self):
        with pytest.raises(ValueError):
            make_result([1.0]).throughput_series(dt=0.0)

    def test_in_order(self):
        assert make_result([1.0, 2.0], seqs=[0, 1]).in_order()
        assert not make_result([1.0, 2.0], seqs=[1, 0]).in_order()

    def test_final_mapping(self):
        r = make_result([1.0])
        assert r.final_mapping == Mapping.single([0])


class TestDecision:
    def test_noop(self):
        d = Decision(None, reason="cooldown")
        assert not d.acts
        assert d.predicted_gain == 1.0

    def test_action(self):
        d = Decision(Mapping.single([1]), reason="move", predicted_gain=2.0)
        assert d.acts


class TestAdaptationEvent:
    def test_str_rendering(self):
        e = AdaptationEvent(
            time=12.5,
            kind="remap",
            mapping_before=Mapping.single([0, 1]),
            mapping_after=Mapping.single([2, 1]),
            reason="bottleneck",
            predicted_gain=1.8,
            throughput_before=5.0,
        )
        s = str(e)
        assert "t=12.50" in s
        assert "(0,1)" in s and "(2,1)" in s
        assert "x1.80" in s
