"""Tests for shared-link contention modelling."""

import pytest

from repro.core.executor_sim import SimPipelineEngine
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.gridsim.engine import Simulator
from repro.gridsim.spec import two_site_grid, uniform_grid
from repro.model.mapping import Mapping


class TestLinkResource:
    def test_shared_wan_pipe_is_one_resource(self):
        grid = two_site_grid([1.0, 1.0], [1.0, 1.0])
        # Any cross-site pair shares the same WAN link object -> resource.
        assert grid.link_resource(0, 2) is grid.link_resource(1, 3)
        assert grid.link_resource(0, 2) is grid.link_resource(2, 0)

    def test_intra_site_distinct_from_wan(self):
        grid = two_site_grid([1.0, 1.0], [1.0, 1.0])
        assert grid.link_resource(0, 1) is not grid.link_resource(0, 2)

    def test_loopback_rejected(self):
        grid = uniform_grid(2)
        with pytest.raises(ValueError, match="loopback"):
            grid.link_resource(1, 1)


def farm_engine(link_contention, replicas=4, n_items=60):
    """A farm on the remote site pulling fat items over one WAN pipe."""
    grid = two_site_grid(
        [1.0], [1.0] * replicas, wan_latency=0.0, wan_bandwidth=1e6
    )
    pipe = PipelineSpec(
        (StageSpec(name="w", work=0.4),), input_bytes=1e5  # 0.1 s per transfer
    )
    mapping = Mapping((tuple(range(1, 1 + replicas)),))
    sim = Simulator()
    eng = SimPipelineEngine(
        sim,
        grid,
        pipe,
        mapping,
        n_items=n_items,
        source_pid=0,
        sink_pid=0,
        link_contention=link_contention,
        seed=3,
    )
    sim.run()
    span = eng.completion_times()[-1] - eng.completion_times()[10]
    return (n_items - 11) / span


class TestContentionEffects:
    def test_uncontended_scales_with_replicas(self):
        # Without contention, 4 remote workers overlap their transfers:
        # each cycle 0.1 + 0.4 = 0.5 s -> ~8 items/s.
        tp = farm_engine(link_contention=False)
        assert tp == pytest.approx(4 / 0.5, rel=0.1)

    def test_contended_caps_at_link_rate(self):
        # With contention the single WAN pipe admits one 0.1 s transfer at a
        # time.  Six workers would reach 12 items/s uncontended (cycle
        # 0.5 s), but ingress util 6 x 0.1/0.5 = 1.2 saturates the pipe:
        # throughput caps at the link rate of 10 transfers/s.
        tp_contended = farm_engine(link_contention=True, replicas=6, n_items=120)
        tp_free = farm_engine(link_contention=False, replicas=6, n_items=120)
        assert tp_free == pytest.approx(12.0, rel=0.1)
        assert tp_contended < tp_free * 0.92
        # The cap cannot exceed the link rate (10 transfers/s).
        assert tp_contended <= 10.0 * 1.08

    def test_contention_irrelevant_for_single_worker(self):
        a = farm_engine(link_contention=True, replicas=1)
        b = farm_engine(link_contention=False, replicas=1)
        assert a == pytest.approx(b, rel=0.02)

    def test_conservation_under_contention(self):
        grid = two_site_grid([1.0], [1.0, 1.0], wan_bandwidth=1e6)
        pipe = PipelineSpec(
            (
                StageSpec(name="a", work=0.05, out_bytes=5e4),
                StageSpec(name="b", work=0.05),
            ),
            input_bytes=5e4,
        )
        sim = Simulator()
        eng = SimPipelineEngine(
            sim,
            grid,
            pipe,
            Mapping.single([1, 2]),
            n_items=40,
            link_contention=True,
            seed=4,
        )
        sim.run()
        assert eng.items_completed == 40
        assert eng.output_seqs() == list(range(40))
