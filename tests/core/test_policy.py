"""Tests for the adaptation policy (decide step)."""

import math

import pytest

from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig, AdaptationPolicy
from repro.core.stage import StageSpec
from repro.gridsim.spec import heterogeneous_grid, uniform_grid
from repro.model.mapping import Mapping
from repro.model.throughput import snapshot_view
from repro.monitor.instrument import StageSnapshot


def snap(i, items=10, service=0.1, work=0.1, transfer=0.0):
    return StageSnapshot(
        stage_index=i,
        items_processed=items,
        service_time=service,
        service_cv=0.0,
        transfer_time=transfer,
        work_estimate=work,
        queue_length=0.0,
    )


def make_policy(works=(0.1, 0.1, 0.1), **cfg_kwargs):
    pipe = PipelineSpec(
        tuple(StageSpec(name=f"s{i}", work=w) for i, w in enumerate(works))
    )
    return AdaptationPolicy(pipe, AdaptationConfig(**cfg_kwargs))


class TestConfigValidation:
    def test_defaults_valid(self):
        AdaptationConfig()

    def test_bad_improvement(self):
        with pytest.raises(ValueError):
            AdaptationConfig(min_improvement=0.9)

    def test_bad_rollback(self):
        with pytest.raises(ValueError):
            AdaptationConfig(rollback_tolerance=0.0)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            AdaptationConfig(interval=0.0)

    def test_bad_min_samples(self):
        with pytest.raises(ValueError):
            AdaptationConfig(min_samples=0)


class TestGuards:
    def test_cooldown_blocks(self):
        policy = make_policy(cooldown=10.0)
        grid = uniform_grid(3)
        d = policy.decide(
            now=5.0,
            current=Mapping.single([0, 0, 0]),
            snapshots=[snap(i) for i in range(3)],
            view=snapshot_view(grid.snapshot(0.0)),
            source_pid=0,
            sink_pid=0,
            remaining_items=100,
            last_action_time=0.0,
        )
        assert not d.acts
        assert d.reason == "cooldown"

    def test_insufficient_samples_blocks(self):
        policy = make_policy(min_samples=5)
        grid = uniform_grid(3)
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 0, 0]),
            snapshots=[snap(0, items=10), snap(1, items=2), snap(2, items=10)],
            view=snapshot_view(grid.snapshot(0.0)),
            source_pid=0,
            sink_pid=0,
            remaining_items=100,
        )
        assert not d.acts
        assert d.reason == "insufficient-samples"

    def test_no_remaining_work_blocks(self):
        policy = make_policy()
        grid = uniform_grid(3)
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 1, 2]),
            snapshots=[snap(i) for i in range(3)],
            view=snapshot_view(grid.snapshot(0.0)),
            source_pid=0,
            sink_pid=0,
            remaining_items=0,
        )
        assert not d.acts

    def test_already_optimal_stays(self):
        policy = make_policy(enable_replication=False)
        grid = uniform_grid(3)
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 1, 2]),
            snapshots=[snap(i) for i in range(3)],
            view=snapshot_view(grid.snapshot(0.0)),
            source_pid=0,
            sink_pid=0,
            remaining_items=1000,
        )
        assert not d.acts
        assert d.reason == "already-optimal"


class TestDecisions:
    def test_spreads_out_bad_initial_mapping(self):
        policy = make_policy()
        grid = uniform_grid(3)
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 0, 0]),
            snapshots=[snap(i) for i in range(3)],
            view=snapshot_view(grid.snapshot(0.0)),
            source_pid=0,
            sink_pid=0,
            remaining_items=10_000,
        )
        assert d.acts
        assert d.predicted_gain > 1.15
        assert len(d.new_mapping.processors_used()) == 3

    def test_moves_off_degraded_processor(self):
        policy = make_policy()
        grid = uniform_grid(4)
        grid.perturb(1, [(0.0, 0.05)])  # pid 1 nearly dead from the start
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 1, 2]),
            snapshots=[
                snap(0),
                snap(1, service=2.0, work=0.1),  # observed pain on stage 1
                snap(2),
            ],
            view=snapshot_view(grid.snapshot(50.0)),
            source_pid=0,
            sink_pid=0,
            remaining_items=10_000,
        )
        assert d.acts
        assert 1 not in d.new_mapping.processors_used()

    def test_replicates_heavy_stage(self):
        policy = make_policy(works=(0.1, 0.8, 0.1), enable_remap=False)
        grid = uniform_grid(5)
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 1, 2]),
            snapshots=[
                snap(0, work=0.1),
                snap(1, service=0.8, work=0.8),
                snap(2, work=0.1),
            ],
            view=snapshot_view(grid.snapshot(0.0)),
            source_pid=0,
            sink_pid=0,
            remaining_items=10_000,
        )
        assert d.acts
        assert len(d.new_mapping.replicas(1)) > 1

    def test_below_threshold_stays(self):
        # Marginal improvements are rejected by hysteresis.
        policy = make_policy(works=(0.1, 0.1), min_improvement=3.0)
        grid = heterogeneous_grid([1.0, 1.2])
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 0]),
            snapshots=[snap(0), snap(1)],
            view=snapshot_view(grid.snapshot(0.0)),
            source_pid=0,
            sink_pid=0,
            remaining_items=10_000,
        )
        assert not d.acts
        assert "below-threshold" in d.reason or d.reason == "already-optimal"

    def test_migration_not_amortised_for_tiny_remaining_work(self):
        policy = make_policy()
        grid = uniform_grid(3)
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 0, 0]),
            snapshots=[snap(i) for i in range(3)],
            view=snapshot_view(grid.snapshot(0.0)),
            source_pid=0,
            sink_pid=0,
            remaining_items=1,  # one item left: not worth moving anything
        )
        assert not d.acts
        assert "not-amortised" in d.reason

    def test_measured_work_beats_spec_prior(self):
        # Spec says balanced, but measurements show stage 0 is 10x heavier
        # and it sits on the slow processor; the decision must hinge on the
        # measurements and move it to the fast one.
        policy = make_policy(works=(0.1, 0.1))
        grid = heterogeneous_grid([1.0, 4.0])
        d = policy.decide(
            now=100.0,
            current=Mapping.single([0, 1]),  # heavy measured stage on slow proc
            snapshots=[snap(0, service=1.0, work=1.0), snap(1, work=0.1)],
            view=snapshot_view(grid.snapshot(0.0)),
            source_pid=0,
            sink_pid=0,
            remaining_items=10_000,
        )
        assert d.acts
        # After the move, the heavy stage must own the fast processor.
        assert 1 in d.new_mapping.replicas(0)
        works = policy.measured_works(
            [snap(0, service=1.0, work=1.0), snap(1, work=0.1)]
        )
        assert works[0] == pytest.approx(1.0)


class TestMeasuredWorks:
    def test_untrusted_stages_excluded(self):
        policy = make_policy(min_samples=5)
        works = policy.measured_works(
            [snap(0, items=10, work=0.5), snap(1, items=1, work=9.0)]
        )
        assert 0 in works and 1 not in works

    def test_nan_work_excluded(self):
        policy = make_policy()
        works = policy.measured_works([snap(0, work=math.nan)])
        assert works == {}
