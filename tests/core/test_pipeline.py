"""Tests for pipeline specs."""

import pytest

from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec


def make_pipe(works=(0.1, 0.2, 0.3)):
    return PipelineSpec(
        tuple(StageSpec(name=f"s{i}", work=w) for i, w in enumerate(works))
    )


class TestPipelineSpec:
    def test_basic(self):
        p = make_pipe()
        assert p.n_stages == 3
        assert p.stage(1).name == "s1"
        assert p.total_work() == pytest.approx(0.6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PipelineSpec(())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PipelineSpec((StageSpec(name="x", work=0.1), StageSpec(name="x", work=0.1)))

    def test_negative_input_bytes_rejected(self):
        with pytest.raises(ValueError):
            PipelineSpec((StageSpec(name="a", work=0.1),), input_bytes=-1)

    def test_stage_costs_defaults(self):
        costs = make_pipe().stage_costs()
        assert [c.work for c in costs] == pytest.approx([0.1, 0.2, 0.3])

    def test_stage_costs_with_measured_overrides(self):
        costs = make_pipe().stage_costs({1: 9.0})
        assert costs[1].work == 9.0
        assert costs[0].work == pytest.approx(0.1)

    def test_with_stage_replaces(self):
        p = make_pipe().with_stage(0, StageSpec(name="new", work=5.0))
        assert p.stage(0).name == "new"
        assert p.n_stages == 3

    def test_str(self):
        assert "s0 -> s1 -> s2" in str(make_pipe())
