"""Tests for per-item span collection."""

from repro.obs.events import EventBus
from repro.obs.spans import SpanCollector


def _bus():
    bus = EventBus(clock=lambda: 0.0)
    return bus, SpanCollector().attach(bus)


class TestSpanCollector:
    def test_span_minted_at_submit_and_completed(self):
        bus, col = _bus()
        bus.emit("stream.begin", stream=1)
        bus.emit("item.submit", at=1.0, stream=1, seq=0, gseq=0)
        bus.emit("stage.service", at=1.2, stage=0, seconds=0.1, speed=1.0, seq=0)
        bus.emit("item.complete", at=1.5, stream=1, seq=0)
        span = col.span(1, 0)
        assert span is not None
        assert span.complete
        assert span.latency == 0.5
        assert span.service_seconds == 0.1
        assert [k for _, k in span.phases()] == [
            "item.submit", "stage.service", "item.complete",
        ]

    def test_gseq_alias_resolves_session_global_seqs(self):
        # Thread/asyncio executors emit gseq in stage.service: stream 2's
        # first item has seq 0 but gseq 5.
        bus, col = _bus()
        bus.emit("stream.begin", stream=2)
        bus.emit("item.submit", stream=2, seq=0, gseq=5)
        bus.emit("stage.service", stage=0, seconds=0.2, speed=1.0, seq=5)
        span = col.span(2, 0)
        assert span.service_seconds == 0.2

    def test_stream_scoped_seq_falls_back_to_current_stream(self):
        # Process/distributed executors emit stream-scoped seqs.
        bus, col = _bus()
        bus.emit("stream.begin", stream=3)
        bus.emit("item.submit", stream=3, seq=7, gseq=100)
        bus.emit("frame.encode", stage=0, seq=7, nbytes=64)
        span = col.span(3, 7)
        assert span.first("frame.encode").fields["nbytes"] == 64

    def test_spans_ordered(self):
        bus, col = _bus()
        bus.emit("stream.begin", stream=1)
        for seq in (2, 0, 1):
            bus.emit("item.submit", stream=1, seq=seq, gseq=seq)
        assert [(s.stream, s.seq) for s in col.spans()] == [(1, 0), (1, 1), (1, 2)]

    def test_incomplete_span_has_no_latency(self):
        bus, col = _bus()
        bus.emit("item.submit", stream=1, seq=0, gseq=0)
        assert col.span(1, 0).latency is None
        assert not col.span(1, 0).complete

    def test_trace_id_from_submit(self):
        bus, col = _bus()
        bus.emit("item.submit", stream=1, seq=3, gseq=3, trace="ab12:1:3")
        assert col.span(1, 3).trace_id == "ab12:1:3"
        bus.emit("item.submit", stream=1, seq=4, gseq=4)
        assert col.span(1, 4).trace_id is None


class TestRedispatch:
    def test_worker_death_span_reads_redispatched_not_dangling(self):
        # A worker dies holding the item: the span must not look merely
        # unfinished — the redispatch event joins it and flips its status.
        bus, col = _bus()
        bus.emit("stream.begin", stream=0)
        bus.emit("item.submit", at=0.0, stream=0, seq=5, gseq=5)
        bus.emit("item.dispatch", at=0.1, stage=0, seq=5, worker=1)
        bus.emit("worker.death", at=0.2, worker=1)  # not span-keyed; ignored
        bus.emit("worker.redispatch", at=0.3, stage=0, seq=5, worker=1)
        span = col.span(0, 5)
        assert span.redispatched
        assert span.status == "redispatched"

    def test_replacement_dispatch_lands_on_same_span(self):
        bus, col = _bus()
        bus.emit("stream.begin", stream=0)
        bus.emit("item.submit", at=0.0, stream=0, seq=5, gseq=5)
        bus.emit("item.dispatch", at=0.1, stage=0, seq=5, worker=1)
        bus.emit("worker.redispatch", at=0.3, stage=0, seq=5, worker=1)
        bus.emit("item.dispatch", at=0.4, stage=0, seq=5, worker=2)
        bus.emit("item.complete", at=0.6, stream=0, seq=5)
        span = col.span(0, 5)
        assert span.status == "complete"
        dispatches = span.dispatches(0)
        assert len(dispatches) == 2  # >1 means the item was re-sent
        assert dispatches[-1].fields["worker"] == 2  # the attempt that won

    def test_status_open_without_redispatch(self):
        bus, col = _bus()
        bus.emit("item.submit", stream=0, seq=0, gseq=0)
        assert col.span(0, 0).status == "open"
