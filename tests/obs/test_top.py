"""Tests for the live top view (state fold + --once rendering)."""

import json

from repro.obs.top import TopState, _tail, main, render
from repro.skel.api import open_pipeline


def _feed(state, *recs):
    for rec in recs:
        state.feed(rec)


class TestTopState:
    def test_folds_lifecycle(self):
        s = TopState()
        _feed(
            s,
            {"kind": "session.open", "t": 0.0, "backend": "threads",
             "stages": ["a", "b"]},
            {"kind": "stream.begin", "t": 0.1, "stream": 1},
            {"kind": "item.submit", "t": 0.1},
            {"kind": "stage.service", "t": 0.2, "stage": 0, "seconds": 0.05,
             "queue": 3, "wall": 100.0},
            {"kind": "item.complete", "t": 0.3},
            {"kind": "replica.add", "t": 0.4, "stage": 0, "n": 2},
            {"kind": "adapt.decide", "t": 0.5, "reason": "bottleneck stage 0"},
        )
        assert s.backend == "threads"
        assert s.stage_names == ["a", "b"]
        assert s.submitted == 1 and s.completed == 1 and s.streams == 1
        assert s.stages[0]["items"] == 1
        assert s.stages[0]["queue"] == 3
        assert s.stages[0]["replicas"] == 2
        assert list(s.decisions)[0][1] == "adapt.decide"

    def test_rate_over_window(self):
        s = TopState(window=10.0)
        for wall in (99.0, 101.0, 109.0):
            s.feed({"kind": "stage.service", "t": 0.0, "stage": 0,
                    "seconds": 0.01, "wall": wall})
        assert s.rate(0, now=110.0) == 2 / 10.0  # 99.0 aged out

    def test_worker_membership(self):
        s = TopState()
        _feed(
            s,
            {"kind": "worker.join", "t": 0.0, "worker": 0},
            {"kind": "worker.join", "t": 0.0, "worker": 1},
            {"kind": "worker.death", "t": 1.0, "worker": 0},
        )
        assert s.workers_alive == 1

    def test_folds_trace_records(self):
        s = TopState()
        _feed(
            s,
            {"kind": "item.submit", "t": 0.0, "wait": 0.1},
            {"kind": "span.phases", "t": 0.5, "seq": 0, "stage": 0,
             "wire_out": 0.01, "worker_queue": 0.02, "service": 0.3,
             "encode": 0.001, "wire_back": 0.01},
            {"kind": "span.phases", "t": 0.6, "seq": 1, "stage": 0,
             "wire_out": 0.01, "worker_queue": 0.02, "service": 0.3,
             "encode": 0.001, "wire_back": 0.01},
            {"kind": "clock.sync", "t": 0.7, "worker": 1, "offset": 2e-4,
             "err": 5e-5, "drift": 0.0, "n": 4},
        )
        assert s.phase_hops == 2
        assert s.phase_sums["service"] == 0.6
        assert s.admit_wait_sum == 0.1
        assert s.clocks[1] == (2e-4, 5e-5)


class TestRender:
    def test_render_empty(self):
        text = render(TopState(), now=0.0)
        assert "no stage activity" in text
        assert "(none)" in text

    def test_render_with_stages_and_decisions(self):
        s = TopState()
        _feed(
            s,
            {"kind": "session.open", "t": 0.0, "backend": "threads",
             "stages": ["work"]},
            {"kind": "stage.service", "t": 0.2, "stage": 0, "seconds": 0.05,
             "wall": 100.0},
            {"kind": "adapt.act", "t": 0.5, "reason": "replicate stage 0"},
        )
        text = render(s, now=100.0)
        assert "backend=threads" in text
        assert "work" in text
        assert "adapt.act" in text
        assert "replicate stage 0" in text

    def test_breakdown_pane_only_with_phase_data(self):
        s = TopState()
        assert "latency breakdown" not in render(s, now=0.0)
        _feed(
            s,
            {"kind": "span.phases", "t": 0.5, "seq": 0, "stage": 0,
             "wire_out": 0.01, "worker_queue": 0.02, "service": 0.3,
             "encode": 0.001, "wire_back": 0.01},
            {"kind": "clock.sync", "t": 0.7, "worker": 0, "offset": 1e-4,
             "err": 5e-5, "drift": 0.0, "n": 3},
        )
        text = render(s, now=1.0)
        assert "latency breakdown (1 hops" in text
        assert "service=300.00ms" in text
        assert "worker clocks" in text


class TestTailRotation:
    def _write(self, path, recs, mode="a"):
        with open(path, mode, encoding="utf-8") as fh:
            for rec in recs:
                fh.write(json.dumps(rec) + "\n")

    def test_tail_restarts_after_rotation(self, tmp_path):
        # The journal rotates under the tailer: the active file shrinks.
        # _tail must notice (size < pos) and restart from offset 0 instead
        # of silently waiting for the file to regrow past the stale offset.
        path = tmp_path / "j.jsonl"
        s = TopState()
        self._write(path, [{"kind": "item.submit", "t": float(i)}
                           for i in range(10)])
        pos = _tail(path, s, 0)
        assert s.submitted == 10
        assert pos == path.stat().st_size
        # Rotate: current file moves aside, a smaller fresh one appears.
        path.rename(tmp_path / "j.jsonl.1")
        self._write(path, [{"kind": "item.complete", "t": 11.0}], mode="w")
        pos = _tail(path, s, pos)
        assert s.completed == 1  # the post-rotation record was seen
        assert pos == path.stat().st_size

    def test_tail_skips_partial_trailing_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        s = TopState()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "item.submit", "t": 0.0}) + "\n")
            fh.write('{"kind": "item.subm')  # torn mid-write
        pos = _tail(path, s, 0)
        assert s.submitted == 1
        # Offset stops before the partial line so the next round rereads it.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('it", "t": 1.0}\n')
        pos = _tail(path, s, pos)
        assert s.submitted == 2
        assert pos == path.stat().st_size


class TestMainOnce:
    def test_once_renders_real_journal(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        session = open_pipeline([lambda x: x + 1], telemetry=path)
        for i in range(5):
            session.submit(i)
        session.drain()
        session.close()
        assert main([str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "backend=threads" in out
        assert "items 5/5" in out
