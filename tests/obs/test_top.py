"""Tests for the live top view (state fold + --once rendering)."""

from repro.obs.top import TopState, main, render
from repro.skel.api import open_pipeline


def _feed(state, *recs):
    for rec in recs:
        state.feed(rec)


class TestTopState:
    def test_folds_lifecycle(self):
        s = TopState()
        _feed(
            s,
            {"kind": "session.open", "t": 0.0, "backend": "threads",
             "stages": ["a", "b"]},
            {"kind": "stream.begin", "t": 0.1, "stream": 1},
            {"kind": "item.submit", "t": 0.1},
            {"kind": "stage.service", "t": 0.2, "stage": 0, "seconds": 0.05,
             "queue": 3, "wall": 100.0},
            {"kind": "item.complete", "t": 0.3},
            {"kind": "replica.add", "t": 0.4, "stage": 0, "n": 2},
            {"kind": "adapt.decide", "t": 0.5, "reason": "bottleneck stage 0"},
        )
        assert s.backend == "threads"
        assert s.stage_names == ["a", "b"]
        assert s.submitted == 1 and s.completed == 1 and s.streams == 1
        assert s.stages[0]["items"] == 1
        assert s.stages[0]["queue"] == 3
        assert s.stages[0]["replicas"] == 2
        assert list(s.decisions)[0][1] == "adapt.decide"

    def test_rate_over_window(self):
        s = TopState(window=10.0)
        for wall in (99.0, 101.0, 109.0):
            s.feed({"kind": "stage.service", "t": 0.0, "stage": 0,
                    "seconds": 0.01, "wall": wall})
        assert s.rate(0, now=110.0) == 2 / 10.0  # 99.0 aged out

    def test_worker_membership(self):
        s = TopState()
        _feed(
            s,
            {"kind": "worker.join", "t": 0.0, "worker": 0},
            {"kind": "worker.join", "t": 0.0, "worker": 1},
            {"kind": "worker.death", "t": 1.0, "worker": 0},
        )
        assert s.workers_alive == 1


class TestRender:
    def test_render_empty(self):
        text = render(TopState(), now=0.0)
        assert "no stage activity" in text
        assert "(none)" in text

    def test_render_with_stages_and_decisions(self):
        s = TopState()
        _feed(
            s,
            {"kind": "session.open", "t": 0.0, "backend": "threads",
             "stages": ["work"]},
            {"kind": "stage.service", "t": 0.2, "stage": 0, "seconds": 0.05,
             "wall": 100.0},
            {"kind": "adapt.act", "t": 0.5, "reason": "replicate stage 0"},
        )
        text = render(s, now=100.0)
        assert "backend=threads" in text
        assert "work" in text
        assert "adapt.act" in text
        assert "replicate stage 0" in text


class TestMainOnce:
    def test_once_renders_real_journal(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        session = open_pipeline([lambda x: x + 1], telemetry=path)
        for i in range(5):
            session.submit(i)
        session.drain()
        session.close()
        assert main([str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "backend=threads" in out
        assert "items 5/5" in out
