"""Tests for the JSONL journal and its reader."""

import json
import threading

from repro.obs.events import Event, EventBus
from repro.obs.journal import JsonlJournal, read_journal


class TestJsonlJournal:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = JsonlJournal(path)
        j(Event(1.0, "stream.begin", fields={"stream": 1}))
        j(Event(2.0, "item.submit", "hello", {"stream": 1, "seq": 0}))
        j.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        rec = json.loads(lines[1])
        assert rec["t"] == 2.0
        assert rec["kind"] == "item.submit"
        assert rec["msg"] == "hello"
        assert rec["seq"] == 0
        assert "wall" in rec

    def test_reserved_field_names_are_prefixed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = JsonlJournal(path)
        j(Event(0.0, "stage.service", fields={"t": 9, "kind": "x", "stage": 1}))
        j.close()
        rec = json.loads(path.read_text())
        assert rec["f_t"] == 9
        assert rec["f_kind"] == "x"
        assert rec["stage"] == 1
        assert rec["kind"] == "stage.service"

    def test_non_json_values_repr(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = JsonlJournal(path)
        j(Event(0.0, "session.error", fields={"error": ValueError("boom")}))
        j.close()
        rec = json.loads(path.read_text())
        assert "boom" in rec["error"]

    def test_rotation_bounded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = JsonlJournal(path, rotate_bytes=200, max_files=2)
        for i in range(100):
            j(Event(float(i), "item.submit", fields={"stream": 1, "seq": i}))
        j.close()
        siblings = sorted(p.name for p in tmp_path.iterdir())
        assert siblings == ["j.jsonl", "j.jsonl.1"]
        assert path.stat().st_size <= 200

    def test_read_journal_spans_rotated_files_oldest_first(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = JsonlJournal(path, rotate_bytes=150, max_files=3)
        for i in range(12):
            j(Event(float(i), "item.submit", fields={"seq": i}))
        j.close()
        seqs = [r["seq"] for r in read_journal(path)]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 11

    def test_concurrent_emit_during_rotation(self, tmp_path):
        # Many threads force rotations mid-write: every surviving line must
        # be intact JSON (no interleaved or torn lines), the sibling count
        # must stay bounded, and the newest records must survive.
        path = tmp_path / "j.jsonl"
        j = JsonlJournal(path, rotate_bytes=500, max_files=3)
        n_threads, per_thread = 8, 50

        def emitter(tid):
            for i in range(per_thread):
                j(Event(float(i), "item.submit",
                        fields={"stream": tid, "seq": i}))

        threads = [
            threading.Thread(target=emitter, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        j.close()
        siblings = [p for p in tmp_path.iterdir() if p.name.startswith("j.jsonl")]
        assert len(siblings) <= 3
        recs = list(read_journal(path))  # json.loads on a torn line raises
        assert recs, "rotation lost everything"
        assert all(r["kind"] == "item.submit" for r in recs)
        # Per-stream order is preserved (rotation drops whole oldest files,
        # never middles), and the globally-last write survives.
        by_stream: dict[int, list[int]] = {}
        for r in recs:
            by_stream.setdefault(r["stream"], []).append(r["seq"])
        for seqs in by_stream.values():
            assert seqs == sorted(seqs)
        assert recs[-1]["seq"] == per_thread - 1

    def test_concurrent_emit_no_rotation_loses_nothing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = JsonlJournal(path)  # default 32MiB: no rotation
        def emitter(tid):
            for i in range(100):
                j(Event(float(i), "item.submit", fields={"stream": tid, "seq": i}))
        threads = [threading.Thread(target=emitter, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        j.close()
        assert len(list(read_journal(path))) == 600

    def test_close_idempotent_and_write_after_close_noop(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = JsonlJournal(path)
        j.close()
        j.close()
        j(Event(0.0, "stream.begin"))  # silently dropped
        assert path.read_text() == ""

    def test_as_bus_subscriber(self, tmp_path):
        path = tmp_path / "j.jsonl"
        bus = EventBus(clock=lambda: 1.0)
        j = JsonlJournal(path)
        bus.subscribe(j, kinds=("adapt.decide",))
        bus.emit("item.submit", stream=1, seq=0)
        bus.emit("adapt.decide", "why", reason="why")
        j.close()
        recs = list(read_journal(path))
        assert [r["kind"] for r in recs] == ["adapt.decide"]
        assert recs[0]["reason"] == "why"
