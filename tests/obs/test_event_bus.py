"""Tests for the structured event bus."""

import pytest

from repro.obs.events import NULL_BUS, SCHEMA, Event, EventBus


class TestEvent:
    def test_positional_compat_with_trace_event(self):
        e = Event(1.5, "adapt.decide", "remap", {"stage": 3})
        assert e.time == 1.5
        assert e.kind == "adapt.decide"
        assert e.category == "adapt.decide"  # legacy alias
        assert "stage=3" in str(e)

    def test_fields_default_empty(self):
        assert Event(0.0, "stream.begin").fields == {}


class TestEventBus:
    def test_emit_without_subscribers_is_noop(self):
        bus = EventBus()
        bus.emit("item.submit", seq=1)  # must not raise, must not build Event

    def test_subscribe_and_emit(self):
        bus = EventBus(clock=lambda: 2.5)
        seen = []
        bus.subscribe(seen.append)
        bus.emit("stream.begin", stream=1)
        assert len(seen) == 1
        assert seen[0].time == 2.5
        assert seen[0].kind == "stream.begin"
        assert seen[0].fields == {"stream": 1}

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=("item.complete",))
        bus.emit("item.submit", seq=0)
        bus.emit("item.complete", seq=0)
        assert [e.kind for e in seen] == ["item.complete"]

    def test_unknown_kind_filter_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown event kinds"):
            bus.subscribe(lambda e: None, kinds=("no.such.kind",))

    def test_wants(self):
        bus = EventBus()
        assert not bus.wants("stage.service")
        bus.subscribe(lambda e: None, kinds=("stage.service",))
        assert bus.wants("stage.service")
        assert not bus.wants("item.submit")
        bus.subscribe(lambda e: None)  # unfiltered wants everything
        assert bus.wants("item.submit")

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        fn = seen.append
        bus.subscribe(fn)
        bus.unsubscribe(fn)
        bus.emit("stream.begin", stream=0)
        assert seen == []
        assert not bus.active

    def test_at_overrides_clock(self):
        bus = EventBus(clock=lambda: 99.0)
        seen = []
        bus.subscribe(seen.append)
        bus.emit("stream.begin", at=1.25)
        assert seen[0].time == 1.25

    def test_schema_covers_all_layers(self):
        prefixes = {k.split(".")[0] for k in SCHEMA}
        assert prefixes == {
            "session", "stream", "item", "stage", "replica",
            "adapt", "worker", "frame", "wk", "clock", "span", "batch",
        }

    def test_unclocked_fallback_warns_once(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        with pytest.warns(RuntimeWarning, match="no clock"):
            bus.emit("stream.begin", stream=0)
        assert seen[0].time == 0.0
        # Second emit: same fallback, but the warning fired already.
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            bus.emit("stream.begin", stream=1)

    def test_explicit_at_never_warns_on_clockless_bus(self):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            bus.emit("stream.begin", at=1.0, stream=0)

    def test_null_bus_refuses_subscribers(self):
        with pytest.raises(RuntimeError, match="null event bus"):
            NULL_BUS.subscribe(lambda e: None)
        NULL_BUS.emit("stream.begin", stream=0)  # emits vanish silently
