"""Tests for the critical-path profiler."""

import json

import pytest

from repro.obs.events import Event, EventBus
from repro.obs.journal import JsonlJournal
from repro.obs.profile import (
    PHASES,
    main,
    profile_journal,
    profile_spans,
    render_report,
)
from repro.obs.spans import SpanCollector


def _collect(*emits):
    """Run ``(kind, at, fields)`` triples through a SpanCollector."""
    bus = EventBus(clock=lambda: 0.0)
    col = SpanCollector().attach(bus)
    for kind, at, fields in emits:
        bus.emit(kind, at=at, **fields)
    return col.spans()


def _distributed_span(*, submit=1.0, hop_at=1.5, done=1.6, **hop):
    """One item with a single span.phases hop of known decomposition."""
    hop.setdefault("stage", 0)
    hop.setdefault("wire_out", 0.01)
    hop.setdefault("worker_queue", 0.02)
    hop.setdefault("service", 0.1)
    hop.setdefault("encode", 0.005)
    hop.setdefault("wire_back", 0.015)
    return [
        ("stream.begin", submit, {"stream": 0}),
        ("item.submit", submit, {"stream": 0, "seq": 0, "gseq": 0}),
        ("span.phases", hop_at, {"seq": 0, **hop}),
        ("item.complete", done, {"stream": 0, "seq": 0}),
    ]


class TestItemTiling:
    def test_hop_phases_plus_gaps_cover_latency(self):
        # submit at 1.0; hop spans [1.35, 1.5] (known = 0.15); done at 1.6.
        report = profile_spans(_collect(*_distributed_span()))
        assert len(report.items) == 1
        item = report.items[0]
        assert item.latency == pytest.approx(0.6)
        p = item.phases
        assert p["wire_out"] == 0.01
        assert p["worker_queue"] == 0.02
        assert p["service"] == 0.1
        assert p["encode"] == 0.005
        assert p["wire_back"] == 0.015
        # Gap before the hop window is coordinator residence; the tail
        # after the hop (result received → yielded) is reorder hold.
        assert p["coord_queue"] == pytest.approx(0.35)
        assert p["reorder_hold"] == pytest.approx(0.1)
        assert item.coverage == pytest.approx(1.0)

    def test_measured_encode_carved_out_of_coord_gap(self):
        emits = _distributed_span()
        emits.insert(2, ("frame.encode", 1.1, {"stage": 0, "seq": 0,
                                               "seconds": 0.05, "nbytes": 64}))
        item = profile_spans(_collect(*emits)).items[0]
        # Worker-side encode (0.005) plus coordinator-side (0.05).
        assert item.phases["encode"] == pytest.approx(0.055)
        assert item.phases["coord_queue"] == pytest.approx(0.30)
        assert item.coverage == pytest.approx(1.0)

    def test_admit_wait_reported_separately(self):
        emits = _distributed_span()
        emits[1][2]["wait"] = 0.25
        report = profile_spans(_collect(*emits))
        assert report.items[0].admit_wait == 0.25
        assert report.admit_wait_total == 0.25
        assert "admit_wait" not in report.items[0].phases

    def test_incomplete_span_skipped(self):
        report = profile_spans(_collect(
            ("item.submit", 1.0, {"stream": 0, "seq": 0, "gseq": 0}),
        ))
        assert report.items == []
        assert report.verdict == "no completed items profiled"

    def test_stage_service_fallback_for_inprocess_backends(self):
        # No span.phases hops: stage.service end-stamps tile the timeline.
        report = profile_spans(_collect(
            ("stream.begin", 0.0, {"stream": 0}),
            ("item.submit", 0.0, {"stream": 0, "seq": 0, "gseq": 0}),
            ("stage.service", 0.3, {"stage": 0, "seconds": 0.1, "seq": 0}),
            ("stage.service", 0.6, {"stage": 1, "seconds": 0.2, "seq": 0}),
            ("item.complete", 0.7, {"stream": 0, "seq": 0}),
        ))
        p = report.items[0].phases
        assert p["service"] == pytest.approx(0.3)
        assert p["coord_queue"] == pytest.approx(0.3)  # 0.2 pre + 0.1 between
        assert p["reorder_hold"] == pytest.approx(0.1)
        assert report.items[0].coverage == pytest.approx(1.0)


class TestVerdict:
    def test_service_bound_names_the_hot_stage(self):
        spans = _collect(
            ("stream.begin", 0.0, {"stream": 0}),
            ("item.submit", 0.0, {"stream": 0, "seq": 0, "gseq": 0}),
            ("span.phases", 0.5, {"seq": 0, "stage": 1, "wire_out": 0.001,
                                  "worker_queue": 0.001, "service": 0.45,
                                  "encode": 0.0, "wire_back": 0.001}),
            ("item.complete", 0.5, {"stream": 0, "seq": 0}),
        )
        report = profile_spans(spans)
        assert report.bottleneck_phase == "service"
        assert report.bottleneck_stage == 1
        assert "service-bound" in report.verdict
        assert "stage 1" in report.verdict

    def test_agreement_with_adaptation_decision(self):
        spans = _collect(
            ("stream.begin", 0.0, {"stream": 0}),
            ("item.submit", 0.0, {"stream": 0, "seq": 0, "gseq": 0}),
            ("span.phases", 0.5, {"seq": 0, "stage": 0, "wire_out": 0.0,
                                  "worker_queue": 0.4, "service": 0.05,
                                  "encode": 0.0, "wire_back": 0.0}),
            ("item.complete", 0.5, {"stream": 0, "seq": 0}),
        )
        report = profile_spans(spans)
        assert report.bottleneck_phase == "worker_queue"
        report.decisions.append((1.0, [1, 1], [2, 1], "grow 0"))
        assert report.agreement().startswith("agrees")
        report.decisions.append((2.0, [2, 1], [2, 2], "grow 1"))
        assert report.agreement().startswith("disagrees")

    def test_coord_bound_has_no_stage(self):
        report = profile_spans(_collect(*_distributed_span()))
        assert report.bottleneck_phase == "coord_queue"
        assert report.bottleneck_stage is None


class TestJournalFrontend:
    def _write_journal(self, path):
        j = JsonlJournal(path)
        j(Event(0.0, "session.open", fields={
            "backend": "distributed", "stages": ["inc", "triple"],
            "n_stages": 2, "session_id": "abc123",
        }))
        j(Event(0.1, "stream.begin", fields={"stream": 0}))
        j(Event(0.1, "item.submit", fields={"stream": 0, "seq": 0, "gseq": 0,
                                            "trace": "abc123:0:0"}))
        j(Event(0.5, "span.phases", fields={
            "seq": 0, "stage": 1, "wire_out": 0.01, "worker_queue": 0.02,
            "service": 0.3, "encode": 0.0, "wire_back": 0.01,
        }))
        j(Event(0.55, "clock.sync", fields={
            "worker": 0, "offset": 1e-4, "drift": 0.0, "err": 5e-5, "n": 9,
        }))
        j(Event(0.6, "item.complete", fields={"stream": 0, "seq": 0}))
        j(Event(0.7, "adapt.act", fields={"before": [1, 1], "after": [1, 2],
                                          "reason": "grow slow stage"}))
        j.close()

    def test_profile_journal_reads_names_clocks_decisions(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write_journal(path)
        report = profile_journal(path)
        assert report.backend == "distributed"
        assert len(report.items) == 1
        assert report.stages[1].name == "triple"
        assert report.clocks[0]["err"] == 5e-5
        assert report.bottleneck_stage == 1
        assert report.agreement().startswith("agrees")

    def test_cli_text_and_json(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        self._write_journal(path)
        assert main([str(path), "--slowest", "2"]) == 0
        out = capsys.readouterr().out
        assert "critical-path profile" in out
        assert "verdict:" in out
        assert "slowest" in out
        assert main([str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["items"] == 1
        assert set(data["phase_totals_s"]) == set(PHASES)
        assert data["stages"]["1"]["name"] == "triple"

    def test_render_report_empty(self):
        text = render_report(profile_spans([]))
        assert "nothing to attribute" in text
