"""Tests for the remote-clock offset/drift estimator."""

import math

import pytest

from repro.obs.clock import MIN_DRIFT_SAMPLES, ClockFit, ClockSync


def _quad(offset, *, t0=100.0, out_delay=0.002, back_delay=0.002, hold=0.01):
    """Build an NTP quadruple for a remote clock running ``offset`` ahead."""
    t1 = t0 + out_delay + offset
    t2 = t1 + hold
    t3 = (t2 - offset) + back_delay
    return t0, t1, t2, t3


class TestClockFit:
    def test_offset_and_mapping(self):
        fit = ClockFit(a=1.5, b=0.0, err=0.001, n=4)
        assert fit.offset_at(10.0) == 1.5
        assert fit.to_local(11.5) == 10.0

    def test_drift_term(self):
        fit = ClockFit(a=0.0, b=1e-3, err=0.001, n=10)
        assert fit.offset_at(100.0) == pytest.approx(0.1)
        assert fit.to_local(100.0) == pytest.approx(99.9)


class TestClockSync:
    def test_identity_before_any_sample(self):
        cs = ClockSync()
        assert cs.to_local(42.0) == 42.0
        assert cs.offset() == 0.0
        assert cs.error_bound() == math.inf
        assert cs.n_samples == 0

    def test_symmetric_sample_recovers_offset_exactly(self):
        cs = ClockSync()
        rtt = cs.observe(*_quad(offset=3.0))
        assert rtt == pytest.approx(0.004)
        # Symmetric delays: the sample is exact, error bound is rtt/2.
        assert cs.offset() == pytest.approx(3.0, abs=1e-9)
        assert cs.error_bound() == pytest.approx(rtt / 2)
        assert cs.to_local(103.0) == pytest.approx(100.0, abs=1e-9)

    def test_asymmetric_delay_error_within_rtt_half(self):
        cs = ClockSync()
        # All delay on the outbound leg: worst-case asymmetry.
        cs.observe(*_quad(offset=1.0, out_delay=0.010, back_delay=0.0))
        rtt = 0.010
        assert abs(cs.offset() - 1.0) <= rtt / 2 + 1e-12

    def test_negative_rtt_sample_dropped(self):
        cs = ClockSync()
        cs.observe(*_quad(offset=0.5))
        n = cs.n_samples
        # t2 < t1 (remote clock stepped backwards mid-hold): dropped.
        cs.observe(10.0, 11.0, 10.5, 12.0)
        assert cs.n_samples == n

    def test_best_bounded_sample_wins_before_drift_activates(self):
        cs = ClockSync()
        cs.observe(*_quad(offset=2.0, out_delay=0.050, back_delay=0.0))  # sloppy
        cs.observe(*_quad(offset=2.0, out_delay=0.001, back_delay=0.001))  # tight
        fit = cs.fit()
        assert fit.b == 0.0  # too few samples for drift
        assert fit.offset_at(0.0) == pytest.approx(2.0, abs=1e-9)
        assert fit.err == pytest.approx(0.001)

    def test_drift_fit_recovers_slope_and_intercept(self):
        cs = ClockSync()
        a_true, b_true = 0.25, 2e-4  # 200µs/s drift
        for i in range(20):
            t0 = 50.0 + i * 0.2  # spans 3.8s of remote time (> MIN_DRIFT_SPAN)
            offset = a_true + b_true * t0
            cs.observe(*_quad(offset=offset, t0=t0))
        fit = cs.fit()
        assert fit.n == 20
        assert fit.b == pytest.approx(b_true, rel=0.05)
        assert fit.offset_at(55.0) == pytest.approx(a_true + b_true * 55.0, abs=1e-4)

    def test_short_span_suppresses_drift(self):
        cs = ClockSync()
        for i in range(MIN_DRIFT_SAMPLES + 4):
            cs.observe(*_quad(offset=1.0, t0=10.0 + i * 0.01))  # 0.12s span
        assert cs.fit().b == 0.0

    def test_sliding_window_bounded(self):
        cs = ClockSync(window=8)
        for i in range(50):
            cs.observe(*_quad(offset=0.1, t0=float(i)))
        assert cs.n_samples == 8

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            ClockSync(window=1)
