"""Tests for the metrics registry and the event-fed recorder."""

import pytest

from repro.obs.events import EventBus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Log2Histogram,
    MetricsRecorder,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge()
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_histogram_log2_buckets(self):
        h = Log2Histogram(scale=1.0)
        for x in (1, 2, 3, 4):
            h.observe(x)
        # bucket b covers [2^(b-1), 2^b): 1 -> b1, 2,3 -> b2, 4 -> b3
        assert h.buckets == {1: 1, 2: 2, 3: 1}
        assert h.count == 4
        assert h.sum == pytest.approx(10.0)
        bounds = h.bounds()
        assert bounds[-1] == (8.0, 4)  # cumulative reaches the count

    def test_histogram_scale(self):
        h = Log2Histogram(scale=1e6)
        h.observe(3e-6)  # 3 us -> bucket 2
        assert h.buckets == {2: 1}

    def test_quantile_empty_is_nan(self):
        import math

        assert math.isnan(Log2Histogram().quantile(0.5))

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError, match="q must be"):
            Log2Histogram().quantile(1.5)

    def test_quantile_single_bucket_interpolates(self):
        h = Log2Histogram(scale=1.0)
        for _ in range(4):
            h.observe(3.0)  # bucket 2: (2, 4]
        # All mass in one bucket: quantiles interpolate across (2, 4].
        assert h.quantile(0.0) == pytest.approx(2.0)
        assert h.quantile(0.5) == pytest.approx(3.0)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_quantile_monotone_and_bounded_by_buckets(self):
        h = Log2Histogram(scale=1e6)
        values = [1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 1e-2]
        for v in values:
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)
        # p99 lands in the top bucket; log2 bucketing bounds the error to 2x.
        assert values[-1] / 2 <= qs[-1] <= values[-1] * 2


class TestRegistry:
    def test_get_or_create_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("items", {"stage": "0"})
        b = reg.counter("items", {"stage": "0"})
        assert a is b
        assert reg.counter("items", {"stage": "1"}) is not a

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="counter"):
            reg.gauge("x", {"l": "1"})

    def test_collect_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", {"s": "1"}).inc(2)
        out = [(name, labels, inst.value) for name, labels, inst in reg.collect()]
        assert out == [("a", {"s": "1"}, 2.0), ("b", {}, 1.0)]


class TestRecorder:
    def _bus(self):
        bus = EventBus(clock=lambda: 0.0)
        rec = MetricsRecorder().attach(bus)
        return bus, rec.registry

    def test_stage_service_feeds_labelled_families(self):
        bus, reg = self._bus()
        bus.emit("stage.service", stage=1, seconds=0.01, speed=1.0,
                 worker=3, queue=2)
        bus.emit("stage.service", stage=1, seconds=0.02, speed=1.0)
        assert reg.counter("stage_items_total", {"stage": "1"}).value == 2
        assert reg.histogram("stage_service_seconds", {"stage": "1"}).count == 2
        assert reg.gauge("stage_queue_length", {"stage": "1"}).value == 2
        assert reg.counter("worker_items_total", {"worker": "3"}).value == 1

    def test_lifecycle_counters(self):
        bus, reg = self._bus()
        bus.emit("stream.begin", stream=1)
        for seq in range(3):
            bus.emit("item.submit", stream=1, seq=seq, gseq=seq)
            bus.emit("item.complete", stream=1, seq=seq)
        bus.emit("stream.drain", stream=1, items=3, elapsed=0.5)
        assert reg.counter("items_submitted_total").value == 3
        assert reg.counter("items_completed_total").value == 3
        assert reg.counter("streams_opened_total").value == 1
        assert reg.gauge("stream_last_items").value == 3
        assert reg.gauge("stream_last_elapsed_seconds").value == 0.5

    def test_replica_adapt_worker_frame_events(self):
        bus, reg = self._bus()
        bus.emit("replica.add", stage=0, n=2)
        bus.emit("replica.remove", stage=0, n=1)
        bus.emit("adapt.decide", reason="bottleneck")
        bus.emit("adapt.act", reason="bottleneck")
        bus.emit("worker.join", worker=0)
        bus.emit("worker.death", worker=0)
        bus.emit("frame.encode", stage=0, seq=0, nbytes=100)
        bus.emit("frame.release", stage=1, seq=0, nbytes=80)
        bus.emit("session.error", error="boom")
        assert reg.gauge("stage_replicas", {"stage": "0"}).value == 1
        assert reg.counter("replica_events_total", {"kind": "add"}).value == 1
        assert reg.counter("adapt_events_total", {"kind": "decide"}).value == 1
        assert reg.counter("worker_events_total", {"kind": "death"}).value == 1
        assert reg.counter("frame_bytes_encoded_total").value == 100
        assert reg.counter("frame_bytes_released_total").value == 80
        assert reg.counter("session_errors_total").value == 1

    def test_end_to_end_item_latency_histogram(self):
        bus = EventBus(clock=lambda: 0.0)
        reg = MetricsRecorder().attach(bus).registry
        bus.emit("item.submit", at=1.0, stream=0, seq=0, gseq=0, wait=0.05)
        bus.emit("item.complete", at=1.5, stream=0, seq=0)
        h = reg.histogram("item_latency_seconds")
        assert h.count == 1
        assert h.sum == pytest.approx(0.5)
        assert reg.histogram("admit_wait_seconds").count == 1
        # A completion with no matching submit records nothing.
        bus.emit("item.complete", at=2.0, stream=0, seq=9)
        assert h.count == 1

    def test_span_phases_feed_per_stage_phase_histograms(self):
        bus, reg = self._bus()
        bus.emit("span.phases", seq=0, stage=1, wire_out=0.001,
                 worker_queue=0.01, service=0.1, encode=0.002, wire_back=0.001)
        labels = {"stage": "1", "phase": "service"}
        h = reg.histogram("span_phase_seconds", labels)
        assert h.count == 1
        assert h.sum == pytest.approx(0.1)
        assert reg.histogram(
            "span_phase_seconds", {"stage": "1", "phase": "wire_out"}
        ).count == 1

    def test_clock_sync_feeds_worker_gauges(self):
        bus, reg = self._bus()
        bus.emit("clock.sync", worker=2, offset=1.5e-4, drift=0.0,
                 err=2e-5, n=12)
        assert reg.gauge(
            "worker_clock_offset_seconds", {"worker": "2"}
        ).value == pytest.approx(1.5e-4)
        assert reg.gauge(
            "worker_clock_error_seconds", {"worker": "2"}
        ).value == pytest.approx(2e-5)
