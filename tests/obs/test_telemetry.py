"""End-to-end telemetry: open_pipeline(..., telemetry=...) across executors."""

import pytest

from repro.obs import Telemetry, as_telemetry, read_journal, spans_from_journal
from repro.obs.exporters import render_prometheus
from repro.skel.api import open_pipeline


def _run(session, n=6):
    for i in range(n):
        session.submit(i)
    out = session.drain()
    session.close()
    return out


class TestAsTelemetry:
    def test_path_is_journal_shorthand(self, tmp_path):
        t = as_telemetry(tmp_path / "j.jsonl")
        assert t.journal is not None
        assert t.recorder is None  # metrics stay off unless asked for
        t.close()

    def test_passthrough_and_rejection(self):
        t = Telemetry()
        assert as_telemetry(t) is t
        with pytest.raises(TypeError):
            as_telemetry(42)


class TestJournalEndToEnd:
    @pytest.mark.parametrize("backend", ["threads", "asyncio", "sim"])
    def test_lifecycle_events_journalled(self, tmp_path, backend):
        path = tmp_path / "j.jsonl"
        session = open_pipeline(
            [lambda x: x + 1, lambda x: x * 2], backend=backend, telemetry=path
        )
        assert _run(session) == [2, 4, 6, 8, 10, 12]
        kinds = {r["kind"] for r in read_journal(path)}
        assert {
            "session.open", "stream.begin", "item.submit",
            "item.complete", "stream.drain", "session.close",
        } <= kinds

    def test_processes_journal_includes_frames(self, tmp_path):
        path = tmp_path / "j.jsonl"
        session = open_pipeline(
            [lambda x: x + 1], backend="processes", telemetry=path
        )
        assert _run(session, 4) == [1, 2, 3, 4]
        recs = list(read_journal(path))
        kinds = {r["kind"] for r in recs}
        assert {"frame.encode", "frame.release", "stage.service"} <= kinds
        encoded = [r for r in recs if r["kind"] == "frame.encode"]
        assert all(r["nbytes"] > 0 for r in encoded)

    def test_journal_order_open_first_close_last(self, tmp_path):
        path = tmp_path / "j.jsonl"
        session = open_pipeline([lambda x: x], telemetry=path)
        _run(session, 2)
        kinds = [r["kind"] for r in read_journal(path)]
        assert kinds[0] == "session.open"
        assert "session.close" in kinds


class TestMetricsAndPrometheus:
    def test_full_bundle(self, tmp_path):
        prom = tmp_path / "metrics.prom"
        t = Telemetry(journal=tmp_path / "j.jsonl", prometheus=prom, spans=True)
        session = open_pipeline([lambda x: x + 1, lambda x: x * 2], telemetry=t)
        _run(session)
        # close() wrote the snapshot
        text = prom.read_text()
        assert "# TYPE repro_items_completed_total counter" in text
        assert "repro_items_completed_total 6" in text
        assert 'repro_stage_items_total{stage="0"} 6' in text
        assert "repro_stage_service_seconds_bucket" in text
        reg = t.registry
        assert reg.counter("streams_opened_total").value == 1

    def test_spans_reconstruct_timeline(self, tmp_path):
        t = Telemetry(spans=True)
        session = open_pipeline([lambda x: x + 1], telemetry=t)
        _run(session, 3)
        spans = t.spans.spans()
        assert len(spans) == 3
        assert all(s.complete for s in spans)
        assert all(s.latency is not None and s.latency >= 0 for s in spans)
        assert all(s.service_seconds > 0 for s in spans)

    def test_spans_from_journal_match_live(self, tmp_path):
        path = tmp_path / "j.jsonl"
        session = open_pipeline([lambda x: x + 1], telemetry=path)
        _run(session, 4)
        spans = spans_from_journal(path)
        assert len(spans) == 4
        assert all(s.complete for s in spans)

    def test_render_prometheus_empty_registry(self):
        t = Telemetry(metrics=True)
        assert render_prometheus(t.registry) == ""

    def test_histogram_percentile_gauges_rendered(self):
        t = Telemetry(metrics=True)
        reg = t.registry
        for stage in ("0", "1"):
            h = reg.histogram("stage_service_seconds", {"stage": stage})
            for v in (0.001, 0.002, 0.004, 0.01):
                h.observe(v)
        reg.histogram("empty_hist", {"stage": "9"})  # no data: no percentiles
        text = render_prometheus(t.registry)
        for suffix in ("_p50", "_p95", "_p99"):
            assert f"# TYPE repro_stage_service_seconds{suffix} gauge" in text
            for stage in ("0", "1"):
                assert (
                    f"repro_stage_service_seconds{suffix}{{stage=\"{stage}\"}}"
                    in text
                )
        assert "repro_empty_hist_p50" not in text
        # Exposition format: every family's samples stay contiguous under
        # one TYPE header (no interleaving of percentile families).
        lines = text.splitlines()
        seen_types = [ln.split()[2] for ln in lines if ln.startswith("# TYPE")]
        assert len(seen_types) == len(set(seen_types))

    def test_percentiles_ordered_and_bracket_the_data(self):
        t = Telemetry(metrics=True)
        h = t.registry.histogram("lat", {})
        for v in [0.001] * 90 + [0.1] * 10:
            h.observe(v)
        p50, p95, p99 = (h.quantile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= p95 <= p99
        assert p50 <= 0.002  # log2 bucket ceiling of the 1ms mass
        assert p99 >= 0.05  # tail lands in the 100ms bucket


class TestSessionErrorJournalled:
    def test_error_event_recorded(self, tmp_path):
        path = tmp_path / "j.jsonl"

        def boom(x):
            raise ValueError("kaboom")

        session = open_pipeline([boom], telemetry=path)
        session.submit(1)
        with pytest.raises(Exception):
            session.drain()
        session.close()
        errors = [r for r in read_journal(path) if r["kind"] == "session.error"]
        assert len(errors) == 1
        assert "kaboom" in errors[0]["error"]


class TestAdaptationJournalled:
    def test_adaptive_threads_session_emits_decisions(self, tmp_path):
        import time

        path = tmp_path / "j.jsonl"
        session = open_pipeline(
            [lambda x: x, lambda x: (time.sleep(0.01), x)[1]],
            backend="threads",
            adaptive=True,
            telemetry=path,
        )
        for i in range(120):
            session.submit(i)
        session.drain()
        session.close()
        kinds = {r["kind"] for r in read_journal(path)}
        # The policy saw a clear bottleneck: decide must appear, and any
        # realized action also journals replica changes.
        assert "adapt.decide" in kinds
        if "adapt.act" in kinds:
            assert "replica.add" in kinds
