"""Tests for the skeleton API layer."""

import pytest

from repro.core.policy import AdaptationConfig
from repro.core.stage import StageSpec
from repro.gridsim.spec import uniform_grid
from repro.model.mapping import Mapping
from repro.skel.api import farm, pipeline_1for1, simulate_farm, simulate_pipeline
from repro.workloads.synthetic import balanced_pipeline


class TestPipeline1for1:
    def test_callables(self):
        out = pipeline_1for1([lambda x: x + 1, lambda x: x * 2], [1, 2, 3])
        assert out == [4, 6, 8]

    def test_mixed_specs_and_callables(self):
        stage = StageSpec(name="inc", work=0.01, fn=lambda x: x + 1)
        out = pipeline_1for1([stage, lambda x: x * 10], [0, 1])
        assert out == [10, 20]

    def test_replicated_stage(self):
        out = pipeline_1for1([lambda x: x**2], range(10), replicas=[3])
        assert out == [x**2 for x in range(10)]

    def test_invalid_stage_type(self):
        with pytest.raises(TypeError):
            pipeline_1for1([42], [1])  # type: ignore[list-item]

    def test_named_function_keeps_name(self):
        def double(x):
            return x * 2

        # Smoke test: construction succeeds and uses function name.
        out = pipeline_1for1([double], [1, 2])
        assert out == [2, 4]


def _inc(x):
    return x + 1


def _slow_double(x):
    import time

    time.sleep(0.01)
    return x * 2


class TestBackendSelection:
    def test_processes_match_threads(self):
        inputs = list(range(15))
        expected = pipeline_1for1([_inc, _slow_double], inputs, backend="threads")
        out = pipeline_1for1([_inc, _slow_double], inputs, backend="processes")
        assert out == expected == [(x + 1) * 2 for x in inputs]

    def test_sim_backend_computes_outputs(self):
        out = pipeline_1for1([_inc], [1, 2, 3], backend="sim")
        assert out == [2, 3, 4]

    def test_sim_backend_with_adaptive_uses_in_sim_controller(self):
        out = pipeline_1for1([_inc], [1, 2, 3], backend="sim", adaptive=True)
        assert out == [2, 3, 4]

    def test_farm_on_sim_rejects_workers(self):
        with pytest.raises(ValueError, match="mapping"):
            farm(_inc, range(5), workers=4, backend="sim")

    def test_typoed_backend_kwarg_raises(self):
        with pytest.raises(TypeError):
            pipeline_1for1([_inc], [1], backend="processes", max_replcas=16)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            pipeline_1for1([_inc], [1], backend="quantum")

    def test_backend_instance_accepted(self):
        from repro.backend import ThreadBackend
        from repro.core.pipeline import PipelineSpec as PS

        pipe = PS((StageSpec(name="inc", work=0.01, fn=_inc),))
        b = ThreadBackend(pipe)
        assert pipeline_1for1([_inc], [5], backend=b) == [6]

    def test_backend_instance_for_other_pipeline_rejected(self):
        from repro.backend import ThreadBackend
        from repro.core.pipeline import PipelineSpec as PS

        b = ThreadBackend(PS((StageSpec(name="inc", work=0.01, fn=_inc),)))
        with pytest.raises(ValueError, match="does not run the given stages"):
            pipeline_1for1([_slow_double], [5], backend=b)

    def test_backend_instance_with_shape_kwargs_rejected(self):
        from repro.backend import ThreadBackend
        from repro.core.pipeline import PipelineSpec as PS

        b = ThreadBackend(PS((StageSpec(name="inc", work=0.01, fn=_inc),)))
        with pytest.raises(ValueError, match="already configured"):
            pipeline_1for1([_inc], [5], backend=b, replicas=[2])
        with pytest.raises(ValueError, match="already configured"):
            pipeline_1for1([_inc], [5], backend=b, capacity=32)

    def test_farm_requires_backend_name(self):
        from repro.backend import ThreadBackend
        from repro.core.pipeline import PipelineSpec as PS

        b = ThreadBackend(PS((StageSpec(name="inc", work=0.01, fn=_inc),)))
        with pytest.raises(ValueError, match="backend name"):
            farm(_inc, [1], backend=b)

    def test_adaptive_run_returns_ordered_outputs(self):
        out = pipeline_1for1(
            [_inc, _slow_double], range(25), backend="threads", adaptive=True
        )
        assert out == [(x + 1) * 2 for x in range(25)]

    def test_farm_on_processes(self):
        out = farm(_slow_double, range(12), workers=3, backend="processes")
        assert out == [x * 2 for x in range(12)]


class TestFarm:
    def test_results_in_order(self):
        out = farm(lambda x: x * 3, range(20), workers=4)
        assert out == [x * 3 for x in range(20)]

    def test_single_worker(self):
        assert farm(lambda x: -x, [1, 2], workers=1) == [-1, -2]


class TestSimulatePipeline:
    def test_static(self):
        res = simulate_pipeline(
            balanced_pipeline(3), uniform_grid(3), 100, adaptive=False,
            mapping=Mapping.single([0, 1, 2]),
        )
        assert res.completed_all
        assert res.adaptation_events == []

    def test_adaptive_default_config(self):
        grid = uniform_grid(4)
        grid.perturb(1, [(10.0, 0.1)])
        res = simulate_pipeline(
            balanced_pipeline(3),
            grid,
            600,
            adaptive=True,
            mapping=Mapping.single([0, 1, 2]),
        )
        assert res.completed_all
        assert any(e.kind != "rollback" for e in res.adaptation_events)

    def test_adaptive_custom_config(self):
        cfg = AdaptationConfig(interval=2.0, cooldown=4.0)
        res = simulate_pipeline(
            balanced_pipeline(2), uniform_grid(2), 50, adaptive=cfg,
            mapping=Mapping.single([0, 1]),
        )
        assert res.completed_all


class TestSimulateFarm:
    def test_uses_all_processors_by_default(self):
        res = simulate_farm(0.4, uniform_grid(4), 200)
        assert res.completed_all
        assert res.final_mapping.replicas(0) == (0, 1, 2, 3)

    def test_worker_cap(self):
        res = simulate_farm(0.4, uniform_grid(4), 100, workers=2)
        assert res.final_mapping.replicas(0) == (0, 1)

    def test_farm_scales(self):
        one = simulate_farm(0.4, uniform_grid(4), 200, workers=1)
        four = simulate_farm(0.4, uniform_grid(4), 200, workers=4)
        assert four.makespan < one.makespan / 2.5

    def test_outputs_ordered(self):
        res = simulate_farm(0.4, uniform_grid(4), 100)
        assert res.in_order()
