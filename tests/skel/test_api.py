"""Tests for the skeleton API layer."""

import pytest

from repro.core.pipeline import PipelineSpec
from repro.core.policy import AdaptationConfig
from repro.core.stage import StageSpec
from repro.gridsim.spec import uniform_grid
from repro.model.mapping import Mapping
from repro.skel.api import farm, pipeline_1for1, simulate_farm, simulate_pipeline
from repro.workloads.synthetic import balanced_pipeline


class TestPipeline1for1:
    def test_callables(self):
        out = pipeline_1for1([lambda x: x + 1, lambda x: x * 2], [1, 2, 3])
        assert out == [4, 6, 8]

    def test_mixed_specs_and_callables(self):
        stage = StageSpec(name="inc", work=0.01, fn=lambda x: x + 1)
        out = pipeline_1for1([stage, lambda x: x * 10], [0, 1])
        assert out == [10, 20]

    def test_replicated_stage(self):
        out = pipeline_1for1([lambda x: x**2], range(10), replicas=[3])
        assert out == [x**2 for x in range(10)]

    def test_invalid_stage_type(self):
        with pytest.raises(TypeError):
            pipeline_1for1([42], [1])  # type: ignore[list-item]

    def test_named_function_keeps_name(self):
        def double(x):
            return x * 2

        # Smoke test: construction succeeds and uses function name.
        out = pipeline_1for1([double], [1, 2])
        assert out == [2, 4]


class TestFarm:
    def test_results_in_order(self):
        out = farm(lambda x: x * 3, range(20), workers=4)
        assert out == [x * 3 for x in range(20)]

    def test_single_worker(self):
        assert farm(lambda x: -x, [1, 2], workers=1) == [-1, -2]


class TestSimulatePipeline:
    def test_static(self):
        res = simulate_pipeline(
            balanced_pipeline(3), uniform_grid(3), 100, adaptive=False,
            mapping=Mapping.single([0, 1, 2]),
        )
        assert res.completed_all
        assert res.adaptation_events == []

    def test_adaptive_default_config(self):
        grid = uniform_grid(4)
        grid.perturb(1, [(10.0, 0.1)])
        res = simulate_pipeline(
            balanced_pipeline(3),
            grid,
            600,
            adaptive=True,
            mapping=Mapping.single([0, 1, 2]),
        )
        assert res.completed_all
        assert any(e.kind != "rollback" for e in res.adaptation_events)

    def test_adaptive_custom_config(self):
        cfg = AdaptationConfig(interval=2.0, cooldown=4.0)
        res = simulate_pipeline(
            balanced_pipeline(2), uniform_grid(2), 50, adaptive=cfg,
            mapping=Mapping.single([0, 1]),
        )
        assert res.completed_all


class TestSimulateFarm:
    def test_uses_all_processors_by_default(self):
        res = simulate_farm(0.4, uniform_grid(4), 200)
        assert res.completed_all
        assert res.final_mapping.replicas(0) == (0, 1, 2, 3)

    def test_worker_cap(self):
        res = simulate_farm(0.4, uniform_grid(4), 100, workers=2)
        assert res.final_mapping.replicas(0) == (0, 1)

    def test_farm_scales(self):
        one = simulate_farm(0.4, uniform_grid(4), 200, workers=1)
        four = simulate_farm(0.4, uniform_grid(4), 200, workers=4)
        assert four.makespan < one.makespan / 2.5

    def test_outputs_ordered(self):
        res = simulate_farm(0.4, uniform_grid(4), 100)
        assert res.in_order()
