"""Size-stratified link estimation: recovery, fallbacks, clamps."""

import numpy as np
import pytest

from repro.transport import SizeStratifiedLinkEstimator
from repro.transport.linkfit import _MAX_BANDWIDTH


def _feed(est, latency, bandwidth, sizes, *, noise=0.0, seed=0, round_trips=2):
    rng = np.random.default_rng(seed)
    for _ in range(200):
        s = float(rng.choice(sizes))
        t = round_trips * latency + s / bandwidth + (rng.normal(0, noise) if noise else 0)
        est.observe(s, max(0.0, t))


def test_recovers_latency_and_bandwidth():
    est = SizeStratifiedLinkEstimator(round_trips=2)
    _feed(est, latency=2e-3, bandwidth=5e7, sizes=[1e3, 1e5, 1e6, 4e6], noise=1e-4)
    model = est.fit()
    assert model.fitted and model.n_samples == 200
    assert 1.5e-3 < model.latency_s < 2.5e-3
    assert 3e7 < model.bandwidth_Bps < 8e7
    # The fitted model prices a transfer affinely.
    assert model.seconds(1e6) == pytest.approx(model.latency_s + 1e6 / model.bandwidth_Bps)


def test_no_samples_reports_default():
    est = SizeStratifiedLinkEstimator(default_bandwidth=1e8)
    model = est.fit()
    assert not model.fitted and model.n_samples == 0
    assert model.bandwidth_Bps == 1e8 and model.latency_s == 0.0


def test_single_size_falls_back_to_latency_only():
    # Without size spread the slope is unidentifiable: keep the default
    # bandwidth and report the mean overhead as (round-tripped) latency.
    est = SizeStratifiedLinkEstimator(default_bandwidth=1e8, round_trips=2)
    for _ in range(50):
        est.observe(1000.0, 6e-3)
    model = est.fit()
    assert not model.fitted
    assert model.bandwidth_Bps == 1e8
    assert model.latency_s == pytest.approx(3e-3, rel=0.05)


def test_latency_dominated_link_clamps_bandwidth_high():
    # Shared-memory descriptors: transfer time does not grow with size.
    est = SizeStratifiedLinkEstimator(round_trips=2)
    _feed(est, latency=1e-3, bandwidth=1e15, sizes=[1e3, 1e6, 8e6])
    model = est.fit()
    assert model.fitted
    assert model.bandwidth_Bps == _MAX_BANDWIDTH
    assert model.latency_s == pytest.approx(1e-3, rel=0.1)


def test_negative_or_nan_samples_are_ignored():
    est = SizeStratifiedLinkEstimator()
    est.observe(100.0, -1.0)
    est.observe(100.0, float("nan"))
    assert est.n_samples == 0


def test_parameter_validation():
    with pytest.raises(ValueError):
        SizeStratifiedLinkEstimator(default_bandwidth=0)
    with pytest.raises(ValueError):
        SizeStratifiedLinkEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        SizeStratifiedLinkEstimator(round_trips=0)
