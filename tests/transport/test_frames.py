"""Codec/frame unit tests: roundtrips, placement policy, registry."""

import pickle

import numpy as np
import pytest

from repro import transport
from repro.transport import (
    AUTO_THRESHOLD,
    Frame,
    PickleCodec,
    SegmentRef,
    SharedMemoryCodec,
    TransportError,
    decode_frame,
    materialize,
    session_segments,
)

PAYLOADS = [
    42,
    "plain string",
    {"nested": [1, 2.5, None], "t": ("x", b"y")},
    np.arange(10_000, dtype=np.float64),
    b"\x00" * 300_000,
    [np.ones((64, 64)), {"tail": np.zeros(5)}],
]


@pytest.mark.parametrize("name", ["pickle", "shm", "auto"])
@pytest.mark.parametrize("payload", PAYLOADS, ids=[str(i) for i in range(len(PAYLOADS))])
def test_roundtrip_equivalence(name, payload):
    codec = transport.get(name)
    try:
        frame = codec.encode(payload)
        out = codec.decode(frame)
        codec.release(frame)
        np.testing.assert_equal(out, payload)
    finally:
        codec.close()
    assert session_segments(codec.session) == []


def test_frame_nbytes_tracks_payload_size():
    codec = transport.get("pickle")
    small = codec.encode(1)
    big = codec.encode(np.zeros(1_000_000))
    assert big.nbytes > 8_000_000 > small.nbytes
    # shm counts the same logical bytes even though they leave the frame.
    shm = transport.get("shm")
    try:
        frame = shm.encode(np.zeros(1_000_000))
        assert abs(frame.nbytes - big.nbytes) < 4096
        shm.release(frame)
    finally:
        shm.close()


def test_auto_threshold_places_per_item():
    codec = transport.get("auto")
    try:
        inline = codec.encode(np.zeros(16))  # far below AUTO_THRESHOLD
        assert inline.inline
        large = codec.encode(np.zeros(AUTO_THRESHOLD))  # 8x the threshold
        assert not large.inline
        codec.release(inline)
        codec.release(large)
    finally:
        codec.close()


def test_shm_codec_forces_segments_and_decode_is_repeatable():
    codec = SharedMemoryCodec()
    try:
        frame = codec.encode({"a": 1})
        assert not frame.inline  # even tiny payloads: the stream moves out
        # Decode takes no ownership: it can run any number of times.
        assert codec.decode(frame) == {"a": 1}
        assert codec.decode(frame) == {"a": 1}
        codec.release(frame)
    finally:
        codec.close()


def test_decoded_numpy_arrays_are_writable():
    codec = SharedMemoryCodec()
    try:
        frame = codec.encode(np.arange(100_000, dtype=np.float64))
        out = codec.decode(frame)
        out[0] = -1.0  # a read-only view here would break in-place stages
        codec.release(frame)
    finally:
        codec.close()


def test_duplicate_release_is_noop_and_decode_after_release_raises():
    codec = SharedMemoryCodec()
    try:
        frame = codec.encode(np.zeros(50_000))
        assert not frame.inline
        codec.release(frame)
        codec.release(frame)  # second release: silently nothing to do
        with pytest.raises(TransportError):
            codec.decode(frame)
    finally:
        codec.close()


def test_materialized_arrays_stay_writable():
    # The remote-worker path: a descriptor frame materialized inline must
    # still decode to mutable arrays (same contract as the segment path).
    codec = SharedMemoryCodec()
    try:
        frame = codec.encode(np.arange(50_000, dtype=np.float64))
        out = decode_frame(materialize(frame))
        out *= 2.0
    finally:
        codec.close()


def test_materialize_yields_equivalent_inline_frame():
    codec = SharedMemoryCodec()
    try:
        payload = [np.arange(40_000), "tail"]
        frame = codec.encode(payload)
        inline = materialize(frame)
        assert inline.inline and inline.nbytes == frame.nbytes
        np.testing.assert_equal(decode_frame(inline), payload)
        # materialize released the source segments.
        assert session_segments(codec.session) == []
    finally:
        codec.close()


def test_sweep_reclaims_unreleased_segments():
    codec = SharedMemoryCodec()
    frames = [codec.encode(np.zeros(10_000)) for _ in range(3)]
    expected = sum(len(f.segment_refs()) for f in frames)
    assert expected >= 3
    assert len(session_segments(codec.session)) == expected
    removed = codec.sweep()
    assert len(removed) == expected
    assert session_segments(codec.session) == []
    for frame in frames:
        codec.release(frame)  # after a sweep: still a no-op, not an error


def test_unpicklable_payload_raises_transport_error_without_leaking():
    codec = SharedMemoryCodec()
    try:
        with pytest.raises(TransportError):
            codec.encode(lambda x: x)  # lambdas don't pickle
        assert session_segments(codec.session) == []
    finally:
        codec.close()


def test_frames_survive_pickling():
    # Frames ride inside mp.Queue / socket messages, which pickle them.
    codec = SharedMemoryCodec()
    try:
        frame = codec.encode(np.arange(30_000))
        clone = pickle.loads(pickle.dumps(frame))
        assert clone == frame
        np.testing.assert_equal(decode_frame(clone), np.arange(30_000))
        codec.release(frame)
    finally:
        codec.close()


def test_concurrent_encode_on_shared_codec_is_safe():
    # Distributed workers share one codec across replica threads: racing
    # encodes must never collide on a segment name (FileExistsError).
    import threading

    codec = SharedMemoryCodec()
    payload = np.arange(20_000)
    errors = []
    frames = []
    lock = threading.Lock()

    def encode_some():
        try:
            for _ in range(20):
                frame = codec.encode(payload)
                with lock:
                    frames.append(frame)
        except Exception as err:  # noqa: BLE001 - collected for the assert
            errors.append(err)

    threads = [threading.Thread(target=encode_some) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    try:
        assert errors == []
        names = [ref.name for f in frames for ref in f.segment_refs()]
        assert len(names) == len(set(names))
    finally:
        codec.close()
    assert session_segments(codec.session) == []


def test_leakcheck_cli_reports_clean():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro.transport.leakcheck"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode in (0, 1)  # 1 only if another suite leaked
    assert "shared-memory" in proc.stdout + proc.stderr


def test_registry_and_specs():
    assert set(transport.available_codecs()) >= {"pickle", "shm", "auto"}
    with pytest.raises(ValueError, match="unknown codec"):
        transport.get("carrier-pigeon")
    auto = transport.get("auto", threshold=123)
    assert auto.name == "auto" and auto.threshold == 123
    rebuilt = transport.from_spec(transport.spec_of(auto))
    assert rebuilt.name == "auto"
    assert rebuilt.threshold == 123 and rebuilt.session == auto.session
    pickle_codec = transport.from_spec(transport.spec_of(PickleCodec()))
    assert isinstance(pickle_codec, PickleCodec)
    # Instances pass through get() unchanged; kwargs are then rejected.
    assert transport.get(auto) is auto
    with pytest.raises(ValueError, match="unexpected kwargs"):
        transport.get(auto, threshold=5)


def test_frame_segment_refs_and_inline_flag():
    ref = SegmentRef(name="x", size=3)
    frame = Frame(codec="shm", stream=b"s", buffers=(b"a", ref), nbytes=5)
    assert frame.segment_refs() == [ref]
    assert not frame.inline
    assert Frame(codec="pickle", stream=b"s", nbytes=1).inline


def test_calibrated_auto_threshold_probe():
    from repro.transport.codecs import (
        _THRESHOLD_MAX,
        _THRESHOLD_MIN,
        calibrated_auto_threshold,
    )

    fitted = calibrated_auto_threshold(_cache=False)
    # shm may legitimately never win on a given host (then None keeps the
    # static default); a fitted value must sit inside the clamp band.
    if fitted is not None:
        assert _THRESHOLD_MIN <= fitted <= _THRESHOLD_MAX
    # The per-process cache path returns a stable answer.
    assert calibrated_auto_threshold() == calibrated_auto_threshold()


def test_calibration_leaves_no_segments_behind():
    import os

    from repro.transport import SHM_PREFIX
    from repro.transport.codecs import calibrated_auto_threshold

    try:
        before = {e for e in os.listdir("/dev/shm") if e.startswith(SHM_PREFIX)}
    except OSError:
        pytest.skip("/dev/shm not available")
    calibrated_auto_threshold(_cache=False)
    after = {e for e in os.listdir("/dev/shm") if e.startswith(SHM_PREFIX)}
    assert after <= before  # the probe sweeps its own session
