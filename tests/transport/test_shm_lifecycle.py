"""Shared-memory lifecycle through the backends: no segment outlives its run.

The contract under test (ISSUE 4): after normal completion, after an
abort mid-run, and after a killed distributed worker, `/dev/shm` holds no
segment of the backend's transport session once the backend is closed —
and releasing a frame twice is a no-op (covered in test_frames too).
"""

import time

import numpy as np
import pytest

from repro.backend import DistributedBackend, ProcessPoolBackend
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.transport import session_segments
from repro.workloads.payloads import array_pipeline, checksum_array, make_arrays


def _explode_on_big(a: np.ndarray) -> np.ndarray:
    if a.size > 50_000:
        raise ValueError("boom")
    return a


def _double(a: np.ndarray) -> np.ndarray:
    return a * 2.0


def _slow_checksum(a: np.ndarray) -> dict:
    time.sleep(0.02)
    return checksum_array(a)


@pytest.mark.parametrize("transport", ["shm", "auto"])
def test_process_backend_normal_completion_leaves_no_segments(transport):
    pipe = array_pipeline(mbytes=0.5)
    backend = ProcessPoolBackend(pipe, replicas=[1, 2, 1], transport=transport)
    with backend:
        res = backend.run(make_arrays(8, mbytes=0.5, seed=1))
        session = backend._codec.session
        assert res.items == 8
        # A healthy warm backend holds no segments *between* runs either:
        # every frame was consumed and released along the way.
        assert session_segments(session) == []
    assert session_segments(session) == []


def test_process_backend_abort_mid_run_sweeps_segments():
    pipe = PipelineSpec(
        (
            StageSpec(name="scale", fn=lambda a: a * 2.0),
            StageSpec(name="explode", fn=_explode_on_big),
            StageSpec(name="checksum", fn=checksum_array),
        )
    )
    backend = ProcessPoolBackend(pipe, transport="shm")
    session = backend._codec.session
    items = make_arrays(6, mbytes=0.1, seed=2) + make_arrays(6, mbytes=1.0, seed=3)
    with pytest.raises(Exception, match="boom"):
        backend.run(items)
    backend.close()
    assert session_segments(session) == []


def test_distributed_normal_completion_leaves_no_segments():
    pipe = array_pipeline(mbytes=0.5)
    backend = DistributedBackend(pipe, spawn_workers=2, transport="shm")
    try:
        res = backend.run(make_arrays(8, mbytes=0.5, seed=4))
        session = backend._codec.session
        assert res.items == 8
        assert all(w["shm_ok"] for w in backend.alive_workers())
        # Only the negotiation probe survives while the backend is warm.
        left = session_segments(session)
        assert all("probe" in name for name in left), left
    finally:
        backend.close()
    assert session_segments(session) == []


def test_distributed_killed_worker_leaves_no_segments_after_close():
    pipe = PipelineSpec(
        (
            StageSpec(name="scale", fn=_double),
            StageSpec(name="checksum", fn=_slow_checksum),
        )
    )
    backend = DistributedBackend(
        pipe, spawn_workers=3, replicas=[2, 2], max_replicas=3, transport="shm"
    )
    session = backend._codec.session
    try:
        n = 30
        backend.start(make_arrays(n, mbytes=0.3, seed=5))
        time.sleep(0.3)  # let frames spread across workers
        assert backend.running()
        backend.worker_processes[0].kill()
        res = backend.join()
        # The run survived the crash (re-dispatch) with nothing lost...
        assert res.items == n
        assert len(backend.alive_workers()) == 2
    finally:
        backend.close()
    # ...and close reclaimed every segment, including whatever the killed
    # worker created but never delivered.
    assert session_segments(session) == []
