"""Tests for the wall-clock adaptive runner."""

import time

import pytest

from repro.backend import RuntimeAdaptiveRunner, ThreadBackend, local_config
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec


def spec(fns):
    return PipelineSpec(
        tuple(StageSpec(name=f"s{i}", work=0.01, fn=f) for i, f in enumerate(fns))
    )


def _fast(x):
    return x + 1


def _bottleneck(x):
    time.sleep(0.02)
    return x * 2


class TestLocalConfig:
    def test_defaults_are_subsecond(self):
        cfg = local_config()
        assert cfg.interval < 1.0
        assert cfg.cooldown < 2.0

    def test_overrides(self):
        cfg = local_config(interval=0.1, max_replicas=6)
        assert cfg.interval == 0.1
        assert cfg.max_replicas == 6

    def test_invalid_overrides_still_validated(self):
        with pytest.raises(ValueError):
            local_config(min_improvement=0.5)


class TestRuntimeAdaptiveRunner:
    def test_rejects_sim_backend(self):
        with pytest.raises(ValueError, match="cannot reconfigure live"):
            RuntimeAdaptiveRunner(spec([_fast]), "sim")

    def test_virtual_grid_must_cover_stages(self):
        with pytest.raises(ValueError, match="n_virtual_procs"):
            RuntimeAdaptiveRunner(spec([_fast, _fast]), "threads", n_virtual_procs=1)

    def test_grows_bottleneck_on_thread_backend(self):
        pipe = spec([_fast, _bottleneck, _fast])
        runner = RuntimeAdaptiveRunner(
            pipe,
            "threads",
            config=local_config(interval=0.1, cooldown=0.2, settle_time=0.1),
            rollback=False,
            max_replicas=3,
        )
        res = runner.run(range(80))
        assert res.outputs == [(x + 1) * 2 + 1 for x in range(80)]
        assert res.items == 80
        grows = [e for e in res.adaptation_events if e.kind != "rollback"]
        assert len(grows) >= 1
        # The bottleneck stage (1) must have been replicated.
        assert res.final_replicas[1] > 1
        assert res.replica_history[0][1] == (1, 1, 1)
        assert res.replica_history[-1][1][1] == res.final_replicas[1]

    def test_clamped_noop_proposal_records_no_event(self):
        # Warm pool caps the bottleneck at 2 replicas; with a huge virtual
        # grid the policy keeps proposing more, but once the backend sits at
        # the cap the clamped proposal changes nothing physical and must not
        # fabricate adaptation events (or phantom rollbacks).
        pipe = spec([_fast, _bottleneck, _fast])
        runner = RuntimeAdaptiveRunner(
            pipe,
            "threads",
            config=local_config(interval=0.1, cooldown=0.1, settle_time=0.1),
            rollback=False,
            max_replicas=2,
            n_virtual_procs=12,
        )
        res = runner.run(range(120))
        assert res.items == 120
        real_changes = {tuple(c) for _, c in res.replica_history}
        assert len(res.adaptation_events) == len(res.replica_history) - 1
        # Every recorded event corresponds to a distinct physical shape.
        assert len(real_changes) == len(res.replica_history)
        assert res.final_replicas[1] <= 2

    def test_context_manager_closes_owned_backend(self):
        with RuntimeAdaptiveRunner(spec([_fast]), "processes") as runner:
            res = runner.run(range(5))
            assert res.outputs == [x + 1 for x in range(5)]
        # The warm pools must be reaped: a closed backend refuses work.
        with pytest.raises(RuntimeError, match="closed"):
            runner.backend.start([1])

    def test_quiet_pipeline_takes_no_action(self):
        # A balanced, fast pipeline finishes before any decision can act.
        pipe = spec([_fast, _fast])
        runner = RuntimeAdaptiveRunner(pipe, ThreadBackend(pipe))
        res = runner.run(range(30))
        assert res.outputs == [x + 2 for x in range(30)]
        assert res.adaptation_events == []
        assert res.final_replicas == [1, 1]


class TestMeasuredResourceView:
    def test_thread_backend_view_reflects_host_load(self):
        backend = ThreadBackend(spec([_fast]))
        view = backend.resource_view(4)
        assert view.pids() == [0, 1, 2, 3]
        speeds = {view.eff_speed(p) for p in view.pids()}
        assert len(speeds) == 1  # one host: every slot degrades alike
        assert 0.0 < speeds.pop() <= 1.0
        lat, bw = view.link(0, 1)
        assert lat < 1e-3 and bw > 1e6  # in-process links are near-free

    def test_runner_consumes_backend_view(self):
        # The decide step must query the backend's measured view each
        # iteration (falling back to uniform only when it returns None).
        calls = []

        class Spying(ThreadBackend):
            def resource_view(self, n_procs):
                calls.append(n_procs)
                return super().resource_view(n_procs)

        runner = RuntimeAdaptiveRunner(
            spec([_fast, _bottleneck]),
            Spying(spec([_fast, _bottleneck])),
            config=local_config(interval=0.05, cooldown=0.1, settle_time=0.05),
            rollback=False,
        )
        with runner:
            res = runner.run(range(40))
        assert res.outputs == [(x + 1) * 2 for x in range(40)]
        assert calls, "runner never asked the backend for its measured view"
        assert all(n == runner.n_virtual_procs for n in calls)
