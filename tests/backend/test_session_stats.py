"""Session.stats() and byte accounting across every real executor.

The port promises uniform observation: per-stream vs session-cumulative
counters from :meth:`Session.stats`, and :class:`StageSnapshot`
``bytes_in``/``bytes_out`` — populated where payloads actually cross a
serialisation boundary (processes, distributed) and zero where they do not
(threads, asyncio).
"""

import numpy as np
import pytest

from repro.skel.api import open_pipeline

REAL_BACKENDS = ["threads", "asyncio", "processes"]


def _payload(x):
    return np.zeros(256, dtype=np.uint8)


def _grow(a):
    return np.concatenate([a, a])


def _double(x):
    return x * 2


class TestSessionStats:
    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_counters_across_streams(self, backend):
        session = open_pipeline([lambda x: x + 1], backend=backend)
        try:
            st = session.stats()
            assert (st.streams_completed, st.items_total) == (0, 0)
            for i in range(4):
                session.submit(i)
            assert session.drain() == [1, 2, 3, 4]
            st = session.stats()
            assert st.streams_completed == 1
            assert st.items_total == 4
            assert st.stream_submitted == st.stream_delivered == 4
            assert st.backlog == 0
            # second stream on the same warm session: per-stream counters
            # rebase, the cumulative ones keep counting
            for i in range(2):
                session.submit(i)
            session.drain()
            st = session.stats()
            assert st.streams_completed == 2
            assert st.items_total == 6
            assert st.stream_submitted == 2
        finally:
            session.close()

    def test_counters_on_distributed(self):
        session = open_pipeline(
            [_double], backend="distributed", spawn_workers=1
        )
        try:
            for i in range(3):
                session.submit(i)
            assert session.drain() == [0, 2, 4]
            st = session.stats()
            assert st.streams_completed == 1
            assert st.items_total == 3
        finally:
            session.close()


class TestStageBytes:
    @pytest.mark.parametrize("backend", ["threads", "asyncio"])
    def test_in_process_backends_record_no_bytes(self, backend):
        session = open_pipeline([_payload, _grow], backend=backend)
        try:
            for i in range(4):
                session.submit(i)
            session.drain()
            for snap in session.snapshots():
                assert snap.bytes_in == 0.0
                assert snap.bytes_out == 0.0
        finally:
            session.close()

    def test_process_backend_records_frame_bytes(self):
        session = open_pipeline([_payload, _grow], backend="processes")
        try:
            for i in range(4):
                session.submit(i)
            session.drain()
            snaps = session.snapshots()
            assert snaps[0].bytes_in > 0  # encoded input frames
            assert snaps[0].bytes_out > 0  # 256-byte arrays out
            # stage 1 doubles the payload: measurably more bytes out than in
            assert snaps[1].bytes_out > snaps[1].bytes_in
        finally:
            session.close()

    def test_distributed_backend_records_frame_bytes(self):
        session = open_pipeline(
            [_payload, _grow], backend="distributed", spawn_workers=1
        )
        try:
            for i in range(4):
                session.submit(i)
            session.drain()
            snaps = session.snapshots()
            assert snaps[0].bytes_in > 0
            assert snaps[1].bytes_out > snaps[1].bytes_in
        finally:
            session.close()
