"""Tests for the asyncio adapter of the backend port."""

import asyncio
import threading
import time

import pytest

from repro.backend import AsyncioBackend, RuntimeAdaptiveRunner, ThreadBackend, local_config
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.runtime.threads import StageError
from repro.workloads.apps import fetch_pipeline, make_requests


def spec(fns, **kwargs):
    return PipelineSpec(
        tuple(
            StageSpec(name=f"s{i}", work=0.01, fn=f, **kwargs)
            for i, f in enumerate(fns)
        )
    )


async def _ainc(x):
    return x + 1


async def _adouble_slow(x):
    await asyncio.sleep(0.002)
    return x * 2


class TestAsyncioBackend:
    def test_run_ordered_sync_stages(self):
        with AsyncioBackend(spec([lambda x: x + 1, lambda x: x * 2])) as b:
            res = b.run(range(20))
        assert res.outputs == [(x + 1) * 2 for x in range(20)]
        assert res.backend == "asyncio"
        assert res.replica_counts == [1, 1]
        assert res.items == 20

    def test_run_ordered_async_stages(self):
        with AsyncioBackend(spec([_ainc, _adouble_slow]), replicas=[1, 4]) as b:
            res = b.run(range(30))
        assert res.outputs == [(x + 1) * 2 for x in range(30)]
        assert res.replica_counts == [1, 4]

    def test_mixed_sync_and_async_stages(self):
        with AsyncioBackend(spec([_ainc, lambda x: x * 3, _adouble_slow])) as b:
            res = b.run(range(15))
        assert res.outputs == [(x + 1) * 3 * 2 for x in range(15)]

    def test_output_parity_with_threads(self):
        # The shared contract: same workload, same ordered outputs.
        n = 40
        with AsyncioBackend(
            fetch_pipeline(latency=0.002, asynchronous=True), replicas=[4, 1, 4]
        ) as b:
            async_res = b.run(make_requests(n))
        with ThreadBackend(
            fetch_pipeline(latency=0.002), replicas=[4, 1, 4], max_replicas=4
        ) as b:
            thread_res = b.run(make_requests(n))
        assert async_res.outputs == thread_res.outputs
        assert [o["id"] for o in async_res.outputs] == list(range(n))

    def test_replicas_carry_over_between_runs(self):
        with AsyncioBackend(spec([_ainc]), max_replicas=4) as b:
            b.run(range(5))
            b.reconfigure(0, 3)
            res = b.run(range(5))
        assert res.replica_counts == [3]
        assert res.outputs == [x + 1 for x in range(5)]

    def test_live_grow_preserves_order(self):
        with AsyncioBackend(spec([_adouble_slow]), max_replicas=4) as b:
            b.start(range(40))
            while b.items_completed() < 5:
                time.sleep(0.002)
            b.reconfigure(0, 4)
            res = b.join()
        assert res.outputs == [x * 2 for x in range(40)]
        assert res.replica_counts == [4]

    def test_live_shrink_is_lazy_and_safe(self):
        with AsyncioBackend(spec([_adouble_slow]), replicas=[4], max_replicas=4) as b:
            b.start(range(40))
            while b.items_completed() < 5:
                time.sleep(0.002)
            b.reconfigure(0, 1)
            res = b.join()
        assert res.outputs == [x * 2 for x in range(40)]
        assert res.replica_counts == [1]

    def test_reconfigure_clamped_to_max(self):
        with AsyncioBackend(spec([_ainc]), max_replicas=2) as b:
            b.reconfigure(0, 50)
            assert b.replica_counts() == [2]
            with pytest.raises(ValueError, match=">= 1"):
                b.reconfigure(0, 0)

    def test_stateful_stage_clamps_to_one(self):
        with AsyncioBackend(spec([_ainc], replicable=False)) as b:
            assert b.replica_limit(0) == 1
            b.reconfigure(0, 5)
            assert b.replica_counts() == [1]

    def test_observation_surfaces(self):
        with AsyncioBackend(spec([_adouble_slow])) as b:
            b.run(range(12))
            snaps = b.snapshots()
            assert len(snaps) == 1
            assert snaps[0].items_processed == 12
            assert snaps[0].service_time >= 0.002
            assert snaps[0].work_estimate >= 0.002  # eff speed 1.0 locally
            assert b.items_completed() == 12
            assert b.recent_throughput(horizon=60.0) > 0

    def test_stage_error_aborts_and_names_stage(self):
        async def boom(x):
            if x == 7:
                raise RuntimeError("kaput")
            return x

        with AsyncioBackend(spec([_ainc, boom])) as b:
            with pytest.raises(StageError, match="s1"):
                b.run(range(20))
            # The backend must be reusable after a failed run.
            res = b.run([100])
            assert res.outputs == [101]

    def test_sync_stage_error_aborts(self):
        def boom(x):
            raise ValueError("no")

        with AsyncioBackend(spec([boom])) as b:
            with pytest.raises(StageError, match="s0"):
                b.run(range(4))

    def test_close_mid_run_does_not_hang(self):
        b = AsyncioBackend(spec([_adouble_slow]), replicas=[2], max_replicas=2)
        b.start(range(500))
        while b.items_completed() < 3:
            time.sleep(0.002)
        t0 = time.perf_counter()
        b.close()
        assert time.perf_counter() - t0 < 5.0
        with pytest.raises(RuntimeError, match="closed"):
            b.start([1])

    def test_join_before_start_raises(self):
        with AsyncioBackend(spec([_ainc])) as b:
            with pytest.raises(RuntimeError, match="not started"):
                b.join()

    def test_start_while_running_raises(self):
        with AsyncioBackend(spec([_adouble_slow])) as b:
            b.start(range(20))
            with pytest.raises(RuntimeError, match="already running"):
                b.start(range(5))
            b.join()

    def test_validation_mirrors_thread_backend(self):
        with pytest.raises(ValueError, match="replica count"):
            AsyncioBackend(spec([_ainc]), replicas=[0])
        with pytest.raises(ValueError, match="stateful"):
            AsyncioBackend(spec([_ainc], replicable=False), replicas=[2])
        with pytest.raises(ValueError, match="no fn"):
            AsyncioBackend(PipelineSpec((StageSpec(name="bare", work=0.1),)))
        with pytest.raises(ValueError, match="must list"):
            AsyncioBackend(spec([_ainc]), replicas=[1, 1])


class TestAsyncioAdaptation:
    def test_adapts_under_injected_io_bottleneck(self):
        # An injected high-latency fetch stage bottlenecks the pipeline; the
        # runner must observe it on wall-clock measurements and widen the
        # coroutine pool at least once, preserving the 1-for-1 contract.
        def cheap(x):
            return x

        async def slow_fetch(x):
            await asyncio.sleep(0.02)
            return x * 2

        pipe = spec([cheap, slow_fetch, cheap])
        runner = RuntimeAdaptiveRunner(
            pipe,
            "asyncio",
            config=local_config(interval=0.1, cooldown=0.2, settle_time=0.1),
            rollback=False,
            max_replicas=3,
        )
        with runner:
            res = runner.run(range(80))
        assert res.outputs == [x * 2 for x in range(80)]
        assert res.items == 80
        grows = [e for e in res.adaptation_events if e.kind != "rollback"]
        assert len(grows) >= 1
        assert res.final_replicas[1] > 1
        assert res.replica_history[0][1] == (1, 1, 1)

    def test_skel_api_runs_asyncio_adaptive(self):
        from repro.skel.api import pipeline_1for1

        async def slow(x):
            await asyncio.sleep(0.01)
            return x + 1

        out = pipeline_1for1(
            [slow, lambda x: x * 2],
            range(40),
            backend="asyncio",
            adaptive=local_config(interval=0.1, cooldown=0.2, settle_time=0.1),
            max_replicas=3,
        )
        assert out == [(x + 1) * 2 for x in range(40)]


class TestResizableSemaphoreConcurrency:
    def test_limit_bounds_in_flight_and_resizes_live(self):
        peak = 0
        in_flight = 0
        lock = threading.Lock()

        async def tracked(x):
            nonlocal peak, in_flight
            with lock:
                in_flight += 1
                peak = max(peak, in_flight)
            await asyncio.sleep(0.005)
            with lock:
                in_flight -= 1
            return x

        with AsyncioBackend(spec([tracked]), replicas=[2], max_replicas=8) as b:
            b.run(range(30))
            assert peak <= 2
            peak = 0
            b.reconfigure(0, 6)
            b.run(range(60))
        assert peak > 2  # the wider limit was actually used
        assert peak <= 6
