"""Tests for the warm process-pool backend."""

import os
import time

import pytest

from repro.backend import ProcessPoolBackend, ThreadBackend
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.runtime.threads import StageError


def spec(fns, replicable=None):
    replicable = replicable or [True] * len(fns)
    return PipelineSpec(
        tuple(
            StageSpec(name=f"s{i}", work=0.01, fn=f, replicable=r)
            for i, (f, r) in enumerate(zip(fns, replicable))
        )
    )


def _inc(x):
    return x + 1


def _double(x):
    return x * 2


def _tag_pid(x):
    return (x, os.getpid())


def _jitter_square(x):
    time.sleep((x % 3) * 0.002)
    return x * x


def _boom(x):
    if x == 7:
        raise ValueError("bad item")
    return x


class TestProcessPoolBackend:
    def test_results_equal_sequential_composition(self):
        with ProcessPoolBackend(spec([_inc, _double])) as b:
            res = b.run(range(20))
        assert res.outputs == [(x + 1) * 2 for x in range(20)]
        assert res.items == 20
        assert res.elapsed > 0

    def test_matches_thread_backend(self):
        pipe = spec([_inc, _jitter_square, _double])
        expected = ThreadBackend(pipe).run(range(25)).outputs
        with ProcessPoolBackend(pipe) as b:
            assert b.run(range(25)).outputs == expected

    def test_order_preserved_with_replicas(self):
        with ProcessPoolBackend(spec([_jitter_square]), replicas=[3]) as b:
            res = b.run(range(30))
        assert res.outputs == [x * x for x in range(30)]

    def test_empty_input(self):
        with ProcessPoolBackend(spec([_inc])) as b:
            assert b.run([]).outputs == []

    def test_warm_workers_reused_across_runs(self):
        with ProcessPoolBackend(spec([_tag_pid]), replicas=[2], max_replicas=2) as b:
            pids1 = {pid for _, pid in b.run(range(10)).outputs}
            pids2 = {pid for _, pid in b.run(range(10)).outputs}
        assert pids1 == pids2  # same resident processes served both runs
        assert all(pid != os.getpid() for pid in pids1)

    def test_stage_exception_propagates_with_name(self):
        b = ProcessPoolBackend(spec([_inc, _boom]))
        try:
            with pytest.raises(StageError, match="s1") as excinfo:
                b.run(range(20))
            assert isinstance(excinfo.value.original, ValueError)
        finally:
            b.close()

    def test_reconfigure_mid_run_preserves_order(self):
        pipe = spec([_jitter_square])
        with ProcessPoolBackend(pipe, max_replicas=3) as b:
            n = b.start(range(60))
            b.reconfigure(0, 3)
            res = b.join()
        assert n == 60
        assert res.outputs == [x * x for x in range(60)]
        assert res.replica_counts == [3]

    def test_reconfigure_clamps_to_warm_pool(self):
        with ProcessPoolBackend(spec([_inc]), max_replicas=2) as b:
            b.warm()
            b.reconfigure(0, 99)
            assert b.replica_counts() == [2]
            b.reconfigure(0, 1)
            assert b.replica_counts() == [1]

    def test_initial_replicas_expand_pool(self):
        with ProcessPoolBackend(spec([_inc]), replicas=[6], max_replicas=2) as b:
            assert b.replica_limit(0) == 6
            assert b.run(range(8)).outputs == [x + 1 for x in range(8)]

    def test_stateful_stage_cannot_be_replicated(self):
        pipe = spec([_inc], replicable=[False])
        with pytest.raises(ValueError, match="stateful"):
            ProcessPoolBackend(pipe, replicas=[2])
        # The port contract clamps reconfigure to replica_limit (1 for a
        # stateful stage) on every live adapter, rather than raising.
        with ProcessPoolBackend(pipe) as b:
            b.reconfigure(0, 2)
            assert b.replica_counts() == [1]

    def test_missing_fn_rejected(self):
        pipe = PipelineSpec((StageSpec(name="nofn", work=0.1),))
        with pytest.raises(ValueError, match="no fn"):
            ProcessPoolBackend(pipe)

    def test_snapshots_and_progress(self):
        with ProcessPoolBackend(spec([_inc, _double])) as b:
            res = b.run(range(15))
            snaps = b.snapshots()
        assert b.items_completed() == 15
        assert len(snaps) == 2
        assert all(s.items_processed == 15 for s in snaps)
        assert all(s.service_time >= 0 for s in snaps)
        assert res.service_means[0] >= 0

    def test_dead_worker_aborts_instead_of_hanging(self):
        import signal

        def suicide(x):
            if x == 3:
                os.kill(os.getpid(), signal.SIGKILL)
            return x

        b = ProcessPoolBackend(spec([suicide]))
        try:
            with pytest.raises(StageError, match="died mid-run"):
                b.run(range(10))
        finally:
            b.close()

    def test_unpicklable_input_aborts_instead_of_hanging(self):
        import threading

        b = ProcessPoolBackend(spec([_inc]))
        try:
            with pytest.raises(StageError, match="s0"):
                b.run([1, threading.Lock(), 3])  # locks cannot be pickled
        finally:
            b.close()

    def test_close_idempotent_and_cold_restart_rejected(self):
        b = ProcessPoolBackend(spec([_inc]))
        b.run([1, 2])
        b.close()
        b.close()
        with pytest.raises(RuntimeError, match="closed"):
            b.start([1])


def _big_array(x):
    import numpy as np

    return np.full(200_000, float(x))


def _array_total(a):
    return float(a.sum())


class TestProcessTransports:
    @pytest.mark.parametrize("transport", ["pickle", "shm", "auto"])
    def test_identical_outputs_across_transports(self, transport):
        pipe = spec([_big_array, _array_total])
        with ProcessPoolBackend(pipe, transport=transport) as b:
            res = b.run(range(6))
        assert res.outputs == [200_000.0 * x for x in range(6)]

    def test_payload_bytes_recorded_per_stage(self):
        pipe = spec([_big_array, _array_total])
        with ProcessPoolBackend(pipe, transport="auto") as b:
            b.run(range(6))
            snaps = b.snapshots()
        # Stage 0 takes tiny ints in and emits ~1.6 MB arrays; stage 1 the
        # reverse — the measured sizes feed link pricing and reports.
        assert snaps[0].bytes_in < 1000 < snaps[0].bytes_out
        assert snaps[1].bytes_in == pytest.approx(snaps[0].bytes_out)
        assert snaps[1].bytes_out < 1000
        assert snaps[0].bytes_out == pytest.approx(1_600_000, rel=0.05)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown codec"):
            ProcessPoolBackend(spec([_inc]), transport="nope")
