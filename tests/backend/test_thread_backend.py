"""Tests for the thread adapter of the backend port."""

import time

from repro.backend import ThreadBackend
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec


def spec(fns):
    return PipelineSpec(
        tuple(StageSpec(name=f"s{i}", work=0.01, fn=f) for i, f in enumerate(fns))
    )


class TestThreadBackend:
    def test_run_ordered(self):
        b = ThreadBackend(spec([lambda x: x + 1, lambda x: x * 2]))
        res = b.run(range(20))
        assert res.outputs == [(x + 1) * 2 for x in range(20)]
        assert res.backend == "threads"
        assert res.replica_counts == [1, 1]

    def test_replicas_carry_over_between_runs(self):
        b = ThreadBackend(spec([lambda x: x]), max_replicas=4)
        b.run(range(5))
        b.reconfigure(0, 3)
        res = b.run(range(5))
        assert res.replica_counts == [3]
        assert res.outputs == list(range(5))

    def test_live_grow_preserves_order(self):
        def slowish(x):
            time.sleep(0.003)
            return x * x

        b = ThreadBackend(spec([slowish]), max_replicas=4)
        b.start(range(40))
        while b.items_completed() < 5:
            time.sleep(0.002)
        b.reconfigure(0, 3)
        res = b.join()
        assert res.outputs == [x * x for x in range(40)]
        assert res.replica_counts == [3]

    def test_observation_surfaces(self):
        def work(x):
            time.sleep(0.002)
            return x

        b = ThreadBackend(spec([work]))
        b.run(range(12))
        snaps = b.snapshots()
        assert len(snaps) == 1
        assert snaps[0].items_processed == 12
        assert snaps[0].service_time >= 0.002
        # Work is service x the load-derived effective speed (<= 1.0), so
        # the estimate is positive and never exceeds the measured service.
        assert 0 < snaps[0].work_estimate <= snaps[0].service_time
        assert b.items_completed() == 12
        # Completions just happened, so a generous window must see them.
        assert b.recent_throughput(horizon=60.0) > 0

    def test_reconfigure_clamped_to_max(self):
        b = ThreadBackend(spec([lambda x: x]), max_replicas=2)
        b.reconfigure(0, 50)
        assert b.replica_counts() == [2]
