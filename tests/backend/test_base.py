"""Tests for the backend port and registry."""

import pytest

from repro.backend import (
    AsyncioBackend,
    BackendCapabilityError,
    BackendResult,
    ProcessPoolBackend,
    SimBackend,
    ThreadBackend,
    available_backends,
    capability_error,
    make_backend,
    register_backend,
)
from repro.backend.base import _REGISTRY
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec


def pipe():
    return PipelineSpec((StageSpec(name="inc", work=0.01, fn=lambda x: x + 1),))


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"sim", "threads", "processes", "asyncio", "distributed"} <= set(
            available_backends()
        )

    def test_make_backend_by_name(self):
        b = make_backend("threads", pipe())
        assert isinstance(b, ThreadBackend)
        b2 = make_backend("asyncio", pipe())
        assert isinstance(b2, AsyncioBackend)
        b2.close()

    def test_make_backend_passthrough_instance(self):
        b = ThreadBackend(pipe())
        assert make_backend(b) is b
        assert make_backend(b, b.pipeline) is b  # same callables: fine

    def test_make_backend_instance_pipeline_mismatch(self):
        b = ThreadBackend(pipe())
        other = PipelineSpec(
            (StageSpec(name="dbl", work=0.01, fn=lambda x: x * 2),)
        )
        with pytest.raises(ValueError, match="does not run the given stages"):
            make_backend(b, other)

    def test_instance_with_kwargs_rejected(self):
        with pytest.raises(ValueError, match="unexpected kwargs"):
            make_backend(ThreadBackend(pipe()), capacity=4)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu", pipe())

    def test_unknown_name_error_lists_available_sorted(self):
        # The message must name every registered backend, in sorted order,
        # so a typo is self-correcting from the traceback alone.
        with pytest.raises(ValueError) as excinfo:
            make_backend("treads", pipe())
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message
        listed = message.split("available: ", 1)[1].split(", ")
        assert listed == sorted(listed)

    def test_double_registration_leaves_original_intact(self):
        class Impostor(ThreadBackend):
            name = "impostor-test"

        register_backend("impostor-test", Impostor)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend("impostor-test", ThreadBackend)
            # The failed re-registration must not have clobbered the entry.
            assert isinstance(make_backend("impostor-test", pipe()), Impostor)
        finally:
            _REGISTRY.pop("impostor-test", None)

    def test_name_requires_pipeline(self):
        with pytest.raises(ValueError, match="PipelineSpec"):
            make_backend("threads")

    def test_register_custom_and_duplicate(self):
        class Custom(ThreadBackend):
            name = "custom-test"

        register_backend("custom-test", Custom)
        try:
            assert "custom-test" in available_backends()
            with pytest.raises(ValueError, match="already registered"):
                register_backend("custom-test", Custom)
            register_backend("custom-test", Custom, overwrite=True)
            assert isinstance(make_backend("custom-test", pipe()), Custom)
        finally:
            _REGISTRY.pop("custom-test", None)


class TestPortContract:
    def test_factories_accept_common_kwargs(self):
        # Every adapter must tolerate the skel-level kwargs (replicas,
        # capacity) so callers can switch backends without special cases.
        for name in ("sim", "threads", "processes", "asyncio"):
            b = make_backend(name, pipe(), replicas=[1], capacity=4)
            b.close()
        # The distributed adapter too — but it ships fns over sockets, so
        # the stage must be picklable (abs, not this file's lambda).
        dist_pipe = PipelineSpec((StageSpec(name="abs", work=0.01, fn=abs),))
        b = make_backend("distributed", dist_pipe, replicas=[1], capacity=4)
        b.close()

    def test_sim_rejects_live_reconfigure(self):
        b = SimBackend(pipe())
        assert not b.supports_live_reconfigure
        # The refusal must name the backend: a traceback from deep inside
        # the adaptation loop has no other clue which adapter was selected.
        with pytest.raises(BackendCapabilityError, match="'sim'"):
            b.reconfigure(0, 2)

    def test_capability_error_names_backend(self):
        err = capability_error(SimBackend(pipe()), "reconfigure()")
        assert "'sim'" in str(err) and "reconfigure()" in str(err)
        assert "'frob'" in str(capability_error("frob", "live migration"))

    def test_default_resource_view_is_none(self):
        assert SimBackend(pipe()).resource_view(4) is None

    def test_live_backends_advertise_reconfigure(self):
        assert ThreadBackend(pipe()).supports_live_reconfigure
        for b in (ProcessPoolBackend(pipe()), AsyncioBackend(pipe())):
            assert b.supports_live_reconfigure
            b.close()

    def test_result_throughput(self):
        r = BackendResult(backend="x", outputs=[1], items=10, elapsed=2.0)
        assert r.throughput == 5.0
        assert BackendResult(backend="x", outputs=None, items=0, elapsed=0.0).throughput == 0.0

    def test_join_before_start_raises(self):
        for backend in (ThreadBackend(pipe()), SimBackend(pipe()), AsyncioBackend(pipe())):
            with pytest.raises(RuntimeError):
                backend.join()
