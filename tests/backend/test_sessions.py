"""Session lifecycle edges across the streaming Backend port.

Covers the contract every executor's native session must honour: bounded
admission, ordered early results, drain barriers between back-to-back
streams on one warm session, submit-after-close rejection, live
reconfiguration mid-stream, error poisoning, and (for the distributed
backend) exactly-once re-dispatch when a worker dies mid-stream.

Distributed stage functions live at module level: they are pickled by
reference and resolved inside forked worker processes.
"""

import os
import threading
import time

import pytest

from repro.backend import (
    AsyncioBackend,
    DistributedBackend,
    ProcessPoolBackend,
    SessionClosed,
    SimBackend,
    ThreadBackend,
    Ticket,
)
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.runtime.threads import StageError
from repro.skel.api import open_pipeline


def spec(fns, replicable=None):
    replicable = replicable or [True] * len(fns)
    return PipelineSpec(
        tuple(
            StageSpec(name=f"s{i}", work=0.01, fn=f, replicable=r)
            for i, (f, r) in enumerate(zip(fns, replicable))
        )
    )


def _inc(x):
    return x + 1


def _tag_pid(x):
    return (x, os.getpid())


def _jitter_square(x):
    time.sleep((x % 3) * 0.002)
    return x * x


def _slow_double(x):
    time.sleep(0.01)
    return x * 2


class TestSessionLifecycle:
    def test_submit_after_close_raises_everywhere(self):
        backends = [
            ThreadBackend(spec([_inc])),
            AsyncioBackend(spec([_inc])),
            SimBackend(spec([_inc])),
        ]
        for b in backends:
            session = b.open()
            assert session.drain() == []  # no stream open yet
            session.submit(1)
            assert session.drain() == [2]
            session.close()
            with pytest.raises(SessionClosed):
                session.submit(2)
            with pytest.raises(SessionClosed):
                session.drain()
            b.close()

    def test_tickets_carry_stream_scoped_sequences(self):
        with ThreadBackend(spec([_inc])) as b:
            session = b.open()
            assert session.submit(10) == Ticket(stream=0, seq=0)
            assert session.submit(11) == Ticket(stream=0, seq=1)
            session.drain()
            # The next stream restarts its sequence space.
            assert session.submit(12) == Ticket(stream=1, seq=0)
            session.drain()

    def test_results_yield_before_drain(self):
        # The whole point of streaming: the first output is consumable long
        # before the stream is bounded, from a separate consumer thread.
        with ThreadBackend(spec([_inc])) as b:
            session = b.open()
            got: list[int] = []
            first_seen = threading.Event()

            def consume():
                for value in session.results():
                    got.append(value)
                    first_seen.set()

            consumer = threading.Thread(target=consume, daemon=True)
            consumer.start()
            session.submit(0)
            assert first_seen.wait(timeout=5.0), "no result before drain"
            for i in range(1, 10):
                session.submit(i)
            leftovers = session.drain()
            consumer.join(timeout=5.0)
            assert not consumer.is_alive()
            assert got + leftovers == [x + 1 for x in range(10)]

    def test_bounded_admission_backpressure(self):
        release = threading.Event()

        def gated(x):
            release.wait(timeout=10.0)
            return x

        with ThreadBackend(spec([gated]), capacity=1) as b:
            session = b.open(max_inflight=2)
            session.submit(0)
            session.submit(1)
            blocked_past = threading.Event()

            def overfill():
                session.submit(2)  # must block: window is full
                blocked_past.set()

            t = threading.Thread(target=overfill, daemon=True)
            t.start()
            assert not blocked_past.wait(timeout=0.3), "admission window ignored"
            release.set()
            assert blocked_past.wait(timeout=5.0)
            assert session.drain() == [0, 1, 2]

    def test_back_to_back_streams_reuse_warm_thread_workers(self):
        with ThreadBackend(spec([lambda x: threading.get_ident()])) as b:
            session = b.open()
            for i in range(5):
                session.submit(i)
            first = set(session.drain())
            for i in range(5):
                session.submit(i)
            second = set(session.drain())
            stats = session.stats()
        # Same resident worker thread(s) served both streams.
        assert first == second
        assert stats.streams_completed == 2
        assert stats.items_total == 10

    def test_back_to_back_streams_reuse_warm_processes(self):
        with ProcessPoolBackend(spec([_tag_pid]), replicas=[2], max_replicas=2) as b:
            session = b.open()
            for i in range(8):
                session.submit(i)
            pids1 = {pid for _, pid in session.drain()}
            for i in range(8):
                session.submit(i)
            pids2 = {pid for _, pid in session.drain()}
        assert pids1 == pids2
        assert all(pid != os.getpid() for pid in pids1)

    def test_submit_while_draining_rejected(self):
        with ThreadBackend(spec([_slow_double])) as b:
            session = b.open()
            for i in range(10):
                session.submit(i)
            state = {}

            def drain():
                state["out"] = session.drain()

            t = threading.Thread(target=drain, daemon=True)
            t.start()
            time.sleep(0.02)  # let drain() mark end-of-stream
            with pytest.raises(RuntimeError, match="draining"):
                session.submit(99)
            t.join(timeout=5.0)
            assert state["out"] == [x * 2 for x in range(10)]

    def test_run_is_a_session_wrapper(self):
        # run() must go through the session path: the session opened by the
        # first run is the one reused (warm) by the second.
        with ThreadBackend(spec([_inc])) as b:
            b.run(range(5))
            first = b._session
            assert first is not None and not first.closed
            b.run(range(5))
            assert b._session is first
            assert first.stats().streams_completed == 2

    def test_error_poisons_session_and_backend_reopens(self):
        def boom(x):
            if x == 3:
                raise ValueError("bad")
            return x

        with ThreadBackend(spec([boom])) as b:
            session = b.open()
            with pytest.raises(StageError, match="s0"):
                for i in range(10):
                    session.submit(i)
                session.drain()
            assert session.broken
            with pytest.raises(StageError):
                session.submit(0)
            # The backend recovers by opening a fresh session.
            assert b.run([100]).outputs == [100]
            assert b._session is not session


class TestMidStreamReconfigure:
    def test_thread_session_grow_preserves_stream_order(self):
        with ThreadBackend(spec([_jitter_square]), max_replicas=4) as b:
            session = b.open()
            for i in range(15):
                session.submit(i)
            b.reconfigure(0, 4)  # grows the live session's pool mid-stream
            for i in range(15, 40):
                session.submit(i)
            assert session.drain() == [x * x for x in range(40)]
            assert b.replica_counts() == [4]
            # The adapted shape carries into the next stream.
            for i in range(10):
                session.submit(i)
            assert session.drain() == [x * x for x in range(10)]

    def test_asyncio_session_reconfigure_mid_stream(self):
        with AsyncioBackend(spec([_slow_double]), max_replicas=4) as b:
            session = b.open()
            for i in range(10):
                session.submit(i)
            b.reconfigure(0, 4)
            for i in range(10, 30):
                session.submit(i)
            assert session.drain() == [x * 2 for x in range(30)]


class TestOpenPipelineApi:
    def test_producer_consumer_round_trip(self):
        session = open_pipeline([lambda x: x + 1, lambda x: x * 2])
        try:
            got = []
            consumer = threading.Thread(
                target=lambda: got.extend(session.results()), daemon=True
            )
            consumer.start()
            for i in range(20):
                session.submit(i)
            leftovers = session.drain()
            consumer.join(timeout=5.0)
            assert got + leftovers == [(x + 1) * 2 for x in range(20)]
        finally:
            session.close()

    def test_close_releases_owned_backend(self):
        session = open_pipeline([_inc])
        backend = session.backend
        session.submit(1)
        assert session.drain() == [2]
        session.close()
        with pytest.raises(RuntimeError):
            backend.open()  # a name-built backend is closed with its session

    def test_adaptive_attaches_and_detaches(self):
        from repro.backend import local_config

        session = open_pipeline(
            [_slow_double],
            adaptive=local_config(interval=0.05, cooldown=0.1, settle_time=0.05),
            max_replicas=3,
        )
        try:
            for i in range(60):
                session.submit(i)
            assert session.drain() == [x * 2 for x in range(60)]
        finally:
            session.close()

    def test_sim_adaptive_session_rejected(self):
        with pytest.raises(ValueError, match="cannot adapt a live session"):
            open_pipeline([_inc], backend="sim", adaptive=True)

    def test_instance_with_shape_kwargs_rejected(self):
        b = ThreadBackend(spec([_inc]))
        with pytest.raises(ValueError, match="already configured"):
            open_pipeline([_inc], backend=b, replicas=[2])
        b.close()


def _slow_square(x):
    time.sleep(0.01)
    return x * x


class TestDistributedSessionStreams:
    def test_killed_worker_mid_stream_redispatches_exactly_once(self):
        pipe = PipelineSpec(
            (StageSpec(name="square", work=0.01, fn=_slow_square, replicable=True),)
        )
        n = 80
        b = DistributedBackend(
            pipe, spawn_workers=3, replicas=[3], max_replicas=3
        )
        try:
            session = b.open()
            for i in range(n // 2):
                session.submit(i)
            # Kill one worker while its in-flight items are outstanding.
            b.worker_processes[0].kill()
            for i in range(n // 2, n):
                session.submit(i)
            outputs = session.drain()
            # Exactly-once: every item delivered once, in order — nothing
            # lost with the dead worker, nothing duplicated by re-dispatch.
            assert outputs == [x * x for x in range(n)]
            assert len(b.alive_workers()) == 2
            # The survivor pool keeps serving the next stream warm.
            for i in range(10):
                session.submit(i)
            assert session.drain() == [x * x for x in range(10)]
        finally:
            b.close()

    def test_epoch_scopes_streams_on_one_session(self):
        pipe = PipelineSpec(
            (StageSpec(name="square", work=0.001, fn=_slow_square),)
        )
        b = DistributedBackend(pipe, spawn_workers=2)
        try:
            session = b.open()
            epochs = []
            for _ in range(3):
                for i in range(5):
                    session.submit(i)
                session.drain()
                epochs.append(b._epoch)
            assert epochs == sorted(epochs) and len(set(epochs)) == 3
        finally:
            b.close()


class TestSubmitDrainRace:
    def test_parked_submit_cannot_slip_past_drain_barrier(self):
        # A producer blocked in the admission window while another thread
        # drains must NOT inject its item into the ended stream (it would
        # leak into the next stream's output and silently drop an item).
        gate = threading.Event()

        def gated(x):
            gate.wait(timeout=10.0)
            return x

        with ThreadBackend(spec([gated]), capacity=1) as b:
            session = b.open(max_inflight=2)
            for i in range(3):
                session.submit(i)
            state = {}

            def late_submit():
                try:
                    state["ticket"] = session.submit(3)
                except RuntimeError as err:
                    state["err"] = str(err)

            producer = threading.Thread(target=late_submit, daemon=True)
            producer.start()
            time.sleep(0.15)  # park it in the admission wait
            gate.set()
            first = session.drain()
            producer.join(timeout=5.0)
            assert first == [0, 1, 2] or first == [0, 1, 2, 3]
            for i in (100, 101, 102):
                session.submit(i)
            second = session.drain()
            # Stream boundaries never mix: no stream-1 item in stream 2,
            # and nothing of stream 2 lost.
            assert second == [100, 101, 102], second
            if "ticket" in state and state["ticket"].stream == 0:
                assert first[-1] == 3
