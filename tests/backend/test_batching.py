"""Micro-batched hot path acceptance tests (ISSUE 10).

The load-bearing claims: coalescing admitted items into batch frames is
*transparent* — per-item submit/results/Ticket semantics, stream ordering,
mid-stream reconfiguration and exactly-once re-dispatch are unchanged —
while the linger deadline bounds the latency a partial batch can add under
trickle arrivals.

Distributed/process stage functions live at module level: they are pickled
by reference and resolved inside forked worker processes.
"""

import threading
import time

import pytest

from repro.backend import (
    DistributedBackend,
    ProcessPoolBackend,
    ThreadBackend,
)
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.skel.api import open_pipeline
from repro.util.batching import (
    Batch,
    BatchingConfig,
    approx_nbytes,
    map_batch,
    normalize_batching,
)
from repro.util.ordering import SequenceReorderer


def spec(fns):
    return PipelineSpec(
        tuple(
            StageSpec(name=f"s{i}", work=0.01, fn=f, replicable=True)
            for i, f in enumerate(fns)
        )
    )


def _inc(x):
    return x + 1


def _jitter_square(x):
    time.sleep((x % 3) * 0.002)
    return x * x


def _slow_square(x):
    time.sleep(0.01)
    return x * x


# ---------------------------------------------------------------- unit layer
class TestBatchUnit:
    def test_map_batch_preserves_metadata(self):
        b = Batch([1, 2, 3], base_seq=7, gbase=42, bseq=3)
        out = map_batch(lambda x: x * 2, b)
        assert out.items == [2, 4, 6]
        assert (out.base_seq, out.gbase, out.bseq) == (7, 42, 3)
        assert len(out) == 3

    def test_normalize_batching_forms(self):
        assert normalize_batching(None) is None
        assert normalize_batching(False) is None
        cfg = BatchingConfig(max_items=8)
        assert normalize_batching(cfg) is cfg
        assert normalize_batching(16).max_items == 16
        auto = normalize_batching(True)
        assert 4 <= auto.max_items <= 64
        assert normalize_batching("auto").max_items == auto.max_items
        d = normalize_batching({"max_items": 4, "linger_s": 0.5})
        assert (d.max_items, d.linger_s) == (4, 0.5)
        assert 4 <= normalize_batching({"linger_s": 0.1}).max_items <= 64
        with pytest.raises(TypeError):
            normalize_batching(3.5)
        with pytest.raises(ValueError):
            BatchingConfig(max_items=0)

    def test_approx_nbytes(self):
        assert approx_nbytes(b"x" * 100) == 100
        assert approx_nbytes(bytearray(50)) == 50
        assert approx_nbytes(object()) > 0

    def test_auto_sizing_respects_stage_work_hints(self):
        from repro.util.batching import calibrated_batch_items

        # Sub-microsecond stages: hop cost dominates, full count bound.
        fast = calibrated_batch_items(work_hint_s=1e-6)
        assert 4 <= fast <= 64
        assert fast == calibrated_batch_items()
        # Millisecond stages: a batch's service would hold the first
        # result past the linger budget — auto degenerates to per-item.
        assert calibrated_batch_items(work_hint_s=0.002) == 1
        # In between: clamped so max_items x work stays within a linger.
        assert calibrated_batch_items(work_hint_s=0.0005) == min(fast, 4)
        assert normalize_batching("auto", work_hint_s=0.002).max_items == 1

    def test_auto_session_sees_declared_work(self):
        pipe = PipelineSpec(
            (
                StageSpec(name="a", work=0.001, fn=_inc),
                StageSpec(name="b", work=0.002, fn=_inc),
            )
        )
        with ThreadBackend(pipe) as b:
            session = b.open(batching="auto")
            try:
                # 3ms of declared per-item service: batching can only add
                # latency, so the calibrated count bound collapses to 1.
                assert session._bcfg.max_items == 1
            finally:
                session.close()

    def test_push_range_in_order_releases_run(self):
        r = SequenceReorderer()
        assert list(r.push_range(0, ["a", "b", "c"])) == [
            (0, "a"), (1, "b"), (2, "c")
        ]
        assert list(r.push_range(3, ["d"])) == [(3, "d")]

    def test_push_range_buffers_out_of_order(self):
        r = SequenceReorderer()
        assert list(r.push_range(2, ["c", "d"])) == []
        assert list(r.push_range(0, ["a", "b"])) == [
            (0, "a"), (1, "b"), (2, "c"), (3, "d")
        ]

    def test_push_range_rejects_stale_and_duplicate_untouched(self):
        r = SequenceReorderer()
        assert list(r.push_range(0, ["a"])) == [(0, "a")]
        with pytest.raises(ValueError):
            r.push_range(0, ["again"])
        assert list(r.push_range(3, ["d"])) == []
        with pytest.raises(ValueError):
            r.push_range(2, ["c", "dup"])  # 3 already pending
        # The bad range left the reorderer untouched: the gap still fills.
        assert list(r.push_range(1, ["b", "c"])) == [
            (1, "b"), (2, "c"), (3, "d")
        ]


# ------------------------------------------------------------ ordering layer
class TestBatchedStreams:
    def test_ordering_across_batch_boundaries_threads(self):
        # 61 items / batches of 4: a partial tail batch is cut at drain,
        # and jittered services finish batches out of order on purpose.
        with ThreadBackend(spec([_jitter_square]), max_replicas=4) as b:
            session = b.open(batching=4)
            for i in range(61):
                session.submit(i)
            assert session.drain() == [x * x for x in range(61)]

    def test_ordering_across_batch_boundaries_processes(self):
        with ProcessPoolBackend(spec([_inc, _jitter_square])) as b:
            session = b.open(batching=4)
            for i in range(45):
                session.submit(i)
            assert session.drain() == [(x + 1) * (x + 1) for x in range(45)]

    def test_results_stream_while_submitting(self):
        session = open_pipeline([_inc], batching=8)
        try:
            got = []
            consumer = threading.Thread(
                target=lambda: got.extend(session.results()), daemon=True
            )
            consumer.start()
            for i in range(50):
                session.submit(i)
            leftovers = session.drain()
            consumer.join(timeout=5.0)
            assert got + leftovers == [x + 1 for x in range(50)]
        finally:
            session.close()

    def test_back_to_back_streams_on_one_batched_session(self):
        with ThreadBackend(spec([_inc])) as b:
            session = b.open(batching=8)
            for _ in range(3):
                for i in range(20):
                    session.submit(i)
                assert session.drain() == [x + 1 for x in range(20)]

    def test_window_smaller_than_batch_cannot_deadlock(self):
        # With max_inflight < max_items the only admitted items sit in the
        # assembly buffer; the window-full guard must cut the partial batch
        # or admission would never reopen.
        with ThreadBackend(spec([_inc])) as b:
            session = b.open(max_inflight=4, batching=32)
            for i in range(20):
                session.submit(i)
            assert session.drain() == [x + 1 for x in range(20)]

    def test_batched_matches_unbatched_outputs(self):
        inputs = list(range(40))
        want = [x * x for x in inputs]
        for batching in (None, 8, "auto"):
            with ThreadBackend(spec([_jitter_square])) as b:
                session = b.open(batching=batching)
                for x in inputs:
                    session.submit(x)
                assert session.drain() == want, f"batching={batching!r}"

    def test_sim_session_ignores_batching(self):
        session = open_pipeline([_inc], backend="sim", batching=8)
        try:
            for i in range(10):
                session.submit(i)
            assert session.drain() == [x + 1 for x in range(10)]
        finally:
            session.close()


# -------------------------------------------------------------- ticket layer
class TestTicketCompletion:
    def test_ticket_done_and_wait(self):
        with ThreadBackend(spec([_slow_square])) as b:
            session = b.open(batching=4)
            tickets = [session.submit(i) for i in range(8)]
            assert tickets[0].wait(timeout=5.0)
            assert tickets[0].done()
            session.drain()
            assert all(t.done() for t in tickets)
            assert all(t.wait(timeout=0.1) for t in tickets)
            # Tickets from a drained stream stay done on the next stream.
            session.submit(0)
            assert tickets[-1].done()
            session.drain()

    def test_linger_flushes_partial_batch_under_trickle(self):
        # One item against a 64-item bound: only the linger deadline can
        # flush it, and it must complete well before any drain barrier.
        with ThreadBackend(spec([_inc])) as b:
            session = b.open(
                batching={"max_items": 64, "linger_s": 0.02}
            )
            t0 = time.perf_counter()
            ticket = session.submit(41)
            assert ticket.wait(timeout=5.0)
            elapsed = time.perf_counter() - t0
            assert elapsed < 2.0, f"linger flush took {elapsed:.3f}s"
            assert session.drain() == [42]

    def test_wait_timeout_returns_false(self):
        with ThreadBackend(spec([_inc])) as b:
            session = b.open(batching={"max_items": 64, "linger_s": 5.0})
            ticket = session.submit(1)
            # Buffered behind a long linger: a short wait must time out.
            assert not ticket.wait(timeout=0.05)
            assert not ticket.done()
            assert session.drain() == [2]
            assert ticket.done()


# ----------------------------------------------------------- adaptive layer
class TestBatchedReconfigure:
    def test_mid_stream_reconfigure_with_batches_in_flight(self):
        with ThreadBackend(spec([_jitter_square]), max_replicas=4) as b:
            session = b.open(batching=4)
            for i in range(15):
                session.submit(i)
            b.reconfigure(0, 4)  # grow the pool with batches in flight
            for i in range(15, 40):
                session.submit(i)
            assert session.drain() == [x * x for x in range(40)]
            assert b.replica_counts() == [4]
            # The adapted shape serves the next batched stream warm.
            for i in range(10):
                session.submit(i)
            assert session.drain() == [x * x for x in range(10)]

    def test_auto_window_session_completes(self):
        with ThreadBackend(spec([_inc])) as b:
            session = b.open(max_inflight="auto", batching="auto")
            assert isinstance(session.max_inflight, int)
            assert session.max_inflight >= 8
            for i in range(200):
                session.submit(i)
            assert session.drain() == [x + 1 for x in range(200)]


# -------------------------------------------------------- distributed layer
class TestBatchedDistributed:
    def test_killed_worker_with_batch_in_flight_exactly_once(self):
        pipe = PipelineSpec(
            (StageSpec(name="square", work=0.01, fn=_slow_square,
                       replicable=True),)
        )
        n = 80
        b = DistributedBackend(
            pipe, spawn_workers=3, replicas=[3], max_replicas=3
        )
        try:
            session = b.open(batching=8)
            for i in range(n // 2):
                session.submit(i)
            # Kill one worker while whole batch frames are outstanding on
            # it: the coordinator re-dispatches each lost frame once, so
            # every member item is delivered exactly once.
            b.worker_processes[0].kill()
            for i in range(n // 2, n):
                session.submit(i)
            assert session.drain() == [x * x for x in range(n)]
            assert len(b.alive_workers()) == 2
            # The survivor pool keeps serving the next batched stream.
            for i in range(10):
                session.submit(i)
            assert session.drain() == [x * x for x in range(10)]
        finally:
            b.close()


# -------------------------------------------------------------- event layer
class TestBatchEvents:
    def test_journal_carries_batch_lifecycle(self, tmp_path):
        from repro.obs import read_journal

        path = tmp_path / "batched.jsonl"
        session = open_pipeline([_inc], batching=8, telemetry=path)
        try:
            for i in range(32):
                session.submit(i)
            assert session.drain() == [x + 1 for x in range(32)]
        finally:
            session.close()
        recs = list(read_journal(path))
        asm = [r for r in recs if r["kind"] == "batch.assemble"]
        split = [r for r in recs if r["kind"] == "batch.split"]
        done = [r for r in recs if r["kind"] == "item.complete"]
        assert asm and split
        assert sum(r["items"] for r in asm) == 32
        assert sum(r["items"] for r in split) == 32
        # The per-item timeline is preserved: one completion per item, in
        # delivery order, with real item seqs (not batch seqs).
        assert [r["seq"] for r in done] == list(range(32))
