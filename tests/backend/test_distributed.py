"""Tests for the distributed socket backend (protocol, coordinator, worker).

Stage functions live at module level: they are pickled by reference and
resolved inside worker processes (forked from this one, so the test module
is importable there without an installed package).
"""

import pickle
import socket
import threading
import time

import pytest

from repro.backend import DistributedBackend, available_backends, make_backend
from repro.backend.distributed.protocol import (
    MAX_FRAME,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.core.pipeline import PipelineSpec
from repro.core.stage import StageSpec
from repro.skel.api import pipeline_1for1
from repro.transport import PickleCodec


def _inc(x):
    return x + 1


def _slow_triple(x):
    time.sleep(0.01)
    return x * 3


def _boom(x):
    raise ValueError(f"boom on {x}")


def _pipe():
    return PipelineSpec(
        (
            StageSpec(name="inc", work=0.001, fn=_inc),
            StageSpec(name="triple", work=0.01, fn=_slow_triple),
        )
    )


def _expected(inputs):
    return [(x + 1) * 3 for x in inputs]


@pytest.fixture
def backend():
    b = DistributedBackend(_pipe(), spawn_workers=3, max_replicas=3)
    try:
        yield b
    finally:
        b.close()


class TestProtocol:
    def test_frame_roundtrip(self):
        a, b = socket.socketpair()
        try:
            msgs = [("hello", "w0", 4, 0.5), ("task", 1, 0, 2, 3, b"x" * 1000, 0.0)]
            for msg in msgs:
                send_frame(a, msg)
            assert [recv_frame(b) for _ in msgs] == msgs
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x10abc")  # announces 16 bytes, sends 3
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_both_ways(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
                send_frame(a, b"x" * (MAX_FRAME + 1))
            a.sendall((MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="announced"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestRegistration:
    def test_registered_in_registry(self):
        assert "distributed" in available_backends()
        b = make_backend("distributed", _pipe(), spawn_workers=0)
        assert isinstance(b, DistributedBackend)
        b.close()

    def test_workers_register_and_advertise(self, backend):
        backend.warm()
        workers = backend.alive_workers()
        assert len(workers) == 3
        for w in workers:
            assert w["cores"] == 1
            assert 0.0 < w["speed"] <= 1.0

    def test_unpicklable_stage_fn_rejected_at_construction(self):
        bad = PipelineSpec(
            (StageSpec(name="lam", work=0.01, fn=lambda x: x + 1),)
        )
        with pytest.raises(ValueError, match="not picklable"):
            DistributedBackend(bad, spawn_workers=0)

    def test_external_worker_cli_registers(self):
        # A worker started the CLI way (``--connect host:port``) registers
        # and serves; spawn_workers=0 models the external-deployment path.
        # Fresh subprocesses cannot import this test module, so the stages
        # are builtins — picklable by reference on any worker.
        import subprocess
        import sys

        pipe = PipelineSpec(
            (
                StageSpec(name="abs", work=0.001, fn=abs),
                StageSpec(name="float", work=0.001, fn=float),
            )
        )
        b = DistributedBackend(pipe, spawn_workers=0)
        try:
            b.warm()
            host, port = b.listen_address
            procs = [
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.backend.distributed.worker",
                        "--connect",
                        f"{host}:{port}",
                        "--name",
                        f"cli-{k}",
                    ]
                )
                for k in range(2)
            ]
            try:
                b.wait_for_workers(2, timeout=30.0)
                res = b.run(range(-20, 0))
                assert res.outputs == [float(abs(x)) for x in range(-20, 0)]
                names = {w["name"] for w in b.alive_workers()}
                assert names == {"cli-0", "cli-1"}
            finally:
                b.close()
                for p in procs:
                    p.wait(timeout=10)
        finally:
            b.close()


class TestEndToEnd:
    def test_ordered_outputs_on_three_workers(self, backend):
        res = backend.run(range(50))
        assert res.outputs == _expected(range(50))
        assert res.items == 50
        assert len(backend.alive_workers()) == 3

    def test_through_skel_api(self):
        inputs = list(range(25))
        out = pipeline_1for1(
            [_inc, _slow_triple], inputs, backend="distributed", spawn_workers=3
        )
        assert out == _expected(inputs)

    def test_reusable_across_runs(self, backend):
        first = backend.run(range(15))
        second = backend.run(range(30))
        assert first.outputs == _expected(range(15))
        assert second.outputs == _expected(range(30))

    def test_stage_error_aborts_and_names_stage(self):
        pipe = PipelineSpec((StageSpec(name="boom", work=0.01, fn=_boom),))
        b = DistributedBackend(pipe, spawn_workers=1)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                b.run(range(5))
        finally:
            b.close()

    def test_service_and_transfer_measured(self, backend):
        backend.run(range(40))
        snaps = backend.snapshots()
        # The sleeping stage's measured service must reflect the sleep, and
        # every worker must have a measured (non-default) link estimate.
        assert snaps[1].service_time >= 0.009
        assert snaps[1].work_estimate > 0
        assert backend.items_completed() == 40


class TestFailureHandling:
    def test_worker_crash_mid_run_redispatches(self):
        pipe = PipelineSpec((StageSpec(name="triple", work=0.02, fn=_slow_triple),))
        b = DistributedBackend(pipe, spawn_workers=3, replicas=[3], max_replicas=3)
        try:
            n = 90
            b.start(range(n))
            time.sleep(0.3)  # let items spread over all three workers
            assert b.running()
            b.worker_processes[0].kill()
            res = b.join()
            # No lost items, no reordering, and the local view shrank.
            assert res.items == n
            assert res.outputs == [x * 3 for x in range(n)]
            assert len(b.alive_workers()) == 2
            assert all(
                wid in {w["id"] for w in b.alive_workers()}
                for placement in b.replica_placement()
                for wid in placement
            )
        finally:
            b.close()

    def test_all_stage_replicas_lost_replaced_on_survivor(self):
        pipe = PipelineSpec((StageSpec(name="triple", work=0.02, fn=_slow_triple),))
        b = DistributedBackend(pipe, spawn_workers=2, replicas=[1])
        try:
            b.start(range(60))
            time.sleep(0.2)
            # Kill the worker hosting the only replica of the only stage.
            (hosting_wid,) = b.replica_placement()[0]
            victim = next(
                w for w in b._workers.values() if w.id == hosting_wid
            )
            assert victim.proc is not None
            victim.proc.kill()
            res = b.join()
            assert res.outputs == [x * 3 for x in range(60)]
            assert b.replica_placement()[0]  # re-homed on the survivor
        finally:
            b.close()

    def test_view_shrinks_after_death(self):
        b = DistributedBackend(_pipe(), spawn_workers=3)
        try:
            b.warm()
            view = b.resource_view(6)
            assert view is not None and len(view.pids()) == 6
            b.worker_processes[0].kill()
            deadline = time.monotonic() + 10
            while len(b.alive_workers()) > 2 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert len(b.alive_workers()) == 2
            # Same pid universe, remapped onto survivors.
            view = b.resource_view(6)
            assert len(view.pids()) == 6
        finally:
            b.close()


class TestReconfigure:
    def test_grow_spreads_across_workers(self, backend):
        backend.warm()
        backend.reconfigure(1, 3)
        placement = backend.replica_placement()[1]
        assert sum(placement.values()) == 3
        assert len(placement) >= 2  # replicas on at least two workers
        res = backend.run(range(40))
        assert res.outputs == _expected(range(40))
        assert backend.replica_counts()[1] == 3

    def test_shrink_without_drain_mid_run(self, backend):
        backend.warm()
        backend.reconfigure(1, 3)
        backend.start(range(60))
        time.sleep(0.15)
        backend.reconfigure(1, 1)
        res = backend.join()
        assert res.outputs == _expected(range(60))
        assert backend.replica_counts()[1] == 1

    def test_move_replica_between_workers_mid_run(self, backend):
        backend.warm()
        backend.start(range(80))
        time.sleep(0.1)
        (src,) = backend.replica_placement()[1]
        dst = next(
            w["id"] for w in backend.alive_workers() if w["id"] != src
        )
        backend.move_replica(1, src, dst)
        placement = backend.replica_placement()[1]
        assert list(placement) == [dst]
        res = backend.join()
        assert res.outputs == _expected(range(80))

    def test_clamps_to_limit_and_rejects_zero(self, backend):
        backend.warm()
        with pytest.raises(ValueError, match=">= 1"):
            backend.reconfigure(1, 0)
        backend.reconfigure(1, 99)
        assert backend.replica_counts()[1] == backend.max_replicas
        # Stage 0 is replicable too, but a stateful stage would clamp to 1.
        assert backend.replica_limit(1) == backend.max_replicas


class TestResourceView:
    def test_no_workers_means_no_view(self):
        b = DistributedBackend(_pipe(), spawn_workers=0)
        try:
            assert b.resource_view(4) is None
        finally:
            b.close()

    def test_links_cheap_within_worker_costly_across(self):
        b = DistributedBackend(_pipe(), spawn_workers=2)
        try:
            b.run(range(20))  # populate link measurements
            view = b.resource_view(4)
            # pids 0,2 share worker 0; pids 1,3 share worker 1 (round-robin).
            same_lat, _ = view.link(0, 2)
            cross_lat, _ = view.link(0, 1)
            assert same_lat < cross_lat
            for pid in view.pids():
                assert 0 < view.eff_speed(pid) <= 1.0
        finally:
            b.close()


def test_worker_rejects_task_for_unknown_slot():
    # A task can race a retire: the worker must bounce it back (reject),
    # never silently drop it — that is what keeps re-dispatch lossless.
    from repro.backend.distributed.worker import WorkerAgent

    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    host, port = server.getsockname()
    agent = WorkerAgent(host, port, name="reject-test")
    t = threading.Thread(target=agent.run, daemon=True)
    t.start()
    sock, _ = server.accept()
    try:
        sock.settimeout(10.0)
        hello = recv_frame(sock)
        assert hello[0] == "hello" and hello[1] == "reject-test"
        send_frame(
            sock, ("welcome", 0, 5.0, 8, {"name": "pickle", "session": "t", "probe": None})
        )
        shm_ok = recv_frame(sock)
        assert shm_ok == ("shm_ok", False)  # no probe offered -> inline only
        payload = PickleCodec().encode("payload")
        send_frame(sock, ("task", 1, 0, 7, 3, payload, 0.0))
        frame = recv_frame(sock)
        assert frame == ("reject", 1, 0, 7, 3)
        send_frame(sock, ("shutdown",))
        t.join(timeout=5.0)
        assert not t.is_alive()
    finally:
        sock.close()
        server.close()


def test_worker_task_payloads_forwarded_pickled():
    # Items cross stages as pickled bytes: a payload type with costly or
    # odd pickling still round-trips exactly once per hop.
    data = [{"k": [1, 2, 3], "v": ("x", 4.5)}, {"k": [], "v": (None, 0.0)}]
    roundtripped = pickle.loads(pickle.dumps(data))
    assert roundtripped == data


def test_concurrent_close_is_safe():
    b = DistributedBackend(_pipe(), spawn_workers=2)
    b.warm()
    threads = [threading.Thread(target=b.close) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def _mk_array(x):
    import numpy as np

    return np.full(150_000, float(x))


def _scale_array(a):
    return a * 2.0


def _sum_array(a):
    return float(a.sum())


class TestNegotiatedTransport:
    def test_local_workers_negotiate_shm_and_match_pickle(self):
        pipe = PipelineSpec(
            (
                StageSpec(name="mk", work=0.001, fn=_mk_array),
                StageSpec(name="sum", work=0.001, fn=_sum_array),
            )
        )
        results = {}
        for transport in ("pickle", "shm"):
            with DistributedBackend(
                pipe, spawn_workers=2, transport=transport
            ) as b:
                results[transport] = b.run(range(8)).outputs
                workers = b.alive_workers()
            if transport == "shm":
                # Forked local workers share /dev/shm with the coordinator.
                assert all(w["shm_ok"] for w in workers)
            else:
                assert not any(w["shm_ok"] for w in workers)
        assert results["shm"] == results["pickle"] == [150_000.0 * x for x in range(8)]

    def test_resource_view_links_carry_fitted_latency_bandwidth(self):
        from repro.workloads.payloads import make_arrays

        pipe = PipelineSpec(
            (
                StageSpec(name="scale", work=0.001, fn=_scale_array),
                StageSpec(name="sum", work=0.001, fn=_sum_array),
            )
        )
        # A mixed-size stream: the size-stratified estimator needs spread
        # across buckets before it commits to a bandwidth (uniform sizes
        # keep the honest latency-only fallback).
        items = make_arrays(24, mix=[0.02, 1.0], seed=9)
        with DistributedBackend(pipe, spawn_workers=2, transport="auto") as b:
            b.run(items)
            models = b.link_models()
            view = b.resource_view(2)
        assert models and all(m.n_samples > 0 for m in models.values())
        assert any(m.fitted for m in models.values())
        lat, bw = view.link(0, 1)
        fits = list(models.values())
        assert lat == pytest.approx(fits[0].latency_s + fits[1].latency_s)
        assert bw == pytest.approx(min(f.bandwidth_Bps for f in fits))

    def test_bandwidth_starved_worker_gets_low_fitted_bandwidth(self):
        from repro.workloads.payloads import make_arrays

        pipe = PipelineSpec(
            (
                StageSpec(name="scale", work=0.001, fn=_scale_array),
                StageSpec(name="sum", work=0.001, fn=_sum_array),
            )
        )
        with DistributedBackend(
            pipe,
            spawn_workers=2,
            capacity=2,
            transport="auto",
            worker_link_bandwidths=[0.0, 3e7],
        ) as b:
            # Mixed sizes: the estimator only commits to a bandwidth once
            # its buckets show size spread (uniform streams keep the
            # latency-only fallback by design).
            b.run(make_arrays(24, mix=[0.02, 1.0], seed=11))
            rows = {w["name"]: w for w in b.alive_workers()}
        healthy, starved = rows["local-0"], rows["local-1"]

        def cost_1mb(w):
            return w["link_s"] + 1e6 / w["bandwidth_Bps"]

        # The injected 30 MB/s link must make 1 MB transfers visibly more
        # expensive on the starved worker in the fitted model.
        assert cost_1mb(starved) > 3 * cost_1mb(healthy), rows
