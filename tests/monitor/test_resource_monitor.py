"""Tests for the simulated resource monitor."""

import pytest

from repro.gridsim.engine import Simulator
from repro.gridsim.spec import heterogeneous_grid, uniform_grid
from repro.monitor.resource_monitor import (
    SPEED_FLOOR,
    HostLoadSampler,
    ResourceMonitor,
    load_to_speed,
)
from repro.util.rng import derive_rng


class TestSampling:
    def test_samples_at_period(self):
        sim = Simulator()
        grid = uniform_grid(2)
        mon = ResourceMonitor(sim, grid, period=1.0, noise_std=0.0)
        sim.run(until=10.5)
        # t=0 plus one per second through t=10.
        assert mon.samples_taken == 11

    def test_estimates_track_truth_without_noise(self):
        sim = Simulator()
        grid = uniform_grid(2)
        mon = ResourceMonitor(sim, grid, period=1.0, noise_std=0.0)
        sim.run(until=5.0)
        est = mon.estimates()
        assert est.availability[0] == pytest.approx(1.0)
        assert est.availability[1] == pytest.approx(1.0)

    def test_detects_perturbation(self):
        sim = Simulator()
        grid = uniform_grid(2)
        grid.perturb(1, [(10.0, 0.2)])
        mon = ResourceMonitor(sim, grid, period=1.0, noise_std=0.0)
        sim.run(until=40.0)
        est = mon.estimates()
        assert est.availability[0] == pytest.approx(1.0, abs=0.05)
        assert est.availability[1] == pytest.approx(0.2, abs=0.1)

    def test_noise_does_not_bias_grossly(self):
        sim = Simulator()
        grid = uniform_grid(1)
        mon = ResourceMonitor(
            sim, grid, period=0.5, noise_std=0.05, rng=derive_rng(0, "noise")
        )
        sim.run(until=60.0)
        est = mon.estimates()
        assert est.availability[0] == pytest.approx(1.0, abs=0.1)

    def test_bandwidth_estimates_present(self):
        sim = Simulator()
        grid = heterogeneous_grid([1.0, 1.0], bandwidth=5e6)
        mon = ResourceMonitor(sim, grid, period=1.0, noise_std=0.0)
        sim.run(until=3.0)
        est = mon.estimates()
        assert est.bandwidth[(0, 1)] == pytest.approx(5e6, rel=0.01)
        assert est.latency[(0, 1)] > 0

    def test_estimates_before_any_sample_are_optimistic(self):
        sim = Simulator()
        grid = uniform_grid(1)
        mon = ResourceMonitor(sim, grid, period=1.0, noise_std=0.0)
        # No sim.run(): only the constructor sample at t=0 exists after run;
        # but estimates() must work even then.
        est = mon.estimates()
        assert 0.0 < est.availability[0] <= 1.0

    def test_stop_halts_sampling(self):
        sim = Simulator()
        grid = uniform_grid(1)
        mon = ResourceMonitor(sim, grid, period=1.0, noise_std=0.0)
        sim.run(until=2.5)
        mon.stop()
        sim.run(until=10.0)
        assert mon.samples_taken == 3  # t=0,1,2 then stopped

    def test_invalid_period(self):
        sim = Simulator()
        grid = uniform_grid(1)
        with pytest.raises(ValueError):
            ResourceMonitor(sim, grid, period=0.0)

    def test_availability_stream_accessible(self):
        sim = Simulator()
        grid = uniform_grid(1)
        mon = ResourceMonitor(sim, grid, period=1.0, noise_std=0.0)
        sim.run(until=5.0)
        stream = mon.availability_stream(0)
        assert len(stream) == 6


class TestHostLoadSampler:
    """The availability-aware local view: os.getloadavg -> effective speed."""

    def test_load_to_speed_bounds(self):
        assert load_to_speed(0.0, 4) == 1.0
        assert load_to_speed(2.0, 4) == pytest.approx(0.5)
        assert load_to_speed(100.0, 4) == SPEED_FLOOR  # saturated, floored
        assert load_to_speed(-1.0, 4) == 1.0  # negative load clamps to free
        with pytest.raises(ValueError):
            load_to_speed(1.0, 0)

    def test_sampler_tracks_injected_load(self, monkeypatch):
        readings = iter([(0.0, 0, 0), (4.0, 0, 0), (4.0, 0, 0), (4.0, 0, 0)])
        monkeypatch.setattr("os.getloadavg", lambda: next(readings))
        sampler = HostLoadSampler(cores=4, alpha=1.0, min_interval=0.0)
        assert sampler.effective_speed() == pytest.approx(1.0)
        # alpha=1.0 means no smoothing: the next sample lands directly,
        # floored at SPEED_FLOOR (a saturated host still makes progress).
        assert sampler.effective_speed() == pytest.approx(SPEED_FLOOR)

    def test_sampler_smooths_with_ewma(self, monkeypatch):
        values = iter([0.0, 4.0, 4.0, 4.0, 4.0])
        monkeypatch.setattr("os.getloadavg", lambda: (next(values), 0, 0))
        sampler = HostLoadSampler(cores=4, alpha=0.5, min_interval=0.0)
        first = sampler.effective_speed()
        second = sampler.effective_speed()
        assert first == pytest.approx(1.0)
        # One EWMA step toward the floor, not all the way.
        assert SPEED_FLOOR < second < first

    def test_sampler_rate_limits_getloadavg(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            "os.getloadavg", lambda: calls.append(1) or (0.5, 0, 0)
        )
        sampler = HostLoadSampler(cores=2, min_interval=60.0)
        for _ in range(10):
            sampler.effective_speed()
        assert len(calls) == 1

    def test_sampler_without_getloadavg_is_dedicated(self, monkeypatch):
        monkeypatch.delattr("os.getloadavg")
        sampler = HostLoadSampler(cores=2, min_interval=0.0)
        assert sampler.effective_speed() == 1.0
        assert sampler.sample() == 0.0
