"""Tests for stage instrumentation."""

import math

import pytest

from repro.monitor.instrument import PipelineInstrumentation, StageMetrics


class TestStageMetrics:
    def test_service_recording(self):
        m = StageMetrics(0)
        m.record_service(0.5, effective_speed=2.0)
        m.record_service(0.7, effective_speed=2.0)
        snap = m.snapshot()
        assert snap.items_processed == 2
        assert snap.service_time == pytest.approx(0.6)
        # work = service x speed
        assert snap.work_estimate == pytest.approx(1.2)

    def test_window_forgets_old_behaviour(self):
        m = StageMetrics(0, window=4)
        for _ in range(10):
            m.record_service(1.0, 1.0)
        for _ in range(4):
            m.record_service(5.0, 1.0)
        assert m.snapshot().service_time == pytest.approx(5.0)

    def test_transfer_and_queue(self):
        m = StageMetrics(1)
        m.record_transfer(0.1)
        m.record_queue_length(3)
        snap = m.snapshot()
        assert snap.transfer_time == pytest.approx(0.1)
        assert snap.queue_length == pytest.approx(3.0)

    def test_empty_snapshot(self):
        snap = StageMetrics(0).snapshot()
        assert snap.items_processed == 0
        assert math.isnan(snap.service_time)
        assert snap.transfer_time == 0.0

    def test_cv_of_constant_service_is_zero(self):
        m = StageMetrics(0)
        for _ in range(5):
            m.record_service(0.3, 1.0)
        assert m.snapshot().service_cv == pytest.approx(0.0, abs=1e-9)


class TestPipelineInstrumentation:
    def test_requires_stages(self):
        with pytest.raises(ValueError):
            PipelineInstrumentation(0)

    def test_completion_accounting(self):
        pi = PipelineInstrumentation(2)
        for t in (1.0, 2.0, 3.0):
            pi.record_completion(t)
        assert pi.items_completed == 3

    def test_overall_throughput(self):
        pi = PipelineInstrumentation(1)
        for t in (1.0, 2.0, 3.0, 4.0):
            pi.record_completion(t)
        assert pi.overall_throughput() == pytest.approx(1.0)
        assert pi.overall_throughput(end_time=8.0) == pytest.approx(0.5)

    def test_recent_throughput_windows(self):
        pi = PipelineInstrumentation(1)
        for t in (1.0, 2.0, 9.0, 10.0):
            pi.record_completion(t)
        assert pi.recent_throughput(now=10.0, horizon=2.0) == pytest.approx(1.0)

    def test_recent_throughput_nan_when_no_data(self):
        pi = PipelineInstrumentation(1)
        assert math.isnan(pi.recent_throughput(now=10.0, horizon=2.0))

    def test_recent_throughput_invalid_horizon(self):
        pi = PipelineInstrumentation(1)
        with pytest.raises(ValueError):
            pi.recent_throughput(now=1.0, horizon=0.0)

    def test_bottleneck_detection(self):
        pi = PipelineInstrumentation(3)
        pi.stages[0].record_service(0.1, 1.0)
        pi.stages[1].record_service(0.9, 1.0)
        pi.stages[2].record_service(0.2, 1.0)
        bn = pi.bottleneck()
        assert bn is not None
        assert bn.stage_index == 1

    def test_bottleneck_none_before_data(self):
        assert PipelineInstrumentation(2).bottleneck() is None

    def test_empty_throughput_zero(self):
        pi = PipelineInstrumentation(1)
        assert pi.overall_throughput() == 0.0


class TestPayloadByteAccounting:
    def test_snapshot_defaults_to_zero_bytes(self):
        m = StageMetrics(0)
        m.record_service(0.1, 1.0)
        snap = m.snapshot()
        assert snap.bytes_in == 0.0 and snap.bytes_out == 0.0

    def test_window_means_and_totals(self):
        m = StageMetrics(0)
        for n in (100, 300):
            m.record_bytes_in(n)
            m.record_bytes_out(2 * n)
        snap = m.snapshot()
        assert snap.bytes_in == pytest.approx(200.0)
        assert snap.bytes_out == pytest.approx(400.0)
        assert m.total_bytes_in == 400 and m.total_bytes_out == 800

    def test_log2_histograms(self):
        m = StageMetrics(0)
        for n in (1, 1, 3, 1024, 1_000_000):
            m.record_bytes_in(n)
        # bucket = bit_length: 1 -> 1, 3 -> 2, 1024 -> 11, 1e6 -> 20
        assert m.bytes_in_hist == {1: 2, 2: 1, 11: 1, 20: 1}
        assert m.bytes_out_hist == {}

    def test_negative_sizes_clamped(self):
        m = StageMetrics(0)
        m.record_bytes_out(-5)
        assert m.total_bytes_out == 0
        assert m.bytes_out_hist == {0: 1}
