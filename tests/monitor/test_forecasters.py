"""Tests for the forecaster library and the NWS-style ensemble."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.monitor.forecasters import (
    EnsembleForecaster,
    ExponentialSmoothingForecaster,
    LastValueForecaster,
    RunningMeanForecaster,
    SlidingMeanForecaster,
    SlidingMedianForecaster,
    default_ensemble,
)

values = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestIndividualForecasters:
    def test_all_nan_before_data(self):
        for fc in (
            LastValueForecaster(),
            RunningMeanForecaster(),
            SlidingMeanForecaster(4),
            SlidingMedianForecaster(4),
            ExponentialSmoothingForecaster(0.5),
        ):
            assert math.isnan(fc.predict()), fc.name

    def test_last_value(self):
        fc = LastValueForecaster()
        fc.observe(3.0)
        fc.observe(7.0)
        assert fc.predict() == 7.0

    def test_running_mean(self):
        fc = RunningMeanForecaster()
        for v in (2.0, 4.0, 6.0):
            fc.observe(v)
        assert fc.predict() == pytest.approx(4.0)

    def test_sliding_mean_window(self):
        fc = SlidingMeanForecaster(2)
        for v in (100.0, 1.0, 3.0):
            fc.observe(v)
        assert fc.predict() == pytest.approx(2.0)

    def test_sliding_median_robust_to_outlier(self):
        fc = SlidingMedianForecaster(5)
        for v in (1.0, 1.0, 1.0, 1.0, 1000.0):
            fc.observe(v)
        assert fc.predict() == 1.0

    def test_ewma(self):
        fc = ExponentialSmoothingForecaster(0.5)
        fc.observe(0.0)
        fc.observe(10.0)
        assert fc.predict() == pytest.approx(5.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SlidingMeanForecaster(0)
        with pytest.raises(ValueError):
            ExponentialSmoothingForecaster(0.0)

    @given(st.lists(values, min_size=1, max_size=100))
    def test_property_constant_series_predicted_exactly(self, vs):
        # Any forecaster fed a constant series must predict that constant.
        const = vs[0]
        for fc in (
            LastValueForecaster(),
            RunningMeanForecaster(),
            SlidingMeanForecaster(5),
            SlidingMedianForecaster(5),
            ExponentialSmoothingForecaster(0.3),
            default_ensemble(),
        ):
            for _ in range(10):
                fc.observe(const)
            assert fc.predict() == pytest.approx(const, rel=1e-9, abs=1e-12), fc.name


class TestEnsemble:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            EnsembleForecaster([])

    def test_picks_last_value_on_random_walk(self):
        rng = np.random.default_rng(0)
        ens = default_ensemble()
        x = 100.0
        for _ in range(300):
            x += rng.normal(0, 5.0)
            ens.observe(x)
        assert ens.best_member().name == "last"

    def test_picks_stationary_estimator_on_noise(self):
        # i.i.d. noise around a constant: a mean-like member must beat
        # last-value.
        rng = np.random.default_rng(1)
        ens = default_ensemble()
        for _ in range(500):
            ens.observe(50.0 + rng.normal(0, 10.0))
        assert ens.best_member().name != "last"

    def test_member_maes_populated(self):
        ens = default_ensemble()
        for v in (1.0, 2.0, 3.0, 4.0):
            ens.observe(v)
        maes = ens.member_maes()
        assert "last" in maes
        assert all(m >= 0 for m in maes.values() if not math.isinf(m))

    def test_prediction_tracks_level_shift(self):
        # After a step change, the ensemble must converge to the new level.
        ens = default_ensemble()
        for _ in range(50):
            ens.observe(1.0)
        for _ in range(50):
            ens.observe(10.0)
        assert ens.predict() == pytest.approx(10.0, rel=0.15)

    def test_ensemble_never_worse_than_worst_member(self):
        # On any series, ensemble MAE tracking means its chosen member has
        # minimal error; spot check the invariant on a sawtooth.
        ens = default_ensemble()
        series = [float(i % 7) for i in range(200)]
        for v in series:
            ens.observe(v)
        maes = {k: v for k, v in ens.member_maes().items() if not math.isinf(v)}
        best = ens.best_member().name
        assert maes[best] == pytest.approx(min(maes.values()))
