"""Tests for measurement streams."""

import math

import pytest

from repro.monitor.samples import MeasurementStream


class TestMeasurementStream:
    def test_append_and_query(self):
        s = MeasurementStream("svc")
        s.add(1.0, 10.0)
        s.add(2.0, 20.0)
        assert len(s) == 2
        assert s.last_time == 2.0
        assert s.last_value == 20.0

    def test_non_monotonic_time_rejected(self):
        s = MeasurementStream()
        s.add(5.0, 1.0)
        with pytest.raises(ValueError, match="non-monotonic"):
            s.add(4.0, 1.0)

    def test_equal_times_allowed(self):
        s = MeasurementStream()
        s.add(1.0, 1.0)
        s.add(1.0, 2.0)  # simultaneous samples are fine
        assert len(s) == 2

    def test_window(self):
        s = MeasurementStream()
        for t in range(10):
            s.add(float(t), float(t * 10))
        assert s.window(since=7.0) == [70.0, 80.0, 90.0]
        assert s.window_mean(7.0) == pytest.approx(80.0)
        assert s.window_count(7.0) == 3

    def test_window_empty(self):
        s = MeasurementStream()
        s.add(0.0, 1.0)
        assert s.window(since=5.0) == []
        assert math.isnan(s.window_mean(5.0))

    def test_retention_bound(self):
        s = MeasurementStream(max_samples=5)
        for t in range(100):
            s.add(float(t), float(t))
        assert len(s) == 5
        assert s.values() == [95.0, 96.0, 97.0, 98.0, 99.0]

    def test_empty_stream_nan(self):
        s = MeasurementStream()
        assert math.isnan(s.last_time)
        assert math.isnan(s.mean())
